//! Integration tests of the dynamic-coding behaviour (Fig. 5) and the cost
//! accounting that feeds Fig. 4 and Table I.

use avcc::core::{
    run_dynamic_coding_scenario, run_experiment, ExperimentConfig, FaultScenario, SchemeKind,
};
use avcc::field::P25;
use avcc::ml::dataset::DatasetConfig;
use avcc::sim::attack::AttackModel;

fn quick_dataset() -> DatasetConfig {
    DatasetConfig {
        train_samples: 360,
        test_samples: 120,
        features: 36,
        informative: 12,
        ..DatasetConfig::default()
    }
}

fn quick(mut config: ExperimentConfig, iterations: usize) -> ExperimentConfig {
    config.dataset = quick_dataset();
    config.iterations = iterations;
    config
}

/// The Fig. 5 scenario: three stragglers and one Byzantine node appear at
/// iteration 1. AVCC must re-encode exactly because the slack goes negative,
/// and must finish before Static VCC, which keeps paying straggler latency.
#[test]
fn dynamic_coding_beats_static_vcc_in_the_figure_5_scenario() {
    let scenario = FaultScenario {
        stragglers: Vec::new(),
        straggler_multiplier: 8.0,
        byzantine: vec![4],
        attack: AttackModel::constant(),
    };
    let avcc = quick(ExperimentConfig::paper_avcc(2, 1, scenario.clone()), 30);
    let mut static_vcc = avcc.clone();
    static_vcc.scheme = SchemeKind::StaticVcc;

    let avcc_report = run_dynamic_coding_scenario::<P25>(&avcc, 1, &[0, 1, 2], 8.0).unwrap();
    let static_report =
        run_dynamic_coding_scenario::<P25>(&static_vcc, 1, &[0, 1, 2], 8.0).unwrap();

    assert!(
        avcc_report.reconfiguration_count() >= 1,
        "AVCC must re-encode"
    );
    assert_eq!(
        static_report.reconfiguration_count(),
        0,
        "Static VCC must not"
    );
    // Median-based totals (with one-time reconfiguration costs retained) so
    // a host-preemption spike in a single measured iteration cannot decide
    // the comparison.
    assert!(
        avcc_report.robust_total_seconds() < static_report.robust_total_seconds(),
        "AVCC total {} should beat Static VCC total {}",
        avcc_report.robust_total_seconds(),
        static_report.robust_total_seconds()
    );
    // The re-encoding iteration carries a visible one-time cost.
    assert!(avcc_report
        .iterations
        .iter()
        .any(|r| r.costs.reconfiguration > 0.0));
    // Both still converge.
    assert!(avcc_report.final_accuracy() > 0.7);
    assert!(static_report.final_accuracy() > 0.7);
}

/// Cost-breakdown sanity backing Fig. 4: only the verifying schemes charge
/// verification time, only the coded schemes charge decoding time, and
/// straggler scenarios dominate the fault-free compute time.
#[test]
fn cost_breakdown_structure_matches_the_schemes() {
    let clean = FaultScenario::none();
    let uncoded =
        run_experiment::<P25>(&quick(ExperimentConfig::paper_uncoded(clean.clone()), 6)).unwrap();
    let lcc = run_experiment::<P25>(&quick(ExperimentConfig::paper_lcc(clean.clone()), 6)).unwrap();
    let avcc = run_experiment::<P25>(&quick(ExperimentConfig::paper_avcc(2, 1, clean), 6)).unwrap();

    let uncoded_costs = uncoded.average_costs();
    let lcc_costs = lcc.average_costs();
    let avcc_costs = avcc.average_costs();

    // Verification time exists only for AVCC.
    assert_eq!(uncoded_costs.verification, 0.0);
    assert_eq!(lcc_costs.verification, 0.0);
    assert!(avcc_costs.verification > 0.0);
    // Every scheme has nonzero compute and communication.
    for costs in [&uncoded_costs, &lcc_costs, &avcc_costs] {
        assert!(costs.compute > 0.0);
        assert!(costs.communication > 0.0);
    }
    // Coded decoding is more expensive than uncoded reassembly.
    assert!(lcc_costs.decoding > uncoded_costs.decoding);
    assert!(avcc_costs.decoding > 0.0);
}

/// With stragglers present the straggler latency dwarfs the verification and
/// decoding overheads (the message of Fig. 4(b)/(c)).
///
/// This comparison needs the compute-dominated regime the figure is about,
/// so it keeps the default 900×63 dataset instead of the shrunken
/// `quick_dataset()`: at 360×36 the avoided straggler latency is so small
/// that fixed per-round master costs (key sampling, decode setup), inflated
/// by the 2000× time scale, land in the same order and the comparison turns
/// into a coin flip on a loaded host.
#[test]
fn straggler_latency_dwarfs_master_side_overheads() {
    let scenario = FaultScenario::paper(2, 1, AttackModel::reverse());
    let short = |mut config: ExperimentConfig| {
        config.iterations = 6;
        config
    };
    let uncoded =
        run_experiment::<P25>(&short(ExperimentConfig::paper_uncoded(scenario.clone()))).unwrap();
    let avcc = run_experiment::<P25>(&short(ExperimentConfig::paper_avcc(2, 1, scenario))).unwrap();
    let avcc_costs = avcc.average_costs();
    let uncoded_costs = uncoded.average_costs();
    // The uncoded scheme waits for the stragglers; AVCC does not.
    assert!(
        uncoded_costs.compute > avcc_costs.compute,
        "uncoded compute {} should exceed AVCC compute {}",
        uncoded_costs.compute,
        avcc_costs.compute
    );
    // AVCC's protection overhead is small relative to the straggler latency it
    // avoids.
    let overhead = avcc_costs.verification + avcc_costs.decoding;
    let avoided = uncoded_costs.compute - avcc_costs.compute;
    assert!(
        overhead < avoided,
        "verification+decoding ({overhead}) should be cheaper than the avoided straggler latency ({avoided})"
    );
}

/// Cumulative timelines are monotone and consistent with the per-iteration
/// totals — the invariant behind every time axis in the figures.
#[test]
fn cumulative_timelines_are_monotone_and_consistent() {
    let scenario = FaultScenario::paper(1, 1, AttackModel::constant());
    let report =
        run_experiment::<P25>(&quick(ExperimentConfig::paper_avcc(2, 1, scenario), 10)).unwrap();
    let timeline = report.cumulative_timeline();
    assert_eq!(timeline.len(), 10);
    let mut previous = 0.0;
    for (record, &cumulative) in report.iterations.iter().zip(timeline.iter()) {
        assert!(cumulative > previous, "timeline must strictly increase");
        let expected = previous + record.costs.total();
        assert!((cumulative - expected).abs() < 1e-9);
        previous = cumulative;
    }
    assert!((report.total_seconds() - previous).abs() < 1e-12);
}
