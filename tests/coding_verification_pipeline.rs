//! Cross-crate integration tests of the coding + verification pipeline,
//! independent of the ML workload: Theorem 1's three guarantees
//! (S-resiliency, M-security, T-privacy) exercised through the public API.

use avcc::coding::{LagrangeDecoder, LagrangeEncoder, MdsCode, SchemeConfig};
use avcc::field::{PrimeField, F25, P25};
use avcc::linalg::{mat_vec, Matrix};
use avcc::poly::rank;
use avcc::verify::{KeyGenConfig, MatVecKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_blocks(k: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix<F25>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| Matrix::from_vec(rows, cols, avcc::field::random_matrix(&mut rng, rows, cols)))
        .collect()
}

/// S-resiliency (Theorem 1): with N = threshold + S workers, the computation
/// is recoverable from any subset that excludes up to S stragglers.
#[test]
fn s_resiliency_from_any_straggler_pattern() {
    let config = SchemeConfig::linear(12, 9, 3, 0).unwrap();
    let blocks = random_blocks(9, 4, 6, 1);
    let encoder = LagrangeEncoder::<P25>::new(config);
    let decoder = LagrangeDecoder::<P25>::new(config);
    let shares = encoder.encode_deterministic(&blocks);
    let mut rng = StdRng::seed_from_u64(2);
    let w: Vec<F25> = avcc::field::random_vector(&mut rng, 6);
    let expected: Vec<Vec<F25>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();
    let results: Vec<(usize, Vec<F25>)> = shares
        .iter()
        .map(|s| (s.worker, mat_vec(&s.block, &w)))
        .collect();

    // Drop every possible set of three stragglers (a few hundred subsets).
    for a in 0..12 {
        for b in (a + 1)..12 {
            for c in (b + 1)..12 {
                let subset: Vec<(usize, Vec<F25>)> = results
                    .iter()
                    .filter(|(worker, _)| *worker != a && *worker != b && *worker != c)
                    .cloned()
                    .collect();
                let decoded = decoder.decode_erasure(&subset).unwrap();
                assert_eq!(decoded, expected, "failed for stragglers {a},{b},{c}");
            }
        }
    }
}

/// M-security (Theorem 1): a corrupted result is rejected by the Freivalds
/// check and the final output is unaffected as long as enough honest results
/// exist.
#[test]
fn m_security_via_per_worker_verification() {
    let config = SchemeConfig::linear(12, 9, 1, 2).unwrap();
    let blocks = random_blocks(9, 5, 7, 3);
    let encoder = LagrangeEncoder::<P25>::new(config);
    let decoder = LagrangeDecoder::<P25>::new(config);
    let shares = encoder.encode_deterministic(&blocks);
    let mut rng = StdRng::seed_from_u64(4);
    let keys: Vec<MatVecKey<P25>> = shares
        .iter()
        .map(|s| MatVecKey::generate(&s.block, KeyGenConfig::default(), &mut rng))
        .collect();
    let w: Vec<F25> = avcc::field::random_vector(&mut rng, 7);
    let expected: Vec<Vec<F25>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();

    // Workers 1 and 8 are Byzantine (constant attack).
    let mut verified = Vec::new();
    let mut rejected = Vec::new();
    for share in &shares {
        let mut result = mat_vec(&share.block, &w);
        if share.worker == 1 || share.worker == 8 {
            for value in result.iter_mut() {
                *value = F25::from_u64(77);
            }
        }
        if keys[share.worker].verify(&w, &result) {
            verified.push((share.worker, result));
        } else {
            rejected.push(share.worker);
        }
    }
    assert_eq!(rejected, vec![1, 8]);
    let decoded = decoder.decode_erasure(&verified).unwrap();
    assert_eq!(decoded, expected);
}

/// T-privacy (Theorem 1 / LCC Lemma 2): every T×T submatrix of the pad part
/// of the encoding matrix is invertible, so any T colluding workers see data
/// masked by a full-entropy uniform pad.
#[test]
fn t_privacy_pad_submatrices_are_invertible() {
    let config = SchemeConfig::new(12, 4, 1, 1, 3, 1).unwrap();
    let encoder = LagrangeEncoder::<P25>::new(config);
    let pads = encoder.pad_submatrix();
    assert_eq!(pads.len(), 3);
    let n = config.workers;
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let submatrix: Vec<F25> = vec![
                    pads[0][a], pads[0][b], pads[0][c], pads[1][a], pads[1][b], pads[1][c],
                    pads[2][a], pads[2][b], pads[2][c],
                ];
                assert_eq!(
                    rank(&submatrix, 3, 3),
                    3,
                    "columns {a},{b},{c} are singular"
                );
            }
        }
    }
}

/// Privacy end to end: two different datasets encoded with the same pads
/// produce identically distributed shares for a single curious worker when the
/// pads are uniform — here checked in the weaker but deterministic form that
/// a single share never equals the raw data block.
#[test]
fn private_shares_never_expose_raw_blocks() {
    let config = SchemeConfig::new(10, 3, 1, 0, 2, 1).unwrap();
    let blocks = random_blocks(3, 4, 4, 5);
    let encoder = LagrangeEncoder::<P25>::new(config);
    let mut rng = StdRng::seed_from_u64(6);
    let shares = encoder.encode(&blocks, &mut rng);
    for share in &shares {
        for block in &blocks {
            assert_ne!(&share.block, block);
        }
    }
}

/// The LCC bound (eq. 1) versus the AVCC bound (eq. 2), end to end: with 12
/// workers and K = 9, LCC cannot be configured for two Byzantine workers but
/// AVCC can.
#[test]
fn worker_budget_gap_between_lcc_and_avcc() {
    let two_byzantine = SchemeConfig::linear(12, 9, 1, 2).unwrap();
    assert!(!two_byzantine.lcc_feasible());
    assert!(two_byzantine.avcc_feasible());
    let one_byzantine = SchemeConfig::linear(12, 9, 1, 1).unwrap();
    assert!(one_byzantine.lcc_feasible());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: the MDS wrapper decodes X·b correctly from any K-subset of
    /// worker results, for random matrices and random straggler patterns.
    #[test]
    fn prop_mds_decodes_from_random_subsets(seed in any::<u64>(), drop in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = MdsCode::<P25>::new(12, 9).unwrap();
        let matrix = Matrix::from_vec(18, 5, avcc::field::random_matrix(&mut rng, 18, 5));
        let b: Vec<F25> = avcc::field::random_vector(&mut rng, 5);
        let expected = mat_vec(&matrix, &b);
        let shares = code.encode_matrix(&matrix);
        let results: Vec<(usize, Vec<F25>)> = shares
            .iter()
            .map(|s| (s.worker, mat_vec(&s.block, &b)))
            .collect();
        let decoded = code.decode_concatenated(&results[drop..]).unwrap();
        prop_assert_eq!(decoded, expected);
    }

    /// Property: Freivalds verification never rejects an honest worker and
    /// never accepts the reverse-value or constant attacks.
    #[test]
    fn prop_verification_separates_honest_from_byzantine(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let block = Matrix::from_vec(8, 6, avcc::field::random_matrix(&mut rng, 8, 6));
        let key = MatVecKey::<P25>::generate(&block, KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc::field::random_vector(&mut rng, 6);
        let honest = mat_vec(&block, &w);
        prop_assert!(key.verify(&w, &honest));
        let reversed: Vec<F25> = honest.iter().map(|&v| -v).collect();
        if reversed != honest {
            prop_assert!(!key.verify(&w, &reversed));
        }
        let constant = vec![F25::from_u64(9); 8];
        if constant != honest {
            prop_assert!(!key.verify(&w, &constant));
        }
    }
}
