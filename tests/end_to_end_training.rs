//! Integration tests spanning the whole stack: dataset → quantization →
//! coding → cluster simulation → verification → decoding → model update.
//!
//! These are the executable versions of the paper's qualitative claims:
//! under Byzantine attack, AVCC keeps the accuracy of an attack-free run,
//! LCC survives only within its designed tolerance, and the uncoded baseline
//! degrades; under stragglers, the coded schemes finish faster than the
//! uncoded scheme.

use avcc::core::report::speedup;
use avcc::core::{run_experiment, ExperimentConfig, FaultScenario};
use avcc::field::P25;
use avcc::ml::dataset::DatasetConfig;
use avcc::sim::attack::AttackModel;

/// A dataset small enough for debug-mode CI but large enough to learn.
fn quick_dataset() -> DatasetConfig {
    DatasetConfig {
        train_samples: 360,
        test_samples: 120,
        features: 36,
        informative: 12,
        ..DatasetConfig::default()
    }
}

fn quick(mut config: ExperimentConfig, iterations: usize) -> ExperimentConfig {
    config.dataset = quick_dataset();
    config.iterations = iterations;
    config
}

#[test]
fn avcc_matches_attack_free_accuracy_under_constant_attack() {
    // Attack-free AVCC run as the reference.
    let clean = quick(
        ExperimentConfig::paper_avcc(2, 1, FaultScenario::none()),
        25,
    );
    let clean_report = run_experiment::<P25>(&clean).unwrap();

    // Same run with one straggler and one constant-attack Byzantine worker.
    let attacked = quick(
        ExperimentConfig::paper_avcc(2, 1, FaultScenario::paper(1, 1, AttackModel::constant())),
        25,
    );
    let attacked_report = run_experiment::<P25>(&attacked).unwrap();

    assert!(
        attacked_report.final_accuracy() >= clean_report.final_accuracy() - 0.03,
        "AVCC under attack ({}) must match the attack-free accuracy ({})",
        attacked_report.final_accuracy(),
        clean_report.final_accuracy()
    );
    assert!(attacked_report.total_detections() > 0);
}

#[test]
fn uncoded_accuracy_degrades_under_constant_attack_but_avcc_does_not() {
    let scenario = FaultScenario::paper(1, 2, AttackModel::constant());
    let avcc = quick(ExperimentConfig::paper_avcc(1, 2, scenario.clone()), 25);
    let uncoded = quick(ExperimentConfig::paper_uncoded(scenario), 25);
    let avcc_report = run_experiment::<P25>(&avcc).unwrap();
    let uncoded_report = run_experiment::<P25>(&uncoded).unwrap();
    assert!(
        avcc_report.final_accuracy() > uncoded_report.final_accuracy() + 0.02,
        "AVCC ({}) must beat the unprotected baseline ({}) under attack",
        avcc_report.final_accuracy(),
        uncoded_report.final_accuracy()
    );
}

#[test]
fn avcc_is_at_least_as_accurate_as_lcc_when_lcc_is_overwhelmed() {
    // Two Byzantine workers exceed LCC's designed (S=1, M=1) tolerance while
    // AVCC designed for (S=1, M=2) handles them — the Fig. 3(d) comparison.
    let scenario = FaultScenario::paper(1, 2, AttackModel::constant());
    let avcc = quick(ExperimentConfig::paper_avcc(1, 2, scenario.clone()), 25);
    let lcc = quick(ExperimentConfig::paper_lcc(scenario), 25);
    let avcc_report = run_experiment::<P25>(&avcc).unwrap();
    let lcc_report = run_experiment::<P25>(&lcc).unwrap();
    assert!(
        avcc_report.final_accuracy() >= lcc_report.final_accuracy() - 1e-9,
        "AVCC ({}) must not be worse than overwhelmed LCC ({})",
        avcc_report.final_accuracy(),
        lcc_report.final_accuracy()
    );
}

#[test]
fn coded_schemes_outpace_the_uncoded_scheme_under_stragglers() {
    // Two stragglers, no Byzantine workers: the uncoded scheme waits for the
    // stragglers every iteration, the coded schemes do not.
    //
    // This race needs the compute-dominated regime the claim is about, so it
    // keeps the default 900×63 dataset instead of `quick_dataset()`: at
    // 360×36 the avoided straggler latency is so small that fixed per-round
    // master costs, inflated by the 2000× time scale, land in the same order
    // and the race turns into a coin flip on a loaded host.
    let scenario = FaultScenario::paper(2, 0, AttackModel::None);
    let short = |mut config: ExperimentConfig| {
        config.iterations = 8;
        config
    };
    let avcc = short(ExperimentConfig::paper_avcc(2, 1, scenario.clone()));
    let uncoded = short(ExperimentConfig::paper_uncoded(scenario));
    let avcc_report = run_experiment::<P25>(&avcc).unwrap();
    let uncoded_report = run_experiment::<P25>(&uncoded).unwrap();
    // Compare medians: per-iteration costs come from wall-clock measurements,
    // so a host-scheduler preemption spike in a single iteration must not
    // decide the comparison.
    assert!(
        avcc_report.robust_total_seconds() < uncoded_report.robust_total_seconds(),
        "AVCC ({}) should finish before the uncoded baseline ({}) with stragglers present",
        avcc_report.robust_total_seconds(),
        uncoded_report.robust_total_seconds()
    );
    // The speedup helper should agree (total-time fallback is fine here).
    assert!(speedup(&avcc_report, &uncoded_report, 0.99) > 1.0);
}

#[test]
fn lcc_and_avcc_produce_identical_model_trajectories_without_faults() {
    // With no stragglers and no Byzantine workers both coded schemes compute
    // exactly the same (quantized) gradients, so their accuracy trajectories
    // must be identical even though their decoding paths differ.
    let scenario = FaultScenario::none();
    let avcc = quick(ExperimentConfig::paper_avcc(2, 1, scenario.clone()), 10);
    let lcc = quick(ExperimentConfig::paper_lcc(scenario), 10);
    let avcc_report = run_experiment::<P25>(&avcc).unwrap();
    let lcc_report = run_experiment::<P25>(&lcc).unwrap();
    for (a, l) in avcc_report
        .iterations
        .iter()
        .zip(lcc_report.iterations.iter())
    {
        assert!(
            (a.test_accuracy - l.test_accuracy).abs() < 1e-12,
            "iteration {}: AVCC accuracy {} vs LCC accuracy {}",
            a.iteration,
            a.test_accuracy,
            l.test_accuracy
        );
    }
}

#[test]
fn all_schemes_learn_something_in_the_fault_free_case() {
    let scenario = FaultScenario::none();
    for config in [
        quick(ExperimentConfig::paper_uncoded(scenario.clone()), 20),
        quick(ExperimentConfig::paper_lcc(scenario.clone()), 20),
        quick(ExperimentConfig::paper_avcc(2, 1, scenario.clone()), 20),
    ] {
        let label = config.scheme.label();
        let report = run_experiment::<P25>(&config).unwrap();
        assert!(
            report.final_accuracy() > 0.7,
            "{label} reached only {}",
            report.final_accuracy()
        );
        assert_eq!(
            report.total_detections(),
            0,
            "{label} had spurious detections"
        );
    }
}

#[test]
fn reverse_value_attack_is_detected_by_both_protected_schemes() {
    let scenario = FaultScenario::paper(1, 1, AttackModel::reverse());
    let avcc = quick(ExperimentConfig::paper_avcc(2, 1, scenario.clone()), 8);
    let lcc = quick(ExperimentConfig::paper_lcc(scenario), 8);
    let avcc_report = run_experiment::<P25>(&avcc).unwrap();
    let lcc_report = run_experiment::<P25>(&lcc).unwrap();
    assert!(avcc_report.total_detections() > 0);
    assert!(lcc_report.total_detections() > 0);
}
