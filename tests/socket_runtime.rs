//! End-to-end acceptance of the multi-process runtime: real `avcc-worker`
//! child processes (via `CARGO_BIN_EXE_avcc-worker`), real TCP/UDS sockets,
//! the full wire protocol — driving the paper's flagship workloads and
//! matching the in-process oracle bit for bit, while surviving a worker kill
//! and a corrupted frame mid-job.

use std::path::PathBuf;
use std::time::Duration;

use avcc::core::distributed::WireRunner;
use avcc::core::{DistributedTrainer, IterationRecord, SchemeKind, TrainerConfig, TrainingProblem};
use avcc::field::{Fp, PrimeField, P25};
use avcc::linalg::{mat_vec, Matrix};
use avcc::ml::dataset::{Dataset, DatasetConfig};
use avcc::sim::attack::{AttackModel, ByzantineSpec};
use avcc::sim::cluster::ClusterProfile;
use avcc::sim::executor::{Executor, ThreadedExecutor};
use avcc::sim::socket::{SocketConfig, SocketExecutor, Transport, WorkerBackend};
use avcc::sim::wire::FaultKind;
use avcc_coding::{DualCodeword, SchemeConfig};
use avcc_serve::{serve_distributed, JobOutput, JobSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_avcc-worker"))
}

fn process_fleet(workers: usize, transport: Transport) -> SocketExecutor {
    SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        SocketConfig {
            transport,
            backend: WorkerBackend::Process {
                binary: worker_binary(),
            },
            connect_timeout: Duration::from_secs(30),
            round_timeout: Duration::from_secs(30),
            ..SocketConfig::default()
        },
    )
    .expect("spawn the worker fleet")
}

fn small_problem() -> TrainingProblem {
    let dataset = Dataset::gisette_like(DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    });
    TrainingProblem::from_dataset(&dataset, 9)
}

fn make_trainer() -> DistributedTrainer<P25> {
    DistributedTrainer::new(
        small_problem(),
        ClusterProfile::uniform(12),
        ByzantineSpec::none(),
        TrainerConfig {
            iterations: 4,
            time_scale: 1.0,
            ..TrainerConfig::paper_defaults(
                SchemeKind::Avcc,
                SchemeConfig::linear(12, 9, 2, 1).unwrap(),
            )
        },
        "socket-acceptance",
    )
}

/// GISETTE-style training over a real TCP fleet of 12 worker *processes*,
/// with one worker killed and one corrupted frame injected mid-job: the
/// model trajectory must stay bit-identical to the in-process oracle —
/// evictions look like stragglers, and exact decode erases them.
#[test]
fn training_over_tcp_processes_survives_kill_and_corruption() {
    let mut oracle = make_trainer();
    let oracle_report = oracle.train().expect("oracle training");

    let mut trainer = make_trainer();
    let mut fleet = process_fleet(12, Transport::Tcp);
    let mut runner = WireRunner::new();
    let mut cumulative = 0.0;
    let mut records = Vec::new();
    for iteration in 0..trainer.iterations() {
        if iteration == 1 {
            // Mid-job worker death: a real SIGKILL to the child process.
            fleet.kill_worker(2);
        }
        if iteration == 2 {
            // Mid-job corruption: worker 5's next result frame is flipped
            // post-checksum; the master must catch it by CRC and evict.
            fleet.inject_fault(5, FaultKind::CorruptPayload).unwrap();
        }
        let round1_tasks = trainer.encode_round1();
        let byzantine = trainer.byzantine().clone();
        let round1 = runner
            .run_round(&mut fleet, 0, &round1_tasks, &byzantine)
            .expect("round 1 over TCP");
        let round2_tasks = trainer.collect_round1(&round1).expect("collect round 1");
        let round2 = runner
            .run_round(&mut fleet, 1, &round2_tasks, &byzantine)
            .expect("round 2 over TCP");
        let record = trainer
            .collect_round2(iteration, &round2, &mut cumulative)
            .expect("collect round 2");
        records.push(record);
    }

    // Bit-identical model despite the kill and the corrupted frame.
    assert_eq!(trainer.model().weights, oracle.model().weights);
    let trajectory: Vec<(f64, f64)> = records
        .iter()
        .map(|r| (r.test_accuracy, r.train_loss))
        .collect();
    let oracle_trajectory: Vec<(f64, f64)> = oracle_report
        .iterations
        .iter()
        .map(|r| (r.test_accuracy, r.train_loss))
        .collect();
    assert_eq!(trajectory, oracle_trajectory);

    // The faults really happened and were really recovered from. The
    // between-rounds kill is healed by the reconnect path (respawn, no
    // eviction recorded); the mid-round corruption must evict.
    let metrics = fleet.metrics();
    assert!(metrics.evictions >= 1, "the corrupted frame must evict");
    assert!(metrics.respawns >= 2, "both workers must be respawned");
}

/// A batched matmul job served over real UDS worker processes decodes the
/// exact products, even with a corrupted frame injected into the round.
#[test]
fn batched_matmul_over_uds_processes_is_exact() {
    let rows = 18;
    let cols = 6;
    let matrix = Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| Fp::<P25>::from_u64((i as u64).wrapping_mul(37) % 1009))
            .collect(),
    );
    let inputs: Vec<Vec<Fp<P25>>> = (0..3)
        .map(|f| {
            (0..cols)
                .map(|i| Fp::<P25>::from_u64((f * 100 + i) as u64 + 1))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<Fp<P25>>> = inputs.iter().map(|v| mat_vec(&matrix, v)).collect();

    let mut fleet = process_fleet(12, Transport::Uds);
    fleet.inject_fault(3, FaultKind::BadCrc).unwrap();
    let specs = vec![JobSpec::MatMulBatch {
        matrix,
        inputs,
        coding: SchemeConfig::linear(12, 9, 2, 1).unwrap(),
        seed: 7,
    }];
    let completed = serve_distributed(specs, &mut fleet);
    assert_eq!(completed.len(), 1);
    let JobOutput::MatVecBatch(products) = &completed[0].output else {
        panic!("batch job must decode, got {:?}", completed[0].output);
    };
    assert_eq!(products, &expected);
    assert!(fleet.metrics().evictions >= 1, "the bad CRC must evict");
}

/// Runs the trainer's screened loop over `executor`: every round passes
/// through [`WireRunner::run_round_screened`], which evicts RS-inconsistent
/// blocks before the trainer's collect ever sees them. Returns the trained
/// model's trajectory inputs plus how many evictions the screen made.
fn run_screened_training(
    executor: &mut dyn Executor,
    byzantine: &ByzantineSpec,
    seed: u64,
) -> (DistributedTrainer<P25>, Vec<IterationRecord>, usize) {
    let mut trainer = make_trainer();
    let screen = DualCodeword::<P25>::new(*trainer.current_coding());
    let mut runner = WireRunner::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cumulative = 0.0;
    let mut records = Vec::new();
    let mut screened_total = 0;
    for iteration in 0..trainer.iterations() {
        let round1_tasks = trainer.encode_round1();
        let (round1, screened1) = runner
            .run_round_screened(executor, 0, &round1_tasks, byzantine, &screen, &mut rng)
            .expect("screened round 1");
        assert_eq!(screened1, vec![3], "the corrupted block must be screened");
        screened_total += screened1.len();
        let round2_tasks = trainer.collect_round1(&round1).expect("collect round 1");
        let (round2, screened2) = runner
            .run_round_screened(executor, 1, &round2_tasks, byzantine, &screen, &mut rng)
            .expect("screened round 2");
        assert_eq!(screened2, vec![3], "round 2 is corrupted too");
        screened_total += screened2.len();
        let record = trainer
            .collect_round2(iteration, &round2, &mut cumulative)
            .expect("collect round 2");
        records.push(record);
    }
    (trainer, records, screened_total)
}

/// A worker *process* returning Byzantine-corrupted blocks (master-side
/// spec — the same injection path the in-process executors use) is caught
/// by the pre-decode dual-codeword screen and evicted before collect ever
/// sees it: downstream it is indistinguishable from a straggler (no
/// Byzantine detection recorded), and the training trajectory is
/// bit-identical to the same screened loop over the in-process
/// `ThreadedExecutor`.
#[test]
fn screened_training_over_processes_matches_threaded_executor() {
    let byzantine = ByzantineSpec::new([3], AttackModel::constant());

    let mut fleet = process_fleet(12, Transport::Tcp);
    let (socket_trainer, socket_records, socket_screened) =
        run_screened_training(&mut fleet, &byzantine, 1009);

    let mut threaded = ThreadedExecutor::new(ClusterProfile::uniform(12));
    let (oracle_trainer, oracle_records, oracle_screened) =
        run_screened_training(&mut threaded, &byzantine, 1009);

    // Bit-identical models and trajectories across the process boundary.
    assert_eq!(
        socket_trainer.model().weights,
        oracle_trainer.model().weights
    );
    let trajectory = |records: &[IterationRecord]| -> Vec<(f64, f64)> {
        records
            .iter()
            .map(|r| (r.test_accuracy, r.train_loss))
            .collect()
    };
    assert_eq!(trajectory(&socket_records), trajectory(&oracle_records));

    // Two rounds screened per iteration, on both executors.
    assert_eq!(socket_screened, 2 * socket_records.len());
    assert_eq!(socket_screened, oracle_screened);

    // The evicted worker is erased from the round before the trainer's
    // collect runs — no Byzantine detection is ever recorded (time-based
    // straggler observation doesn't list it either: like a worker that
    // never answered, it simply isn't among the arrivals).
    for record in &socket_records {
        assert!(record.detected_byzantine.is_empty());
        assert!(record.screened_workers.is_empty());
    }
}

/// The worker binary rejects malformed invocations instead of hanging.
#[test]
fn worker_binary_usage_errors_are_clean() {
    let status = std::process::Command::new(worker_binary())
        .arg("--bogus")
        .status()
        .expect("run the worker binary");
    assert_eq!(status.code(), Some(2));

    let status = std::process::Command::new(worker_binary())
        .args(["--connect", "tcp:127.0.0.1:1", "--worker", "0"])
        .status()
        .expect("run the worker binary");
    assert_eq!(status.code(), Some(1), "unreachable master must fail fast");
}
