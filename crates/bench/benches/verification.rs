//! Verification benchmarks: the Freivalds check against full recomputation of
//! the worker's product — the `O(m + d)` vs `O(m·d/K)` asymmetry of §II-B
//! that makes per-result verification affordable.

use avcc_field::{F25, P25};
use avcc_linalg::{mat_vec, Matrix};
use avcc_verify::{KeyGenConfig, MatVecKey};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(rows: usize, cols: usize) -> (Matrix<F25>, MatVecKey<P25>, Vec<F25>, Vec<F25>) {
    let mut rng = StdRng::seed_from_u64(3);
    let block = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    let key = MatVecKey::generate(&block, KeyGenConfig::default(), &mut rng);
    let w: Vec<F25> = avcc_field::random_vector(&mut rng, cols);
    let z = mat_vec(&block, &w);
    (block, key, w, z)
}

fn bench_verification_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    for &(rows, cols) in &[(100usize, 63usize), (667, 630), (667, 5000)] {
        let (block, key, w, z) = setup(rows, cols);
        group.bench_with_input(
            BenchmarkId::new("freivalds", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| key.verify(black_box(&w), black_box(&z))),
        );
        group.bench_with_input(
            BenchmarkId::new("recompute", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| mat_vec(black_box(&block), black_box(&w))),
        );
    }
    group.finish();
}

fn bench_key_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let block = Matrix::from_vec(100, 63, avcc_field::random_matrix(&mut rng, 100, 63));
    c.bench_function("verify/keygen_100x63", |bencher| {
        bencher.iter(|| {
            MatVecKey::<P25>::generate(black_box(&block), KeyGenConfig::default(), &mut rng)
        })
    });
}

criterion_group!(
    benches,
    bench_verification_vs_recompute,
    bench_key_generation
);
criterion_main!(benches);
