//! Wire-format micro-benchmarks: the CRC-32C kernel, field-element bulk
//! encoding, and full frame encode/decode round trips.
//!
//! Two pairs are gated by `scripts/bench_regression.py`:
//!
//! * `wire_crc/n*/{bytewise,sliced}` — the slicing-by-8 CRC must stay
//!   not-worse than the canonical byte-at-a-time implementation (it is the
//!   one every frame pays on both send and receive);
//! * `wire_encode/n*/{element,bulk}` — `WireWriter::put_u64_bulk` must stay
//!   not-worse than a per-element `put_u64` loop (task/result payloads are
//!   dominated by element serialization).
//!
//! `wire_roundtrip/*` is informational: the absolute cost of a full
//! encode/validate/decode cycle for realistic TASK_RESULT frames, i.e. the
//! per-frame CPU tax the socket runtime adds over the threaded executor.

use avcc_sim::wire::{
    crc32c, crc32c_bytewise, read_frame, TaskResult, WireWriter, DEFAULT_MAX_PAYLOAD,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const Q: u64 = 2_305_843_009_213_693_951; // P61: worst-case 8-byte residues

/// Deterministic canonical residues, no rng dependency in the hot path.
fn elements(count: usize, seed: u64) -> Vec<u64> {
    (0..count as u64)
        .map(|i| {
            seed.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i.wrapping_mul(1_442_695_040_888_963_407))
                % Q
        })
        .collect()
}

fn payload_bytes(len: usize) -> Vec<u8> {
    let mut writer = WireWriter::with_capacity(len * 8);
    writer.put_u64_bulk(&elements(len, 0xA5A5));
    writer.into_bytes()
}

/// CRC-32C: slicing-by-8 (the shipped kernel) vs the bit/byte-wise reference
/// it must never regress against.
fn bench_wire_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_crc");
    for len in [64usize, 4096, 65536] {
        let bytes = payload_bytes(len / 8);
        assert_eq!(bytes.len(), len);
        // The two implementations must agree before we time either.
        assert_eq!(crc32c(&bytes), crc32c_bytewise(&bytes));

        group.bench_function(BenchmarkId::new(format!("n{len}"), "bytewise"), |b| {
            b.iter(|| crc32c_bytewise(black_box(&bytes)))
        });
        group.bench_function(BenchmarkId::new(format!("n{len}"), "sliced"), |b| {
            b.iter(|| crc32c(black_box(&bytes)))
        });
    }
    group.finish();
}

/// Element serialization: a per-element `put_u64` loop vs the bulk path the
/// message codecs actually use.
fn bench_wire_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for len in [64usize, 4096, 65536] {
        let values = elements(len, 0x1234);

        let element_bytes = {
            let mut w = WireWriter::with_capacity(len * 8);
            for &v in &values {
                w.put_u64(v);
            }
            w.into_bytes()
        };
        let bulk_bytes = {
            let mut w = WireWriter::with_capacity(len * 8);
            w.put_u64_bulk(&values);
            w.into_bytes()
        };
        assert_eq!(
            element_bytes, bulk_bytes,
            "bulk path must be byte-identical"
        );

        group.bench_function(BenchmarkId::new(format!("n{len}"), "element"), |b| {
            b.iter(|| {
                let mut w = WireWriter::with_capacity(len * 8);
                for &v in black_box(&values) {
                    w.put_u64(v);
                }
                w.into_bytes()
            })
        });
        group.bench_function(BenchmarkId::new(format!("n{len}"), "bulk"), |b| {
            b.iter(|| {
                let mut w = WireWriter::with_capacity(len * 8);
                w.put_u64_bulk(black_box(&values));
                w.into_bytes()
            })
        });
    }
    group.finish();
}

/// Full frame cycle for a realistic TASK_RESULT: message encode + frame
/// encode (header + CRC) on one side, header/CRC validation + message decode
/// on the other.
fn bench_wire_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_roundtrip");
    for (functions, output_len) in [(1usize, 512usize), (4, 4096)] {
        let result = TaskResult {
            worker: 3,
            compute_seconds: 0.0125,
            outputs: (0..functions)
                .map(|f| elements(output_len, 0xBEEF ^ f as u64))
                .collect(),
        };
        let wire = result.frame(11, 2).encode();

        // The cycle must actually round-trip before we time it.
        let (frame, consumed) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(TaskResult::decode(&frame.payload).unwrap(), result);

        let id = format!("m{functions}_n{output_len}");
        group.bench_function(BenchmarkId::new(&id, "encode"), |b| {
            b.iter(|| black_box(&result).frame(11, 2).encode())
        });
        group.bench_function(BenchmarkId::new(&id, "decode"), |b| {
            b.iter(|| {
                let (frame, _) =
                    read_frame(&mut black_box(&wire).as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
                TaskResult::decode(&frame.payload).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wire_crc,
    bench_wire_encode,
    bench_wire_roundtrip
);
criterion_main!(benches);
