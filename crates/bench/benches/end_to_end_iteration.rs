//! End-to-end iteration benchmarks: one full training iteration (two coded
//! rounds plus master-side work) per scheme, the ablation data behind the
//! Fig. 4 discussion of where each scheme spends its time.

use avcc_core::{ExperimentConfig, FaultScenario, SchemeKind};
use avcc_field::P25;
use avcc_ml::dataset::DatasetConfig;
use avcc_sim::attack::AttackModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn quick_config(scheme: SchemeKind) -> ExperimentConfig {
    let scenario = FaultScenario::paper(1, 1, AttackModel::reverse());
    let mut config = match scheme {
        SchemeKind::Uncoded => ExperimentConfig::paper_uncoded(scenario),
        SchemeKind::Lcc => ExperimentConfig::paper_lcc(scenario),
        SchemeKind::Avcc | SchemeKind::StaticVcc => ExperimentConfig::paper_avcc(2, 1, scenario),
    };
    config.scheme = scheme;
    config.iterations = 1;
    config.dataset = DatasetConfig {
        train_samples: 450,
        test_samples: 90,
        features: 63,
        informative: 21,
        ..DatasetConfig::default()
    };
    config
}

fn bench_one_iteration_per_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/iteration");
    group.sample_size(10);
    for scheme in [SchemeKind::Uncoded, SchemeKind::Lcc, SchemeKind::Avcc] {
        let config = quick_config(scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &config,
            |bencher, config| {
                bencher.iter(|| {
                    let mut trainer = config.build_trainer::<P25>();
                    let mut cumulative = 0.0;
                    trainer
                        .run_iteration(0, &mut cumulative)
                        .expect("iteration failed")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_one_iteration_per_scheme);
criterion_main!(benches);
