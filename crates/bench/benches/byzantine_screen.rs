//! Byzantine screening vs detect-and-redecode: the master-side cost of
//! discovering corrupted workers.
//!
//! The detect-and-redecode path (what LCC does, and what AVCC fell back to
//! before PR9) runs Berlekamp–Welch error decoding over the full result set
//! to simultaneously locate the corrupted workers and reconstruct the
//! product. The screen path runs one SCRAPE-style dual-codeword membership
//! pass (`O(R·width)`), localizes the corrupted workers by syndrome power
//! sums, and then erasure-decodes the clean survivors — never paying the
//! error-correcting solve.
//!
//! The ids (`byzantine_screen/k<K>_byz<B>/{redecode,screen}`) are parsed by
//! `scripts/bench_regression.py`, which fails CI unless the screen path is
//! strictly faster at `K ≥ 64` for every Byzantine count — the PR9 gate.
//! Both paths are asserted bit-identical (same product, same localized
//! workers) before anything is timed.

use avcc_coding::{DualCodeword, LagrangeDecoder, LagrangeEncoder, SchemeConfig, ScreenOutcome};
use avcc_field::{F64, P64};
use avcc_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Identity-map worker results for an NTT-friendly `(N, K)` code with the
/// listed workers corrupted (values reversed), so the bench times only the
/// screening / redecoding cost.
fn corrupted_results(
    config: SchemeConfig,
    width: usize,
    corrupted: &[usize],
) -> Vec<(usize, Vec<F64>)> {
    let mut rng = StdRng::seed_from_u64(90);
    let matrix = Matrix::from_vec(
        config.partitions,
        width,
        avcc_field::random_matrix(&mut rng, config.partitions, width),
    );
    let blocks = matrix.split_rows(config.partitions);
    let encoder = LagrangeEncoder::<P64>::new(config);
    assert!(encoder.uses_ntt());
    let shares = encoder.encode_deterministic(&blocks);
    let mut results: Vec<(usize, Vec<F64>)> = shares
        .iter()
        .map(|share| (share.worker, share.block.data().to_vec()))
        .collect();
    for &victim in corrupted {
        for value in results[victim].1.iter_mut() {
            *value = -*value;
        }
    }
    results
}

/// Screen-then-erasure-decode: the PR9 pipeline in miniature.
fn screen_and_decode(
    screen: &DualCodeword<P64>,
    decoder: &LagrangeDecoder<P64>,
    results: &[(usize, Vec<F64>)],
    rng: &mut StdRng,
) -> (Vec<Vec<F64>>, Vec<usize>) {
    let report = screen.screen(results, 1, rng).unwrap();
    let evicted = match report.outcome {
        ScreenOutcome::Corrupted { workers } => workers,
        ScreenOutcome::Clean => Vec::new(),
        ScreenOutcome::Unlocalized => panic!("bench plants localizable corruption"),
    };
    let clean: Vec<(usize, Vec<F64>)> = results
        .iter()
        .filter(|(worker, _)| !evicted.contains(worker))
        .cloned()
        .collect();
    let threshold = decoder.recovery_threshold();
    let blocks = decoder.decode_erasure(&clean[..threshold]).unwrap();
    (blocks, evicted)
}

fn bench_byzantine_screen(c: &mut Criterion) {
    let mut group = c.benchmark_group("byzantine_screen");
    let width = 128usize;
    for &(partitions, workers) in &[(64usize, 128usize), (128, 256)] {
        for &byzantine in &[1usize, 3] {
            let config = SchemeConfig::linear(workers, partitions, 4, 3).unwrap();
            // Corrupt `byzantine` workers scattered across the fleet.
            let corrupted: Vec<usize> = (0..byzantine).map(|b| 5 + 11 * b).collect();
            let results = corrupted_results(config, width, &corrupted);
            let decoder = LagrangeDecoder::<P64>::new(config);
            let screen = DualCodeword::<P64>::new(config);

            // Both paths must agree — same product, same localized workers —
            // before either is timed.
            let mut check_rng = StdRng::seed_from_u64(91);
            let (oracle_blocks, mut oracle_located) = decoder
                .decode_with_errors(&results, byzantine, &mut check_rng)
                .unwrap();
            oracle_located.sort_unstable();
            let (screen_blocks, screen_located) =
                screen_and_decode(&screen, &decoder, &results, &mut check_rng);
            assert_eq!(oracle_located, corrupted);
            assert_eq!(screen_located, corrupted);
            assert_eq!(oracle_blocks, screen_blocks);

            let label = format!("k{partitions}_byz{byzantine}");
            let mut redecode_rng = StdRng::seed_from_u64(92);
            group.bench_with_input(
                BenchmarkId::new(label.clone(), "redecode"),
                &byzantine,
                |bencher, _| {
                    bencher.iter(|| {
                        decoder
                            .decode_with_errors(black_box(&results), byzantine, &mut redecode_rng)
                            .unwrap()
                    })
                },
            );
            let mut screen_rng = StdRng::seed_from_u64(93);
            group.bench_with_input(
                BenchmarkId::new(label, "screen"),
                &byzantine,
                |bencher, _| {
                    bencher.iter(|| {
                        screen_and_decode(&screen, &decoder, black_box(&results), &mut screen_rng)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_byzantine_screen);
criterion_main!(benches);
