//! Encoding benchmarks: MDS/Lagrange encoding cost as a function of the data
//! size and the worker count, backing the paper's "encoding is a one-time,
//! near-linear cost" discussion (§II-A), plus the `F64` matrix-vs-NTT
//! comparison that the CI bench-regression job gates on: with evaluation
//! points in subgroup position the `O(K·N)`-per-coordinate encoding matrix
//! collapses to `O(N log N)` transforms, and the same holds for full-coset
//! erasure decoding.

use avcc_coding::{EvaluationPoints, LagrangeDecoder, LagrangeEncoder, SchemeConfig};
use avcc_field::{F25, F64, P25, P64};
use avcc_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data_blocks(rows: usize, cols: usize, partitions: usize, seed: u64) -> Vec<Matrix<F25>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    matrix.split_rows(partitions)
}

fn bench_mds_encoding_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/mds_12_9");
    for &rows in &[90usize, 450, 900] {
        let blocks = data_blocks(rows, 63, 9, 1);
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| encoder.encode_deterministic(black_box(&blocks)))
        });
    }
    group.finish();
}

fn bench_encoding_by_worker_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/workers");
    for &workers in &[12usize, 18, 24] {
        let blocks = data_blocks(450, 63, 9, 2);
        let config = SchemeConfig::linear(workers, 9, workers - 10, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, _| bencher.iter(|| encoder.encode_deterministic(black_box(&blocks))),
        );
    }
    group.finish();
}

fn bench_private_encoding(c: &mut Criterion) {
    // T = 2 privacy pads: the extra cost of the privacy guarantee.
    let blocks = data_blocks(450, 63, 9, 3);
    let config = SchemeConfig::new(14, 9, 1, 1, 2, 1).unwrap();
    let encoder = LagrangeEncoder::<P25>::new(config);
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("encode/private_t2", |bencher| {
        bencher.iter(|| encoder.encode(black_box(&blocks), &mut rng))
    });
}

fn f64_blocks(rows: usize, cols: usize, partitions: usize, seed: u64) -> Vec<Matrix<F64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    matrix.split_rows(partitions)
}

/// Matrix-path vs NTT-path encoding on the Goldilocks field. The ids
/// (`encode_f64/k<K>/{matrix,ntt}`) are parsed by
/// `scripts/bench_regression.py`, which fails CI if the NTT path stops
/// beating the matrix path at `K ≥ 64`.
fn bench_f64_matrix_vs_ntt_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_f64");
    for &(partitions, workers, block_rows) in &[(64usize, 128usize, 4usize), (128, 256, 2)] {
        let blocks = f64_blocks(partitions * block_rows, 32, partitions, 10);
        let config = SchemeConfig::linear(workers, partitions, 2, 1).unwrap();
        let standard = LagrangeEncoder::<P64>::with_points(
            config,
            EvaluationPoints::standard(partitions, 0, workers),
        );
        assert!(!standard.uses_ntt());
        let subgroup = LagrangeEncoder::<P64>::new(config);
        assert!(subgroup.uses_ntt());
        group.bench_with_input(
            BenchmarkId::new(format!("k{partitions}"), "matrix"),
            &partitions,
            |bencher, _| bencher.iter(|| standard.encode_deterministic(black_box(&blocks))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("k{partitions}"), "ntt"),
            &partitions,
            |bencher, _| bencher.iter(|| subgroup.encode_deterministic(black_box(&blocks))),
        );
    }
    group.finish();
}

/// Full-coset erasure decoding: Lagrange combination vs inverse-NTT path on
/// the Goldilocks field (ids `decode_f64/k<K>/{matrix,ntt}`).
fn bench_f64_matrix_vs_ntt_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_f64");
    for &(partitions, workers) in &[(64usize, 128usize), (128, 256)] {
        let width = 128usize;
        let blocks = f64_blocks(partitions, width, partitions, 20);
        let config = SchemeConfig::linear(workers, partitions, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P64>::new(config);
        assert!(encoder.uses_ntt());
        let shares = encoder.encode_deterministic(&blocks);
        // Workers apply the identity map: results are the share rows
        // themselves, which keeps the bench focused on decoding cost.
        let results: Vec<(usize, Vec<F64>)> = shares
            .iter()
            .map(|share| (share.worker, share.block.data().to_vec()))
            .collect();
        let ntt_decoder = LagrangeDecoder::<P64>::new(config);
        assert!(ntt_decoder.supports_ntt());
        // The Lagrange comparator decodes the same code from a straggler-free
        // round minus one worker, which forces the matrix path on identical
        // subgroup points.
        let partial: Vec<(usize, Vec<F64>)> = results[1..].to_vec();
        group.bench_with_input(
            BenchmarkId::new(format!("k{partitions}"), "matrix"),
            &partitions,
            |bencher, _| bencher.iter(|| ntt_decoder.decode_erasure(black_box(&partial)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("k{partitions}"), "ntt"),
            &partitions,
            |bencher, _| bencher.iter(|| ntt_decoder.decode_erasure(black_box(&results)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mds_encoding_by_size,
    bench_encoding_by_worker_count,
    bench_private_encoding,
    bench_f64_matrix_vs_ntt_encoding,
    bench_f64_matrix_vs_ntt_decoding
);
criterion_main!(benches);
