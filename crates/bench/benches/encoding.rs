//! Encoding benchmarks: MDS/Lagrange encoding cost as a function of the data
//! size and the worker count, backing the paper's "encoding is a one-time,
//! near-linear cost" discussion (§II-A).

use avcc_coding::{LagrangeEncoder, SchemeConfig};
use avcc_field::{F25, P25};
use avcc_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data_blocks(rows: usize, cols: usize, partitions: usize, seed: u64) -> Vec<Matrix<F25>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    matrix.split_rows(partitions)
}

fn bench_mds_encoding_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/mds_12_9");
    for &rows in &[90usize, 450, 900] {
        let blocks = data_blocks(rows, 63, 9, 1);
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| encoder.encode_deterministic(black_box(&blocks)))
        });
    }
    group.finish();
}

fn bench_encoding_by_worker_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/workers");
    for &workers in &[12usize, 18, 24] {
        let blocks = data_blocks(450, 63, 9, 2);
        let config = SchemeConfig::linear(workers, 9, workers - 10, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, _| bencher.iter(|| encoder.encode_deterministic(black_box(&blocks))),
        );
    }
    group.finish();
}

fn bench_private_encoding(c: &mut Criterion) {
    // T = 2 privacy pads: the extra cost of the privacy guarantee.
    let blocks = data_blocks(450, 63, 9, 3);
    let config = SchemeConfig::new(14, 9, 1, 1, 2, 1).unwrap();
    let encoder = LagrangeEncoder::<P25>::new(config);
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("encode/private_t2", |bencher| {
        bencher.iter(|| encoder.encode(black_box(&blocks), &mut rng))
    });
}

criterion_group!(
    benches,
    bench_mds_encoding_by_size,
    bench_encoding_by_worker_count,
    bench_private_encoding
);
criterion_main!(benches);
