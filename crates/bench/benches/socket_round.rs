//! Informational comparison of executor round latency: in-process threads vs
//! the TCP-loopback socket runtime vs UDS — same blocks, same inputs, same
//! kernel, so the spread is pure runtime overhead (frame encode/decode, CRC,
//! syscalls, loopback hops).
//!
//! Not gated: a socket round being slower than a threaded round is expected
//! physics, and the numbers feed `EXPERIMENTS.md`, not a regression wall.

use std::time::Duration;

use avcc_sim::cluster::ClusterProfile;
use avcc_sim::executor::{Executor, ThreadedExecutor};
use avcc_sim::socket::{SocketConfig, SocketExecutor, Transport};
use avcc_sim::wire::Block;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const Q: u64 = 2_305_843_009_213_693_951; // P61

fn elements(count: usize, seed: u64) -> Vec<u64> {
    (0..count as u64)
        .map(|i| {
            seed.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i.wrapping_mul(1_442_695_040_888_963_407))
                % Q
        })
        .collect()
}

fn blocks(workers: usize, rows: usize, cols: usize) -> Vec<Block> {
    (0..workers)
        .map(|w| Block {
            modulus: Q,
            rows: rows as u32,
            cols: cols as u32,
            elements: elements(rows * cols, 0x5EED + w as u64),
        })
        .collect()
}

fn inputs(workers: usize, cols: usize) -> Vec<Vec<Vec<u64>>> {
    (0..workers)
        .map(|w| vec![elements(cols, 0xF00D + w as u64)])
        .collect()
}

fn socket_config(transport: Transport) -> SocketConfig {
    SocketConfig {
        transport,
        connect_timeout: Duration::from_secs(20),
        round_timeout: Duration::from_secs(20),
        ..SocketConfig::default()
    }
}

/// One full round (dispatch + compute + collect) per iteration, with a fresh
/// round number each time so no executor can cache across iterations.
fn time_rounds(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: BenchmarkId,
    executor: &mut dyn Executor,
    job: u64,
    inputs: &[Vec<Vec<u64>>],
    expected: usize,
) {
    let mut round = 0u64;
    group.bench_function(id, |b| {
        b.iter(|| {
            let outcomes = executor
                .execute_round(job, round, black_box(inputs))
                .expect("bench round");
            assert_eq!(outcomes.len(), expected, "bench round lost workers");
            round += 1;
            outcomes
        })
    });
}

fn bench_socket_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("socket_round");
    for (workers, rows, cols) in [(4usize, 32usize, 32usize), (8, 128, 64)] {
        let blocks = blocks(workers, rows, cols);
        let inputs = inputs(workers, cols);
        let job = 1u64;
        let label = format!("w{workers}_r{rows}x{cols}");

        let mut threaded = ThreadedExecutor::new(ClusterProfile::uniform(workers));
        threaded.install_blocks(job, &blocks).unwrap();
        time_rounds(
            &mut group,
            BenchmarkId::new(&label, "threaded"),
            &mut threaded,
            job,
            &inputs,
            workers,
        );

        let mut tcp = SocketExecutor::with_config(
            ClusterProfile::uniform(workers),
            socket_config(Transport::Tcp),
        )
        .expect("spawn TCP fleet");
        tcp.install_blocks(job, &blocks).unwrap();
        time_rounds(
            &mut group,
            BenchmarkId::new(&label, "tcp"),
            &mut tcp,
            job,
            &inputs,
            workers,
        );

        let mut uds = SocketExecutor::with_config(
            ClusterProfile::uniform(workers),
            socket_config(Transport::Uds),
        )
        .expect("spawn UDS fleet");
        uds.install_blocks(job, &blocks).unwrap();
        time_rounds(
            &mut group,
            BenchmarkId::new(&label, "uds"),
            &mut uds,
            job,
            &inputs,
            workers,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_socket_round);
criterion_main!(benches);
