//! Churn-recovery benchmark: wall-clock of one training job on a churning
//! fleet, with and without the adaptive-(K, T) autopilot.
//!
//! The fleet carries a sustained correlated slow rack (workers 0–2 at ×8,
//! the paper's straggler profile) whose sleeps dominate the timings, so the
//! comparison measures protocol structure rather than host compute noise.
//! The churn schedule flaps three fast workers out at round 2 and a fourth
//! at round 14, permanently:
//!
//! * `static` runs the paper's reactive controller. The fourth departure
//!   drops the fleet below the recovery threshold, so rounds park and
//!   re-dispatch (each re-dispatch paying a full slow-rack round) until the
//!   controller or the stall-budget shrink reacts.
//! * `autopilot` watches the smoothed missing-worker rate climb after the
//!   first three departures and retunes K downward *before* the fourth, so
//!   no round ever parks.
//!
//! `churn_recover/flap_fleet/{static,autopilot}` is the PR10 acceptance
//! pair: the autopilot must not lose to the static configuration under
//! churn — CI enforces it via `scripts/bench_regression.py`. The `quiet`
//! case (no churn) is informational: it shows what the churn itself costs.
//! All three cases are asserted bit-identical before any timing: churn,
//! parking, shrink-recoding and retuning may change *which* results decode,
//! never the decoded values.

use avcc_core::{AutopilotConfig, ExperimentConfig, FaultScenario};
use avcc_field::P25;
use avcc_ml::dataset::DatasetConfig;
use avcc_serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig, ServingReport};
use avcc_sim::attack::AttackModel;
use avcc_sim::churn::{ChurnAction, ChurnSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const WORKERS: usize = 12;
const FLEET_WIDTH: usize = 4;

/// One AVCC training job designed for the slow rack (S = 3) with no
/// Byzantine workers; long enough (12 iterations) for the autopilot's EWMA
/// to cross its retune threshold before the fourth departure.
fn job(autopilot: bool) -> ExperimentConfig {
    let scenario = FaultScenario::paper(3, 0, AttackModel::None);
    let mut config = ExperimentConfig::paper_avcc(3, 0, scenario);
    config.iterations = 12;
    config.time_scale = 1.0;
    config.seed = 17;
    config.dataset = DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    };
    if autopilot {
        // A higher headroom keeps the quiet warmup from growing K (only to
        // have churn force it straight back down), and the longer cooldown
        // spaces retunes so the observed-straggler feedback cannot ping-pong
        // the code dimension — each retune costs a real re-encode.
        config.autopilot = AutopilotConfig {
            headroom: 2.0,
            cooldown: 6,
            ..AutopilotConfig::with_privacy(0)
        };
    }
    config
}

/// Three fast workers leave at round 2; a fourth at round 14. The windows
/// outlast the job, so the departures are permanent.
fn churn() -> ChurnSchedule {
    let schedule = [7usize, 8, 9]
        .iter()
        .fold(ChurnSchedule::quiet(), |schedule, &worker| {
            schedule.at(
                2,
                ChurnAction::Flap {
                    worker,
                    rounds: 400,
                },
            )
        });
    schedule.at(
        14,
        ChurnAction::Flap {
            worker: 10,
            rounds: 400,
        },
    )
}

fn serve(fleet: &Fleet, churned: bool, autopilot: bool) -> ServingReport<P25> {
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig {
        sleep_per_slowdown_unit: 0.004,
        ..SchedulerConfig::default()
    });
    if churned {
        scheduler.set_churn(churn(), WORKERS);
    }
    scheduler
        .submit(JobSpec::Training(job(autopilot)))
        .expect("queue has room");
    scheduler.run(fleet)
}

fn training_output(report: &ServingReport<P25>, case: &str) -> avcc_core::TrainingReport {
    assert_eq!(report.metrics.jobs_failed, 0, "{case}: job failed");
    let JobOutput::Training(output) = &report.jobs[0].output else {
        panic!("{case}: bench job is a training job");
    };
    (**output).clone()
}

fn bench_churn_recover(c: &mut Criterion) {
    let fleet = Fleet::new(FLEET_WIDTH);

    // Churn may only change the timing, never the results.
    let quiet = training_output(&serve(&fleet, false, false), "quiet");
    let static_churned = training_output(&serve(&fleet, true, false), "static");
    let autopiloted = training_output(&serve(&fleet, true, true), "autopilot");
    for (case, output) in [("static", &static_churned), ("autopilot", &autopiloted)] {
        assert_eq!(output.len(), quiet.len(), "{case}: iteration count");
        for (index, (churned, oracle)) in
            output.iterations.iter().zip(&quiet.iterations).enumerate()
        {
            assert_eq!(
                (churned.test_accuracy, churned.train_loss),
                (oracle.test_accuracy, oracle.train_loss),
                "{case}: model diverged from the quiet fleet at iteration {index}"
            );
        }
    }
    // Pin the scenario's shape: both churned runs re-encode at least once —
    // the static run reactively, the autopilot run through its retunes.
    assert!(static_churned.reconfiguration_count() >= 1);
    assert!(autopiloted.reconfiguration_count() >= 1);

    let mut group = c.benchmark_group("churn_recover/flap_fleet");
    group.bench_function(BenchmarkId::from_parameter("quiet"), |bencher| {
        bencher.iter(|| serve(&fleet, false, false))
    });
    group.bench_function(BenchmarkId::from_parameter("static"), |bencher| {
        bencher.iter(|| serve(&fleet, true, false))
    });
    group.bench_function(BenchmarkId::from_parameter("autopilot"), |bencher| {
        bencher.iter(|| serve(&fleet, true, true))
    });
    group.finish();
}

criterion_group!(benches, bench_churn_recover);
criterion_main!(benches);
