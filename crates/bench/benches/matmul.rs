//! Worker-kernel benchmarks: serial versus multi-threaded field matrix–vector
//! products. These calibrate the simulator's compute-cost model and back the
//! claim that the worker compute dominates the master-side overheads.

use avcc_field::F25;
use avcc_linalg::{mat_vec, mat_vec_parallel, matt_vec, matt_vec_parallel, Matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<F25> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
}

fn bench_worker_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul/worker_block");
    // A worker block of the paper's GISETTE partition: 667 x 5000.
    for &(rows, cols) in &[(100usize, 63usize), (667, 5000)] {
        let matrix = random_matrix(rows, cols, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<F25> = avcc_field::random_vector(&mut rng, cols);
        let y: Vec<F25> = avcc_field::random_vector(&mut rng, rows);
        group.bench_with_input(
            BenchmarkId::new("mat_vec", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| mat_vec(black_box(&matrix), black_box(&x))),
        );
        group.bench_with_input(
            BenchmarkId::new("matt_vec", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| matt_vec(black_box(&matrix), black_box(&y))),
        );
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let matrix = random_matrix(2000, 1000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let x: Vec<F25> = avcc_field::random_vector(&mut rng, 1000);
    let y: Vec<F25> = avcc_field::random_vector(&mut rng, 2000);
    let mut group = c.benchmark_group("matmul/parallel_2000x1000");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("mat_vec", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| mat_vec_parallel(black_box(&matrix), black_box(&x), threads))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("matt_vec", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| matt_vec_parallel(black_box(&matrix), black_box(&y), threads))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worker_kernel, bench_parallel_speedup);
criterion_main!(benches);
