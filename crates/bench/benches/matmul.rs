//! Worker-kernel benchmarks: serial versus multi-threaded field matrix–vector
//! and matrix–matrix products. These calibrate the simulator's compute-cost
//! model and back the claim that the worker compute dominates the master-side
//! overheads.
//!
//! The `mat_mat_512/<field>/{serial,pooled}` pairs are the PR4 acceptance
//! benches: the pooled kernel (chunks as `avcc_pool` work-stealing tasks)
//! must not lose to the PR1 serial blocked kernel — CI enforces it via
//! `scripts/bench_regression.py`. On a single-core host the pool degenerates
//! to the serial path, so the pair ties; on multi-core hosts the pooled side
//! wins by roughly the core count. `pool_fanout/*` compares the *dispatch
//! mechanisms* themselves — per-task scoped OS threads (the pre-PR4
//! implementation) against pool tasks — at a granularity where spawn
//! overhead matters.

use avcc_field::{Fp, PrimeModulus, F25, F61};
use avcc_linalg::partition::chunk_ranges;
use avcc_linalg::{
    mat_mat, mat_mat_auto, mat_mat_parallel, mat_vec, mat_vec_parallel, matt_vec,
    matt_vec_parallel, Matrix,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<F25> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
}

fn bench_worker_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul/worker_block");
    // A worker block of the paper's GISETTE partition: 667 x 5000.
    for &(rows, cols) in &[(100usize, 63usize), (667, 5000)] {
        let matrix = random_matrix(rows, cols, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<F25> = avcc_field::random_vector(&mut rng, cols);
        let y: Vec<F25> = avcc_field::random_vector(&mut rng, rows);
        group.bench_with_input(
            BenchmarkId::new("mat_vec", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| mat_vec(black_box(&matrix), black_box(&x))),
        );
        group.bench_with_input(
            BenchmarkId::new("matt_vec", format!("{rows}x{cols}")),
            &rows,
            |bencher, _| bencher.iter(|| matt_vec(black_box(&matrix), black_box(&y))),
        );
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let matrix = random_matrix(2000, 1000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let x: Vec<F25> = avcc_field::random_vector(&mut rng, 1000);
    let y: Vec<F25> = avcc_field::random_vector(&mut rng, 2000);
    let mut group = c.benchmark_group("matmul/parallel_2000x1000");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("mat_vec", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| mat_vec_parallel(black_box(&matrix), black_box(&x), threads))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("matt_vec", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| matt_vec_parallel(black_box(&matrix), black_box(&y), threads))
            },
        );
    }
    group.finish();
}

/// The PR4 acceptance kernel: 512×512 matrix–matrix product, serial blocked
/// strips versus the same strips as work-stealing pool tasks.
fn bench_mat_mat_512(c: &mut Criterion) {
    const N: usize = 512;

    fn run<M: PrimeModulus>(c: &mut Criterion, field_name: &str, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix<Fp<M>> = Matrix::from_vec(N, N, avcc_field::random_matrix(&mut rng, N, N));
        let b: Matrix<Fp<M>> = Matrix::from_vec(N, N, avcc_field::random_matrix(&mut rng, N, N));
        let threads = avcc_pool::global().parallelism();
        let mut group = c.benchmark_group(format!("mat_mat_512/{field_name}"));
        group.bench_function(BenchmarkId::from_parameter("serial"), |bencher| {
            bencher.iter(|| mat_mat(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::from_parameter("pooled"), |bencher| {
            bencher.iter(|| mat_mat_parallel(black_box(&a), black_box(&b), threads))
        });
        group.finish();
    }

    run::<avcc_field::P25>(c, "p25", 7);
    run::<avcc_field::P61>(c, "p61", 8);
}

/// Dispatch-mechanism comparison: fanning eight moderate dot-product chunks
/// out as scoped OS threads (one spawn per chunk, the pre-PR4 pattern)
/// versus as pool tasks. The work per chunk is small enough that dispatch
/// overhead is visible; the pool pays one queue push per task instead of an
/// OS thread spawn/join.
fn bench_pool_fanout(c: &mut Criterion) {
    const CHUNKS: usize = 8;
    const CHUNK_LEN: usize = 4096;
    let mut rng = StdRng::seed_from_u64(9);
    let a: Vec<F61> = avcc_field::random_vector(&mut rng, CHUNKS * CHUNK_LEN);
    let b: Vec<F61> = avcc_field::random_vector(&mut rng, CHUNKS * CHUNK_LEN);
    let ranges = chunk_ranges(a.len(), CHUNKS);

    let mut group = c.benchmark_group(format!("pool_fanout/dot{CHUNKS}x{CHUNK_LEN}"));
    group.bench_function(BenchmarkId::from_parameter("scoped_threads"), |bencher| {
        bencher.iter(|| {
            let partials: Vec<F61> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .cloned()
                    .map(|range| {
                        let (a, b) = (&a, &b);
                        scope.spawn(move || avcc_field::dot(&a[range.clone()], &b[range]))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("fanout thread panicked"))
                    .collect()
            });
            black_box(partials)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("pool"), |bencher| {
        bencher.iter(|| {
            let partials = avcc_pool::map_ranges(ranges.clone(), |range| {
                avcc_field::dot(&a[range.clone()], &b[range])
            });
            black_box(partials)
        })
    });
    group.finish();
}

/// The PR6 autotune pair: the same 768×512 matrix–matrix product dispatched
/// with the historical fixed 8-way fan-out versus the autotuned chunk count
/// (`auto_chunk_count`: work size × global pool width, floor on chunk size).
/// CI gates `auto` to never lose to `fixed8`; on hosts where 8 happens to be
/// the right answer the pair ties, while narrow pools and small blocks see
/// the autotuned side skip queueing costs the fixed count pays.
fn bench_chunk_autotune(c: &mut Criterion) {
    const ROWS: usize = 768;
    const COLS: usize = 512;
    let mut rng = StdRng::seed_from_u64(10);
    let a: Matrix<F25> =
        Matrix::from_vec(ROWS, COLS, avcc_field::random_matrix(&mut rng, ROWS, COLS));
    let b: Matrix<F25> =
        Matrix::from_vec(COLS, COLS, avcc_field::random_matrix(&mut rng, COLS, COLS));

    let mut group = c.benchmark_group(format!("chunk_autotune/{ROWS}x{COLS}"));
    group.bench_function(BenchmarkId::from_parameter("fixed8"), |bencher| {
        bencher.iter(|| mat_mat_parallel(black_box(&a), black_box(&b), 8))
    });
    group.bench_function(BenchmarkId::from_parameter("auto"), |bencher| {
        bencher.iter(|| mat_mat_auto(black_box(&a), black_box(&b)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_kernel,
    bench_parallel_speedup,
    bench_mat_mat_512,
    bench_pool_fanout,
    bench_chunk_autotune
);
criterion_main!(benches);
