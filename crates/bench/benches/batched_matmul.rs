//! Encode-amortization benchmark: serving `m` matvec functions as one
//! multi-function [`JobSpec::MatMulBatch`] over a shared encoded dataset
//! versus `m` independent [`JobSpec::CodedMatVec`] jobs that each re-encode
//! the same matrix.
//!
//! The `batched_matmul/m{1,4,8}/{independent,shared}` pairs are the PR7
//! acceptance bench: at `m = 8` the shared-encode path must beat the
//! independent path by at least 2× — CI enforces it via
//! `scripts/bench_regression.py`. The win is structural: the independent
//! path pays `m` Lagrange encodes (each `O(K · N · rows/K · cols)` work),
//! `m` key generations and `m` cold Lagrange-basis interpolations, where
//! the batch pays each exactly once and verifies all `m` functions with a
//! single power-structured Freivalds pass. Outputs are bit-identical either
//! way, which the bench asserts once before timing.

use avcc_coding::SchemeConfig;
use avcc_field::P25;
use avcc_linalg::Matrix;
use avcc_serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig, ServingReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FLEET_WIDTH: usize = 4;
const ROWS: usize = 240;
const COLS: usize = 128;
const SEED: u64 = 100;

fn coding() -> SchemeConfig {
    SchemeConfig::linear(12, 8, 2, 1).expect("feasible coding")
}

fn problem(functions: usize) -> (Matrix<avcc_field::F25>, Vec<Vec<avcc_field::F25>>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let matrix = Matrix::from_vec(ROWS, COLS, avcc_field::random_matrix(&mut rng, ROWS, COLS));
    let inputs = (0..functions)
        .map(|_| avcc_field::random_vector(&mut rng, COLS))
        .collect();
    (matrix, inputs)
}

/// `m` independent single-function jobs: one encode per function.
fn serve_independent(
    fleet: &Fleet,
    matrix: &Matrix<avcc_field::F25>,
    inputs: &[Vec<avcc_field::F25>],
) -> ServingReport<P25> {
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    for input in inputs {
        scheduler
            .submit(
                JobSpec::matmul(matrix.clone(), input.clone())
                    .with_scheme(coding())
                    .with_seed(SEED)
                    .build(),
            )
            .expect("queue has room");
    }
    scheduler.run(fleet)
}

/// One multi-function job: a single encode shared by every function.
fn serve_shared(
    fleet: &Fleet,
    matrix: &Matrix<avcc_field::F25>,
    inputs: &[Vec<avcc_field::F25>],
) -> ServingReport<P25> {
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    scheduler
        .submit(
            JobSpec::matmul(matrix.clone(), inputs[0].clone())
                .with_batch(inputs.to_vec())
                .with_scheme(coding())
                .with_seed(SEED)
                .build(),
        )
        .expect("queue has room");
    scheduler.run(fleet)
}

/// Flattens a report's matvec outputs into function order.
fn outputs(report: &ServingReport<P25>) -> Vec<Vec<avcc_field::F25>> {
    let mut all = Vec::new();
    for job in &report.jobs {
        match &job.output {
            JobOutput::MatVec(output) => all.push(output.clone()),
            JobOutput::MatVecBatch(batch) => all.extend(batch.iter().cloned()),
            _ => panic!("bench jobs are matvec jobs"),
        }
    }
    all
}

fn bench_batched_matmul(c: &mut Criterion) {
    let fleet = Fleet::new(FLEET_WIDTH);
    let mut group = c.benchmark_group("batched_matmul");

    for functions in [1usize, 4, 8] {
        let (matrix, inputs) = problem(functions);

        // Batching may only change the cost, never the answer.
        let independent = outputs(&serve_independent(&fleet, &matrix, &inputs));
        let shared = outputs(&serve_shared(&fleet, &matrix, &inputs));
        assert_eq!(
            independent, shared,
            "shared-encode outputs diverged from independent jobs at m={functions}"
        );

        group.bench_function(
            BenchmarkId::new(format!("m{functions}"), "independent"),
            |bencher| bencher.iter(|| serve_independent(&fleet, &matrix, &inputs)),
        );
        group.bench_function(
            BenchmarkId::new(format!("m{functions}"), "shared"),
            |bencher| bencher.iter(|| serve_shared(&fleet, &matrix, &inputs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_matmul);
criterion_main!(benches);
