//! Serving-layer benchmark: jobs/sec on a fixed-width fleet, pipelined
//! (depth 4) versus synchronous (depth 1) schedules over the same job batch.
//!
//! The `serving/jobs4_fleet4/{synchronous,pipelined}` pair is the PR6
//! acceptance bench: with four concurrent training jobs on a four-slot
//! fleet the pipelined schedule must beat the synchronous one by at least
//! 1.3× — CI enforces it via `scripts/bench_regression.py`. The win is
//! structural, not a core-count artifact: each job carries a ×10 straggler
//! whose slot sleep (`sleep_per_slowdown_unit`) sits on the synchronous
//! critical path every round, while the pipelined schedule overlaps the
//! sleeps (and the master-side encode/verify/decode) of different jobs on
//! the same slots. Results stay bit-identical either way, which the bench
//! asserts once before timing.

use avcc_core::{ExperimentConfig, FaultScenario};
use avcc_field::P25;
use avcc_ml::dataset::DatasetConfig;
use avcc_serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig, ServingReport};
use avcc_sim::attack::AttackModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const JOBS: usize = 4;
const FLEET_WIDTH: usize = 4;

/// A short uncoded training job with one ×10 straggler: the uncoded scheme
/// waits for every worker, so the straggler sleep bounds each round and the
/// timings are dominated by (deterministic) sleeps rather than by host
/// compute noise.
fn job(seed: u64) -> ExperimentConfig {
    let scenario = FaultScenario::paper(1, 0, AttackModel::None);
    let mut config = ExperimentConfig::paper_uncoded(scenario);
    config.iterations = 3;
    config.time_scale = 1.0;
    config.seed = seed;
    config.dataset = DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    };
    config
}

fn serve(fleet: &Fleet, config: SchedulerConfig) -> ServingReport<P25> {
    let mut scheduler = Scheduler::<P25>::new(config);
    for seed in 0..JOBS as u64 {
        scheduler
            .submit(JobSpec::Training(job(seed + 1)))
            .expect("queue has room");
    }
    scheduler.run(fleet)
}

fn bench_serving(c: &mut Criterion) {
    let fleet = Fleet::new(FLEET_WIDTH);

    // The schedule may only change the timing, never the results.
    let pipelined = serve(&fleet, SchedulerConfig::default());
    let synchronous = serve(&fleet, SchedulerConfig::synchronous());
    for (fast, slow) in pipelined.jobs.iter().zip(&synchronous.jobs) {
        let (JobOutput::Training(fast), JobOutput::Training(slow)) = (&fast.output, &slow.output)
        else {
            panic!("all bench jobs are training jobs");
        };
        assert_eq!(
            fast.final_accuracy(),
            slow.final_accuracy(),
            "pipelined and synchronous schedules diverged"
        );
    }

    let mut group = c.benchmark_group(format!("serving/jobs{JOBS}_fleet{FLEET_WIDTH}"));
    group.bench_function(BenchmarkId::from_parameter("synchronous"), |bencher| {
        bencher.iter(|| serve(&fleet, SchedulerConfig::synchronous()))
    });
    group.bench_function(BenchmarkId::from_parameter("pipelined"), |bencher| {
        bencher.iter(|| serve(&fleet, SchedulerConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
