//! Decoding benchmarks: AVCC's erasure decoding versus LCC's error-correcting
//! (Berlekamp–Welch) decoding — the master-side cost asymmetry behind Fig. 4
//! and behind AVCC's ability to start decoding early — plus the
//! straggler-decode pairs (`decode_straggler/k<K>_miss<m>/{dense,tree}`) that
//! `scripts/bench_regression.py` gates: with workers missing, the
//! subproduct-tree partial path must not lose to the dense Lagrange
//! combination at `K ≥ 64`.

use avcc_coding::{LagrangeDecoder, LagrangeEncoder, SchemeConfig};
use avcc_field::{F25, F64, P25, P64};
use avcc_linalg::{mat_vec, Matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds worker results for a (12, 9) code computing X·w over blocks of
/// `rows` total rows.
fn worker_results(rows: usize, corrupt: Option<usize>) -> Vec<(usize, Vec<F25>)> {
    let mut rng = StdRng::seed_from_u64(7);
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let matrix = Matrix::from_vec(rows, 63, avcc_field::random_matrix(&mut rng, rows, 63));
    let blocks = matrix.split_rows(9);
    let encoder = LagrangeEncoder::<P25>::new(config);
    let shares = encoder.encode_deterministic(&blocks);
    let w: Vec<F25> = avcc_field::random_vector(&mut rng, 63);
    let mut results: Vec<(usize, Vec<F25>)> = shares
        .iter()
        .map(|s| (s.worker, mat_vec(&s.block, &w)))
        .collect();
    if let Some(victim) = corrupt {
        for value in results[victim].1.iter_mut() {
            *value = -*value;
        }
    }
    results
}

fn bench_erasure_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/avcc_erasure");
    for &rows in &[90usize, 450, 900] {
        let results = worker_results(rows, None);
        let decoder = LagrangeDecoder::<P25>::new(SchemeConfig::linear(12, 9, 2, 1).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| decoder.decode_erasure(black_box(&results[..9])))
        });
    }
    group.finish();
}

fn bench_error_correcting_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/lcc_berlekamp_welch");
    for &rows in &[90usize, 450, 900] {
        let results = worker_results(rows, Some(4));
        let decoder = LagrangeDecoder::<P25>::new(SchemeConfig::linear(12, 9, 1, 1).unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| decoder.decode_with_errors(black_box(&results[..11]), 1, &mut rng))
        });
    }
    group.finish();
}

/// Straggler decoding on the Goldilocks field: the dense Lagrange
/// combination against the subproduct-tree partial path on identical
/// subgroup-position inputs with 1–4 workers missing. Both paths run with a
/// warm per-survivor-set basis cache (consecutive rounds straggle the same
/// workers, so the steady state is what matters); the ids are parsed by
/// `scripts/bench_regression.py`, which fails CI if the tree path loses to
/// the dense path at `K ≥ 64`.
fn bench_straggler_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_straggler");
    for &(partitions, workers) in &[(64usize, 128usize), (128, 256)] {
        let width = 128usize;
        let mut rng = StdRng::seed_from_u64(30);
        let matrix = Matrix::from_vec(
            partitions,
            width,
            avcc_field::random_matrix(&mut rng, partitions, width),
        );
        let blocks = matrix.split_rows(partitions);
        let config = SchemeConfig::linear(workers, partitions, 4, 1).unwrap();
        let encoder = LagrangeEncoder::<P64>::new(config);
        assert!(encoder.uses_ntt());
        let shares = encoder.encode_deterministic(&blocks);
        // Workers apply the identity map: results are the share rows
        // themselves, which keeps the bench focused on decoding cost.
        let results: Vec<(usize, Vec<F64>)> = shares
            .iter()
            .map(|share| (share.worker, share.block.data().to_vec()))
            .collect();
        let decoder = LagrangeDecoder::<P64>::new(config);
        assert!(decoder.supports_partial_ntt());
        for &missing in &[1usize, 4] {
            let partial: Vec<(usize, Vec<F64>)> = results[missing..].to_vec();
            // Same survivor subset through both paths; outputs must be
            // bit-identical before we time anything.
            assert_eq!(
                decoder.decode_erasure(&partial).unwrap(),
                decoder.decode_erasure_lagrange(&partial).unwrap()
            );
            group.bench_with_input(
                BenchmarkId::new(format!("k{partitions}_miss{missing}"), "dense"),
                &missing,
                |bencher, _| {
                    bencher.iter(|| {
                        decoder
                            .decode_erasure_lagrange(black_box(&partial))
                            .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("k{partitions}_miss{missing}"), "tree"),
                &missing,
                |bencher, _| bencher.iter(|| decoder.decode_erasure(black_box(&partial)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_erasure_decoding,
    bench_error_correcting_decoding,
    bench_straggler_decoding
);
criterion_main!(benches);
