//! Decoding benchmarks: AVCC's erasure decoding versus LCC's error-correcting
//! (Berlekamp–Welch) decoding — the master-side cost asymmetry behind Fig. 4
//! and behind AVCC's ability to start decoding early.

use avcc_coding::{LagrangeDecoder, LagrangeEncoder, SchemeConfig};
use avcc_field::{F25, P25};
use avcc_linalg::{mat_vec, Matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds worker results for a (12, 9) code computing X·w over blocks of
/// `rows` total rows.
fn worker_results(rows: usize, corrupt: Option<usize>) -> Vec<(usize, Vec<F25>)> {
    let mut rng = StdRng::seed_from_u64(7);
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let matrix = Matrix::from_vec(rows, 63, avcc_field::random_matrix(&mut rng, rows, 63));
    let blocks = matrix.split_rows(9);
    let encoder = LagrangeEncoder::<P25>::new(config);
    let shares = encoder.encode_deterministic(&blocks);
    let w: Vec<F25> = avcc_field::random_vector(&mut rng, 63);
    let mut results: Vec<(usize, Vec<F25>)> = shares
        .iter()
        .map(|s| (s.worker, mat_vec(&s.block, &w)))
        .collect();
    if let Some(victim) = corrupt {
        for value in results[victim].1.iter_mut() {
            *value = -*value;
        }
    }
    results
}

fn bench_erasure_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/avcc_erasure");
    for &rows in &[90usize, 450, 900] {
        let results = worker_results(rows, None);
        let decoder = LagrangeDecoder::<P25>::new(SchemeConfig::linear(12, 9, 2, 1).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| decoder.decode_erasure(black_box(&results[..9])))
        });
    }
    group.finish();
}

fn bench_error_correcting_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/lcc_berlekamp_welch");
    for &rows in &[90usize, 450, 900] {
        let results = worker_results(rows, Some(4));
        let decoder = LagrangeDecoder::<P25>::new(SchemeConfig::linear(12, 9, 1, 1).unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bencher, _| {
            bencher.iter(|| decoder.decode_with_errors(black_box(&results[..11]), 1, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_erasure_decoding,
    bench_error_correcting_decoding
);
criterion_main!(benches);
