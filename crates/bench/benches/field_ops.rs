//! Micro-benchmarks of the finite-field substrate: scalar arithmetic, dot
//! products and batch inversion, which bound every higher-level cost.
//!
//! The `reduction/` and `mat_vec_512/` groups compare three implementations
//! of the multiply-reduce at the bottom of every kernel:
//!
//! * **generic_div** — `(a as u128 * b as u128) % q`: the pre-PR1 baseline, a
//!   128-bit hardware division per product;
//! * **specialized** — the per-modulus [`PrimeModulus::reduce_wide`] backend
//!   (Mersenne fold for `F_{2^61-1}`, pseudo-Mersenne fold for `F_{2^25-39}`,
//!   Barrett for `F_251`), one reduction per product;
//! * **lazy** — unreduced `u128` accumulation with one specialized reduction
//!   per [`PrimeModulus::WIDE_BATCH`] products (the batch/linalg kernels).
//!
//! `BENCH_PR1.json` in the repo root records a captured run.

use avcc_field::{
    batch_inverse, dot, Fp, MontFp, PrimeField, PrimeModulus, F25, F61, P25, P251, P61, P64,
};
use avcc_linalg::{mat_vec, Matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-PR1 multiply-reduce: one 128-bit division per product.
#[inline]
fn mul_generic_div<M: PrimeModulus>(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % M::MODULUS as u128) as u64
}

/// The pre-PR1 dot product: elementwise multiply-reduce, modular adds.
fn dot_generic_div<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Fp<M> {
    let mut accumulator = 0u64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let product = mul_generic_div::<M>(x.value(), y.value());
        accumulator = ((accumulator as u128 + product as u128) % M::MODULUS as u128) as u64;
    }
    Fp::<M>::new(accumulator)
}

/// The pre-PR1 matrix–vector product: one division-reduced dot per row.
fn mat_vec_generic_div<M: PrimeModulus>(a: &Matrix<Fp<M>>, x: &[Fp<M>]) -> Vec<Fp<M>> {
    a.rows_iter().map(|row| dot_generic_div(row, x)).collect()
}

fn bench_scalar_ops(c: &mut Criterion) {
    let a = F25::from_u64(12_345_678);
    let b = F25::from_u64(9_876_543);
    c.bench_function("field/mul_f25", |bencher| {
        bencher.iter(|| black_box(a) * black_box(b))
    });
    c.bench_function("field/inverse_f25", |bencher| {
        bencher.iter(|| black_box(a).inverse())
    });
    let a61 = F61::from_u64(1_234_567_890_123);
    let b61 = F61::from_u64(987_654_321_987);
    c.bench_function("field/mul_f61", |bencher| {
        bencher.iter(|| black_box(a61) * black_box(b61))
    });
}

/// Streams `LEN` multiply-reduces per iteration so the comparison measures
/// reduction throughput, not loop or black-box overhead.
fn bench_reduction_backends(c: &mut Criterion) {
    const LEN: usize = 4096;

    fn operands<M: PrimeModulus>(seed: u64) -> (Vec<Fp<M>>, Vec<Fp<M>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            avcc_field::random_vector(&mut rng, LEN),
            avcc_field::random_vector(&mut rng, LEN),
        )
    }

    fn run<M: PrimeModulus>(c: &mut Criterion, field_name: &str, seed: u64) {
        let (a, b) = operands::<M>(seed);
        let mut group = c.benchmark_group(format!("reduction/{field_name}"));
        group.bench_function(BenchmarkId::from_parameter("generic_div"), |bencher| {
            bencher.iter(|| {
                let mut acc = 0u64;
                for (&x, &y) in a.iter().zip(b.iter()) {
                    acc ^= mul_generic_div::<M>(black_box(x.value()), black_box(y.value()));
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::from_parameter("specialized"), |bencher| {
            bencher.iter(|| {
                let mut acc = 0u64;
                for (&x, &y) in a.iter().zip(b.iter()) {
                    acc ^=
                        M::reduce_wide(black_box(x.value()) as u128 * black_box(y.value()) as u128);
                }
                acc
            })
        });
        group.finish();
    }

    run::<P61>(c, "p61", 1);
    run::<P25>(c, "p25", 2);
}

fn bench_dot_products(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("field/dot");
    for &len in &[64usize, 1024, 16_384] {
        let a: Vec<F25> = avcc_field::random_vector(&mut rng, len);
        let b: Vec<F25> = avcc_field::random_vector(&mut rng, len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, _| {
            bencher.iter(|| dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

/// generic-div vs specialized-per-element vs lazy dot at a fixed length.
fn bench_dot_backends(c: &mut Criterion) {
    const LEN: usize = 4096;

    fn run<M: PrimeModulus>(c: &mut Criterion, field_name: &str, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, LEN);
        let b: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, LEN);
        let mut group = c.benchmark_group(format!("dot_4096/{field_name}"));
        group.bench_function(BenchmarkId::from_parameter("generic_div"), |bencher| {
            bencher.iter(|| dot_generic_div(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::from_parameter("specialized"), |bencher| {
            bencher.iter(|| {
                black_box(&a)
                    .iter()
                    .zip(black_box(&b).iter())
                    .map(|(&x, &y)| x * y)
                    .sum::<Fp<M>>()
            })
        });
        group.bench_function(BenchmarkId::from_parameter("lazy"), |bencher| {
            bencher.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.finish();
    }

    run::<P61>(c, "p61", 3);
    run::<P25>(c, "p25", 4);
}

/// The acceptance-criterion kernel: 512×512 matrix–vector product.
fn bench_mat_vec_512(c: &mut Criterion) {
    const N: usize = 512;

    fn run<M: PrimeModulus>(c: &mut Criterion, field_name: &str, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix = Matrix::from_vec(N, N, avcc_field::random_matrix(&mut rng, N, N));
        let x: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, N);
        let mut group = c.benchmark_group(format!("mat_vec_512/{field_name}"));
        group.bench_function(BenchmarkId::from_parameter("generic_div"), |bencher| {
            bencher.iter(|| mat_vec_generic_div(black_box(&matrix), black_box(&x)))
        });
        group.bench_function(BenchmarkId::from_parameter("blocked_lazy"), |bencher| {
            bencher.iter(|| mat_vec(black_box(&matrix), black_box(&x)))
        });
        group.finish();
    }

    run::<P61>(c, "p61", 5);
    run::<P25>(c, "p25", 6);
}

/// The PR1 single-accumulator lazy dot: one `u128` running sum, one
/// specialized reduction per [`PrimeModulus::WIDE_BATCH`] products — the
/// baseline the lane-striped kernel is gated against (`avcc_field::dot`
/// itself stripes for the tight-cadence moduli, so the baseline is spelled
/// out here like the other pre-PR references).
fn dot_single_lane<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Fp<M> {
    let mut accumulator: u128 = 0;
    for (chunk_a, chunk_b) in a.chunks(M::WIDE_BATCH).zip(b.chunks(M::WIDE_BATCH)) {
        for (&x, &y) in chunk_a.iter().zip(chunk_b.iter()) {
            accumulator += x.value() as u128 * y.value() as u128;
        }
        accumulator = M::reduce_wide(accumulator) as u128;
    }
    Fp::<M>::new(M::reduce_wide(accumulator))
}

/// Vector-vs-scalar dot: the [`avcc_field::DOT_LANES`]-striped kernel
/// against the PR1 single-accumulator baseline, on the moduli whose collapse
/// cadence makes striping worthwhile (`p61`: every 63 products; `p64`:
/// every product — `P25`/`P251` keep the single accumulator via the
/// `LANE_STRIPE_MAX_BATCH` const branch, exactly as they keep their folds
/// over Montgomery). CI gates `vectorized` not losing to `scalar` at
/// length ≥ 4096 (`scripts/bench_regression.py`).
fn bench_dot_lanes(c: &mut Criterion) {
    fn run<M: PrimeModulus>(c: &mut Criterion, field_name: &str, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for len in [1024usize, 4096, 16_384] {
            let a: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, len);
            let b: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, len);
            let mut group = c.benchmark_group(format!("dot_lanes/{field_name}/len{len}"));
            group.bench_function(BenchmarkId::from_parameter("scalar"), |bencher| {
                bencher.iter(|| dot_single_lane(black_box(&a), black_box(&b)))
            });
            group.bench_function(BenchmarkId::from_parameter("vectorized"), |bencher| {
                bencher.iter(|| dot(black_box(&a), black_box(&b)))
            });
            group.finish();
        }
    }

    run::<P61>(c, "p61", 12);
    run::<P64>(c, "p64", 13);
}

fn bench_batch_inverse(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let values: Vec<F25> = avcc_field::rng::random_nonzero_vector(&mut rng, 1024);
    c.bench_function("field/batch_inverse_1024", |bencher| {
        bencher.iter(|| batch_inverse(black_box(&values)))
    });
}

/// The non-Montgomery square-and-multiply ladder, every product paying the
/// modulus's per-product `reduce_wide` — the baseline the chain gate
/// compares against (`Fp::pow` itself is Montgomery-routed for the chained
/// moduli, so the baseline is spelled out here like the other pre-PR
/// references).
fn pow_per_product<M: PrimeModulus>(base: Fp<M>, mut exponent: u64) -> Fp<M> {
    if exponent == 0 {
        return Fp::<M>::ONE;
    }
    let mut base = base;
    let mut accumulator = Fp::<M>::ONE;
    while exponent > 1 {
        if exponent & 1 == 1 {
            accumulator *= base;
        }
        base *= base;
        exponent >>= 1;
    }
    accumulator * base
}

/// The non-Montgomery batch inversion (prefix products, one Fermat
/// inversion via [`pow_per_product`], suffix sweep) — the chain-gate
/// baseline for `inverse_chain`.
fn batch_inverse_per_product<M: PrimeModulus>(values: &[Fp<M>]) -> Vec<Fp<M>> {
    let mut prefixes = Vec::with_capacity(values.len());
    let mut running = Fp::<M>::ONE;
    for &v in values {
        running *= v;
        prefixes.push(running);
    }
    let mut inverse_of_running = pow_per_product(running, M::MODULUS - 2);
    let mut result = vec![Fp::<M>::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        if i == 0 {
            result[0] = inverse_of_running;
        } else {
            result[i] = inverse_of_running * prefixes[i - 1];
            inverse_of_running *= values[i];
        }
    }
    result
}

/// The tentpole comparison: long dependent product chains per reduction
/// backend. `pow_chain/<field>/len<B>` runs a `B`-bit exponent ladder
/// (`B` squarings + up to `B` multiplies); `inverse_chain/<field>/len<N>`
/// batch-inverts `N` elements (`3(N−1)` chained multiplies plus one Fermat
/// ladder).
///
/// On `p251` the baseline is Barrett (`barrett` vs `montgomery`) and CI
/// gates Montgomery winning at length ≥ 64
/// (`scripts/bench_regression.py`). The `p64` pair (`fold` vs `montgomery`)
/// is informational: it tracks REDC against the Goldilocks ε-fold, the
/// trade the NTT butterflies make.
fn bench_montgomery_chains(c: &mut Criterion) {
    fn run_pow<M: PrimeModulus>(c: &mut Criterion, field_name: &str, baseline: &str, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Fp<M> = avcc_field::random_element(&mut rng);
        for bits in [16u32, 64] {
            let exponent = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let mut group = c.benchmark_group(format!("pow_chain/{field_name}/len{bits}"));
            group.bench_function(BenchmarkId::from_parameter(baseline), |bencher| {
                bencher.iter(|| pow_per_product(black_box(base), black_box(exponent)))
            });
            group.bench_function(BenchmarkId::from_parameter("montgomery"), |bencher| {
                // The routed path: one conversion in, REDC ladder, one out.
                bencher.iter(|| black_box(base).pow(black_box(exponent)))
            });
            group.finish();
        }
    }

    fn run_inverse<M: PrimeModulus>(
        c: &mut Criterion,
        field_name: &str,
        baseline: &str,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for len in [16usize, 64, 256, 1024] {
            let values: Vec<Fp<M>> = avcc_field::rng::random_nonzero_vector(&mut rng, len);
            let mut group = c.benchmark_group(format!("inverse_chain/{field_name}/len{len}"));
            group.bench_function(BenchmarkId::from_parameter(baseline), |bencher| {
                bencher.iter(|| batch_inverse_per_product(black_box(&values)))
            });
            group.bench_function(BenchmarkId::from_parameter("montgomery"), |bencher| {
                bencher.iter(|| batch_inverse(black_box(&values)))
            });
            group.finish();
        }
    }

    run_pow::<P251>(c, "p251", "barrett", 7);
    run_inverse::<P251>(c, "p251", "barrett", 8);
    run_pow::<P64>(c, "p64", "fold", 9);
    run_inverse::<P64>(c, "p64", "fold", 10);
}

/// `MontFp` chain-type overhead check: a running product that enters the
/// domain once versus per-product canonical multiplies.
fn bench_product_chain(c: &mut Criterion) {
    const LEN: usize = 1024;
    let mut rng = StdRng::seed_from_u64(11);
    let values: Vec<Fp<P251>> = avcc_field::rng::random_nonzero_vector(&mut rng, LEN);
    let mut group = c.benchmark_group(format!("product_chain/p251/len{LEN}"));
    group.bench_function(BenchmarkId::from_parameter("barrett"), |bencher| {
        bencher.iter(|| {
            black_box(&values)
                .iter()
                .fold(Fp::<P251>::ONE, |acc, &x| acc * x)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("montgomery"), |bencher| {
        bencher.iter(|| {
            let product: MontFp<P251> = black_box(&values)
                .iter()
                .map(|&x| MontFp::from(x))
                .product();
            Fp::from(product)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_ops,
    bench_reduction_backends,
    bench_dot_products,
    bench_dot_backends,
    bench_dot_lanes,
    bench_mat_vec_512,
    bench_batch_inverse,
    bench_montgomery_chains,
    bench_product_chain
);
criterion_main!(benches);
