//! Micro-benchmarks of the finite-field substrate: scalar arithmetic, dot
//! products and batch inversion, which bound every higher-level cost.

use avcc_field::{batch_inverse, dot, F25, F61, PrimeField};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scalar_ops(c: &mut Criterion) {
    let a = F25::from_u64(12_345_678);
    let b = F25::from_u64(9_876_543);
    c.bench_function("field/mul_f25", |bencher| {
        bencher.iter(|| black_box(a) * black_box(b))
    });
    c.bench_function("field/inverse_f25", |bencher| {
        bencher.iter(|| black_box(a).inverse())
    });
    let a61 = F61::from_u64(1_234_567_890_123);
    let b61 = F61::from_u64(987_654_321_987);
    c.bench_function("field/mul_f61", |bencher| {
        bencher.iter(|| black_box(a61) * black_box(b61))
    });
}

fn bench_dot_products(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("field/dot");
    for &len in &[64usize, 1024, 16_384] {
        let a: Vec<F25> = avcc_field::random_vector(&mut rng, len);
        let b: Vec<F25> = avcc_field::random_vector(&mut rng, len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, _| {
            bencher.iter(|| dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_batch_inverse(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let values: Vec<F25> = avcc_field::rng::random_nonzero_vector(&mut rng, 1024);
    c.bench_function("field/batch_inverse_1024", |bencher| {
        bencher.iter(|| batch_inverse(black_box(&values)))
    });
}

criterion_group!(benches, bench_scalar_ops, bench_dot_products, bench_batch_inverse);
criterion_main!(benches);
