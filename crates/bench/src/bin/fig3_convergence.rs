//! Regenerates Fig. 3(a)–(d): test accuracy versus cumulative training time
//! for AVCC, LCC and the uncoded baseline under the reverse-value and constant
//! attacks with (S=2, M=1) and (S=1, M=2).
//!
//! ```text
//! cargo run -p avcc-bench --bin fig3_convergence --release
//! ```
//!
//! Output: one block per panel, tab-separated
//! `iteration  time_s  accuracy` series per scheme.

use avcc_bench::{panel_configs, paper_settings};
use avcc_core::run_experiment;
use avcc_field::P25;

fn main() {
    for (label, attack, stragglers, byzantine) in paper_settings() {
        println!("# Fig. 3 panel: {label} (S={stragglers}, M={byzantine})");
        for (kind, config) in panel_configs(attack, stragglers, byzantine) {
            let report = run_experiment::<P25>(&config).expect("experiment failed");
            println!("## scheme: {}", kind.label());
            println!("iteration\ttime_s\ttest_accuracy");
            for record in &report.iterations {
                println!(
                    "{}\t{:.3}\t{:.4}",
                    record.iteration, record.cumulative_seconds, record.test_accuracy
                );
            }
            println!(
                "# {} final accuracy {:.4} after {:.2}s ({} Byzantine detections)",
                kind.label(),
                report.final_accuracy(),
                report.total_seconds(),
                report.total_detections()
            );
            println!();
        }
    }
}
