//! Regenerates Table I: end-to-end speedups of AVCC over LCC and the uncoded
//! baseline for the four attack/fault settings.
//!
//! ```text
//! cargo run -p avcc-bench --bin table1_speedups --release
//! ```
//!
//! The speedup is the ratio of the times at which each scheme reaches the
//! common target accuracy (falling back to total-time ratio when a scheme
//! never reaches it, as happens to the uncoded baseline under attack).

use avcc_bench::{panel_configs, paper_settings};
use avcc_core::report::speedup;
use avcc_core::{run_experiment, SchemeKind};
use avcc_field::P25;

fn main() {
    let target_accuracy = 0.85;
    println!("# Table I: speedups of AVCC over LCC and the uncoded scheme");
    println!("# target accuracy for time-to-accuracy: {target_accuracy}");
    println!("setting\tspeedup_vs_lcc\tspeedup_vs_uncoded");
    for (label, attack, stragglers, byzantine) in paper_settings() {
        let mut avcc_report = None;
        let mut lcc_report = None;
        let mut uncoded_report = None;
        for (kind, config) in panel_configs(attack, stragglers, byzantine) {
            let report = run_experiment::<P25>(&config).expect("experiment failed");
            match kind {
                SchemeKind::Avcc => avcc_report = Some(report),
                SchemeKind::Lcc => lcc_report = Some(report),
                SchemeKind::Uncoded => uncoded_report = Some(report),
                SchemeKind::StaticVcc => {}
            }
        }
        let avcc = avcc_report.expect("AVCC run missing");
        let lcc = lcc_report.expect("LCC run missing");
        let uncoded = uncoded_report.expect("uncoded run missing");
        println!(
            "{label}\t{:.2}x\t{:.2}x",
            speedup(&avcc, &lcc, target_accuracy),
            speedup(&avcc, &uncoded, target_accuracy)
        );
    }
}
