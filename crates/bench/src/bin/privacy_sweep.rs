//! Privacy–throughput tradeoff: sweeps the colluding-worker tolerance `T`
//! on quantized logistic regression and reports what each extra unit of
//! privacy costs in simulated training time.
//!
//! ```text
//! cargo run -p avcc-bench --bin privacy_sweep --release
//! ```
//!
//! With `N = 12` workers, degree-1 encoding and the paper's `S = 2, M = 1`
//! fault design, decodability needs `K + T <= 9`, so every step of `T` is
//! paid for with one partition of parallelism: the per-worker blocks grow
//! as `ceil(rows / K)` and each round slows down accordingly. This is the
//! CodedPrivateML tradeoff surfaced on the AVCC stack — the sweep holds the
//! fault scenario fixed (constant-attack Byzantine worker plus two
//! stragglers) and varies only `(K, T)`.
//!
//! Columns: `t` (colluding tolerance), `k` (data partitions), `threshold`
//! (recovery threshold), `final_accuracy`, `total_seconds` (simulated
//! robust wall-clock of the full run) and `seconds_per_iteration`.

use avcc_bench::{fmt, harness_tune};
use avcc_core::{run_experiment, ExperimentConfig, FaultScenario};
use avcc_field::P25;
use avcc_sim::attack::AttackModel;

fn main() {
    println!("# Privacy sweep: colluding tolerance T vs throughput (AVCC, quantized logistic regression)");
    println!(
        "# N = 12 workers, S = 2 stragglers, M = 1 Byzantine (constant attack), degree-1 encoding"
    );
    println!("t\tk\tthreshold\tfinal_accuracy\ttotal_seconds\tseconds_per_iteration");
    for colluding in 0..=4usize {
        let scenario = FaultScenario::paper(2, 1, AttackModel::constant());
        let mut config = harness_tune(ExperimentConfig::paper_avcc(2, 1, scenario));
        config.partitions = 9 - colluding;
        config.colluding = colluding;
        let coding = config.coding();
        let report = run_experiment::<P25>(&config).expect("privacy sweep run failed");
        let total = report.robust_total_seconds();
        println!(
            "{colluding}\t{}\t{}\t{}\t{}\t{}",
            coding.partitions,
            coding.recovery_threshold(),
            fmt(report.final_accuracy(), 4),
            fmt(total, 2),
            fmt(total / report.len() as f64, 3),
        );
    }
}
