//! Regenerates Fig. 4(a)–(c): the per-iteration cost breakdown (compute,
//! communication, verification, decoding) of AVCC, LCC and the uncoded
//! baseline under (S=0, M=0), (S=1, M=2) and (S=2, M=1) with the reverse-value
//! attack.
//!
//! ```text
//! cargo run -p avcc-bench --bin fig4_breakdown --release
//! ```

use avcc_bench::{harness_tune, panel_configs};
use avcc_core::{run_experiment, ExperimentConfig, FaultScenario};
use avcc_field::P25;
use avcc_sim::attack::AttackModel;

fn main() {
    // Panel (a): fault-free.
    println!("# Fig. 4(a): S=0, M=0 (fault-free)");
    print_breakdown_block(&fault_free_configs());

    // Panels (b) and (c): reverse-value attack.
    for (panel, stragglers, byzantine) in [("b", 1usize, 2usize), ("c", 2, 1)] {
        println!("# Fig. 4({panel}): S={stragglers}, M={byzantine} (reverse value attack)");
        let configs = panel_configs(AttackModel::reverse(), stragglers, byzantine);
        print_breakdown_block(&configs);
    }
}

fn fault_free_configs() -> Vec<(avcc_core::SchemeKind, ExperimentConfig)> {
    let scenario = FaultScenario::none();
    vec![
        (
            avcc_core::SchemeKind::Uncoded,
            harness_tune(ExperimentConfig::paper_uncoded(scenario.clone())),
        ),
        (
            avcc_core::SchemeKind::Lcc,
            harness_tune(ExperimentConfig::paper_lcc(scenario.clone())),
        ),
        (
            avcc_core::SchemeKind::Avcc,
            harness_tune(ExperimentConfig::paper_avcc(2, 1, scenario)),
        ),
    ]
}

fn print_breakdown_block(configs: &[(avcc_core::SchemeKind, ExperimentConfig)]) {
    println!(
        "scheme\tcompute_s\tcommunication_s\tverification_s\tdecoding_s\ttotal_s\tfinal_accuracy"
    );
    for (kind, config) in configs {
        let report = run_experiment::<P25>(config).expect("experiment failed");
        let costs = report.average_costs();
        println!(
            "{}\t{:.4}\t{:.4}\t{:.6}\t{:.6}\t{:.4}\t{:.4}",
            kind.label(),
            costs.compute,
            costs.communication,
            costs.verification,
            costs.decoding,
            costs.total(),
            report.final_accuracy()
        );
    }
    println!();
}
