//! Regenerates Fig. 5: cumulative execution time of AVCC versus Static VCC
//! when three stragglers and one Byzantine worker appear at iteration 1 of a
//! run that started with the (N=12, K=9, S=2, M=1) configuration.
//!
//! ```text
//! cargo run -p avcc-bench --bin fig5_dynamic --release
//! ```

use avcc_bench::harness_dataset;
use avcc_core::{run_dynamic_coding_scenario, ExperimentConfig, FaultScenario, SchemeKind};
use avcc_field::P25;
use avcc_sim::attack::AttackModel;

fn main() {
    let scenario = FaultScenario {
        stragglers: Vec::new(),
        straggler_multiplier: 8.0,
        byzantine: vec![4],
        attack: AttackModel::constant(),
    };
    let mut avcc = ExperimentConfig::paper_avcc(2, 1, scenario);
    avcc.dataset = harness_dataset();
    avcc.iterations = 50;
    let mut static_vcc = avcc.clone();
    static_vcc.scheme = SchemeKind::StaticVcc;

    let onset = 1;
    let stragglers = [0, 1, 2];
    let avcc_report = run_dynamic_coding_scenario::<P25>(&avcc, onset, &stragglers, 8.0)
        .expect("AVCC run failed");
    let static_report = run_dynamic_coding_scenario::<P25>(&static_vcc, onset, &stragglers, 8.0)
        .expect("Static VCC run failed");

    println!("# Fig. 5: cumulative execution time, AVCC vs Static VCC");
    println!("iteration\tavcc_cumulative_s\tstatic_vcc_cumulative_s");
    for (a, s) in avcc_report
        .iterations
        .iter()
        .zip(static_report.iterations.iter())
    {
        println!(
            "{}\t{:.3}\t{:.3}",
            a.iteration, a.cumulative_seconds, s.cumulative_seconds
        );
    }
    println!(
        "# AVCC reconfigurations: {}, one-time reconfiguration cost {:.3}s",
        avcc_report.reconfiguration_count(),
        avcc_report
            .iterations
            .iter()
            .map(|r| r.costs.reconfiguration)
            .sum::<f64>()
    );
    println!(
        "# total: AVCC {:.3}s, Static VCC {:.3}s, saving {:.3}s",
        avcc_report.total_seconds(),
        static_report.total_seconds(),
        static_report.total_seconds() - avcc_report.total_seconds()
    );
}
