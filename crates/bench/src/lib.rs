//! Shared helpers for the benchmark harness binaries that regenerate the
//! paper's tables and figures.
//!
//! Every binary supports two modes:
//!
//! * **quick** (default) — a scaled-down dataset and 50 iterations; finishes
//!   in seconds and is what CI runs.
//! * **full** — set `AVCC_FULL=1` to use the GISETTE-sized dataset
//!   (6000 × 5000). Slow, but dimensionally identical to the paper.
//!
//! The binaries print tab-separated series that correspond one-to-one to the
//! paper's plots; `EXPERIMENTS.md` records a captured run.

use avcc_core::{ExperimentConfig, FaultScenario, SchemeKind};
use avcc_ml::dataset::DatasetConfig;
use avcc_sim::attack::AttackModel;

/// Returns `true` when the full-scale (GISETTE-sized) configuration was
/// requested via the `AVCC_FULL` environment variable.
pub fn full_scale() -> bool {
    std::env::var("AVCC_FULL")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The dataset configuration used by the harness (quick or full scale).
pub fn harness_dataset() -> DatasetConfig {
    if full_scale() {
        DatasetConfig::gisette_full()
    } else {
        DatasetConfig::default()
    }
}

/// Applies the harness dataset and iteration count to an experiment config.
///
/// In full-scale mode the worker blocks are GISETTE-sized, so the simulator's
/// compute-time scale is dropped back to the paper-calibrated 40× (the quick
/// mode keeps the larger default that compensates for the smaller dataset).
pub fn harness_tune(mut config: ExperimentConfig) -> ExperimentConfig {
    config.dataset = harness_dataset();
    config.iterations = 50;
    if full_scale() {
        config.time_scale = 40.0;
    }
    config
}

/// The four evaluation settings of Fig. 3 and Table I:
/// `(label, attack, actual stragglers S, actual Byzantine workers M)`.
pub fn paper_settings() -> Vec<(&'static str, AttackModel, usize, usize)> {
    vec![
        ("reverse_s2_m1", AttackModel::reverse(), 2, 1),
        ("reverse_s1_m2", AttackModel::reverse(), 1, 2),
        ("constant_s2_m1", AttackModel::constant(), 2, 1),
        ("constant_s1_m2", AttackModel::constant(), 1, 2),
    ]
}

/// Builds the three scheme configurations compared in one Fig. 3 panel:
/// uncoded, LCC (designed for `S = 1, M = 1`) and AVCC (designed for the
/// actual `(S, M)` of the setting).
pub fn panel_configs(
    attack: AttackModel,
    stragglers: usize,
    byzantine: usize,
) -> Vec<(SchemeKind, ExperimentConfig)> {
    let scenario = FaultScenario::paper(stragglers, byzantine, attack);
    vec![
        (
            SchemeKind::Uncoded,
            harness_tune(ExperimentConfig::paper_uncoded(scenario.clone())),
        ),
        (
            SchemeKind::Lcc,
            harness_tune(ExperimentConfig::paper_lcc(scenario.clone())),
        ),
        (
            SchemeKind::Avcc,
            harness_tune(ExperimentConfig::paper_avcc(
                stragglers, byzantine, scenario,
            )),
        ),
    ]
}

/// Formats a float with a fixed number of decimals for the tab-separated
/// output tables.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_cover_both_attacks_and_both_splits() {
        let settings = paper_settings();
        assert_eq!(settings.len(), 4);
        assert!(settings
            .iter()
            .any(|(label, ..)| *label == "constant_s1_m2"));
    }

    #[test]
    fn panel_configs_pit_three_schemes_against_the_same_scenario() {
        let configs = panel_configs(AttackModel::reverse(), 2, 1);
        assert_eq!(configs.len(), 3);
        for (kind, config) in &configs {
            assert_eq!(config.scenario.stragglers.len(), 2);
            assert_eq!(config.scenario.byzantine.len(), 1);
            if *kind == SchemeKind::Lcc {
                assert!(config.coding().lcc_feasible());
            }
        }
    }

    #[test]
    fn quick_mode_is_the_default() {
        // Unless AVCC_FULL is exported the harness must stay laptop-sized.
        if std::env::var("AVCC_FULL").is_err() {
            assert!(!full_scale());
            assert!(harness_dataset().train_samples <= 1000);
        }
    }
}
