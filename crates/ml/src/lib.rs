//! The machine-learning workload of the paper: binary logistic regression
//! trained with full-batch gradient descent, plus the quantized two-round
//! protocol that makes it compatible with coded computing over a finite field.
//!
//! * [`dataset`] — a synthetic GISETTE-like binary classification dataset
//!   (the real GISETTE data is not redistributable here; see DESIGN.md §4 for
//!   why the substitution preserves the evaluation's behaviour). Features are
//!   non-negative integers bounded like GISETTE pixel counts, so the paper's
//!   field-size analysis carries over unchanged.
//! * [`logistic`] — the centralized reference implementation: sigmoid,
//!   cross-entropy, full-batch gradient descent, accuracy. Used both as the
//!   single-machine baseline and for the master-side (real-domain) steps of
//!   the distributed protocol.
//! * [`quantized`] — the fixed-point pipeline of §IV-A/§V: quantize the model
//!   weights (`l = 5` bits), run round 1 (`z = Xw`) over the field, dequantize,
//!   apply the sigmoid and form the error vector in the real domain, quantize
//!   it, run round 2 (`g = Xᵀe`) over the field, dequantize and update.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod logistic;
pub mod quantized;

pub use dataset::{Dataset, DatasetConfig};
pub use logistic::{accuracy, cross_entropy, sigmoid, FeatureScaler, LogisticModel, TrainConfig};
pub use quantized::QuantizedProtocol;
