//! The fixed-point, finite-field side of the two-round training protocol
//! (paper §IV-A and §V "Quantization and Parameter Selection").
//!
//! One gradient-descent iteration is split into two coded rounds:
//!
//! 1. **Round 1** — the workers compute `z = X w` over the field. The master
//!    dequantizes `z`, applies the sigmoid and forms the error vector
//!    `e = h(z) − y` in the real domain.
//! 2. **Round 2** — the workers compute `g = Xᵀ e` over the field (with `X`
//!    column-partitioned, i.e. `Xᵀ` row-partitioned, so the round has the same
//!    "row-blocked matrix times shared vector" shape as round 1). The master
//!    dequantizes `g` and updates the weights.
//!
//! [`QuantizedProtocol`] owns the precision parameters (`l` bits for the
//! features, weights and error vector) and performs every conversion. Because
//! recovery of a signed value from the field is only correct while the true
//! magnitude stays below `(q−1)/2`, the constructor
//! [`QuantizedProtocol::for_problem`] derives safe bit widths from the problem
//! size — the reproduction of the paper's overflow analysis that led to
//! `q = 2^25 − 39` and `l = 5`.

use avcc_field::{Fp, PrimeModulus, Quantizer};
use avcc_linalg::{quantize_matrix, Matrix};
use serde::{Deserialize, Serialize};

use crate::logistic::sigmoid;

/// Precision parameters of the quantized two-round protocol.
///
/// Features are expected to be pre-normalized into `[0, 1]` (the integer
/// GISETTE-like features divided by their maximum); weights and error-vector
/// entries live in a small real range around zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedProtocol {
    /// Fractional bits for the (normalized) features.
    pub feature_bits: u32,
    /// Fractional bits for the model weights (the paper's `l`, default 5).
    pub weight_bits: u32,
    /// Fractional bits for the error vector `e = h(z) − y`.
    pub error_bits: u32,
}

impl Default for QuantizedProtocol {
    fn default() -> Self {
        QuantizedProtocol {
            feature_bits: 7,
            weight_bits: 7,
            error_bits: 7,
        }
    }
}

impl QuantizedProtocol {
    /// Chooses bit widths that provably avoid signed-recovery overflow in the
    /// field `M` for a problem with `samples` training rows and `features`
    /// columns, assuming normalized features in `[0, 1]`, weights bounded by
    /// `weight_bound` in magnitude and error entries in `[−1, 1]`.
    ///
    /// The two constraints (round 1 and round 2 respectively) are
    ///
    /// ```text
    /// features · weight_bound · 2^(l_x + l_w) < (q−1)/2
    /// samples  ·               2^(l_x + l_e) < (q−1)/2
    /// ```
    pub fn for_problem<M: PrimeModulus>(
        samples: usize,
        features: usize,
        weight_bound: f64,
    ) -> Self {
        let half = ((M::MODULUS - 1) / 2) as f64;
        let budget_round1 = (half / (features as f64 * weight_bound.max(1.0)))
            .log2()
            .floor();
        let budget_round2 = (half / samples as f64).log2().floor();
        // Split each round's budget between its two operands, clamped to a
        // sensible range.
        let split = |budget: f64| -> (u32, u32) {
            let total = budget.max(2.0) as u32;
            let a = (total / 2).clamp(1, 12);
            let b = (total - total / 2).clamp(1, 12);
            (a, b)
        };
        let (feature_bits_1, weight_bits) = split(budget_round1);
        let (feature_bits_2, error_bits) = split(budget_round2);
        QuantizedProtocol {
            feature_bits: feature_bits_1.min(feature_bits_2),
            weight_bits,
            error_bits,
        }
    }

    /// The combined scale of a round-1 result (`2^(l_x + l_w)`).
    pub fn round1_scale_bits(&self) -> u32 {
        self.feature_bits + self.weight_bits
    }

    /// The combined scale of a round-2 result (`2^(l_x + l_e)`).
    pub fn round2_scale_bits(&self) -> u32 {
        self.feature_bits + self.error_bits
    }

    /// Quantizes the normalized feature matrix into the field.
    ///
    /// # Panics
    /// Panics if a feature value does not fit at the configured precision
    /// (cannot happen for inputs in `[0, 1]`).
    pub fn quantize_features<M: PrimeModulus>(&self, features: &Matrix<f64>) -> Matrix<Fp<M>> {
        quantize_matrix(features, Quantizer::new(self.feature_bits))
            .expect("normalized features always fit the field")
    }

    /// Quantizes the weight vector (saturating, as weights can drift slightly
    /// outside any fixed bound during training).
    pub fn quantize_weights<M: PrimeModulus>(&self, weights: &[f64]) -> Vec<Fp<M>> {
        let quantizer = Quantizer::new(self.weight_bits);
        weights
            .iter()
            .map(|&w| quantizer.quantize_saturating(w))
            .collect()
    }

    /// Quantizes the error vector `e = h(z) − y` (entries in `[−1, 1]`).
    pub fn quantize_error<M: PrimeModulus>(&self, errors: &[f64]) -> Vec<Fp<M>> {
        let quantizer = Quantizer::new(self.error_bits);
        errors
            .iter()
            .map(|&e| quantizer.quantize_saturating(e))
            .collect()
    }

    /// Dequantizes a round-1 result `z = X w`.
    pub fn dequantize_round1<M: PrimeModulus>(&self, z: &[Fp<M>]) -> Vec<f64> {
        Quantizer::dequantize_slice_with_scale(z, self.round1_scale_bits())
    }

    /// Dequantizes a round-2 result `g = Xᵀ e`.
    pub fn dequantize_round2<M: PrimeModulus>(&self, g: &[Fp<M>]) -> Vec<f64> {
        Quantizer::dequantize_slice_with_scale(g, self.round2_scale_bits())
    }

    /// The master-side step between the two rounds: dequantize `z`, apply the
    /// sigmoid and subtract the labels, producing the real-domain error vector.
    pub fn error_vector<M: PrimeModulus>(&self, z: &[Fp<M>], labels: &[f64]) -> Vec<f64> {
        assert_eq!(
            z.len(),
            labels.len(),
            "round-1 result/label length mismatch"
        );
        self.dequantize_round1(z)
            .into_iter()
            .zip(labels.iter())
            .map(|(score, &label)| sigmoid(score) - label)
            .collect()
    }

    /// A fully centralized field-domain reference iteration (no coding, no
    /// distribution): computes `z = Xw` and `g = Xᵀe` directly over the field.
    /// Distributed schemes must produce exactly these field vectors — the
    /// property the integration tests check.
    #[allow(clippy::type_complexity)]
    pub fn reference_iteration<M: PrimeModulus>(
        &self,
        features_field: &Matrix<Fp<M>>,
        features_transposed_field: &Matrix<Fp<M>>,
        weights: &[f64],
        labels: &[f64],
    ) -> (Vec<Fp<M>>, Vec<f64>, Vec<Fp<M>>, Vec<f64>) {
        let w_field = self.quantize_weights::<M>(weights);
        let z_field = avcc_linalg::mat_vec(features_field, &w_field);
        let errors = self.error_vector(&z_field, labels);
        let e_field = self.quantize_error::<M>(&errors);
        let g_field = avcc_linalg::mat_vec(features_transposed_field, &e_field);
        let gradient = self.dequantize_round2(&g_field);
        (z_field, errors, g_field, gradient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::logistic::{normalize_features, LogisticModel};
    use avcc_field::{P25, P61};
    use avcc_linalg::{real_mat_vec, real_matt_vec};

    fn small_problem() -> (Matrix<f64>, Vec<f64>) {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 60,
            test_samples: 20,
            features: 24,
            informative: 8,
            ..DatasetConfig::default()
        });
        let (normalized, _) = normalize_features(&dataset.train_features);
        (normalized, dataset.train_labels)
    }

    #[test]
    fn default_bits_are_paper_scale() {
        let protocol = QuantizedProtocol::default();
        assert_eq!(protocol.round1_scale_bits(), 14);
        assert_eq!(protocol.round2_scale_bits(), 14);
    }

    #[test]
    fn for_problem_respects_overflow_bounds() {
        let protocol = QuantizedProtocol::for_problem::<P25>(6000, 5000, 2.0);
        let half = ((P25::MODULUS - 1) / 2) as f64;
        let round1 = 5000.0 * 2.0 * 2f64.powi(protocol.round1_scale_bits() as i32);
        let round2 = 6000.0 * 2f64.powi(protocol.round2_scale_bits() as i32);
        assert!(round1 < half, "round 1 bound violated: {round1} vs {half}");
        assert!(round2 < half, "round 2 bound violated: {round2} vs {half}");
        // A 61-bit field affords much more precision.
        let generous = QuantizedProtocol::for_problem::<P61>(6000, 5000, 2.0);
        assert!(generous.round1_scale_bits() >= protocol.round1_scale_bits());
    }

    #[test]
    fn round1_matches_real_computation_up_to_quantization() {
        let (features, _) = small_problem();
        let protocol = QuantizedProtocol::default();
        let features_field = protocol.quantize_features::<P25>(&features);
        let weights: Vec<f64> = (0..features.cols())
            .map(|j| ((j % 5) as f64 - 2.0) * 0.1)
            .collect();
        let w_field = protocol.quantize_weights::<P25>(&weights);
        let z_field = avcc_linalg::mat_vec(&features_field, &w_field);
        let z = protocol.dequantize_round1(&z_field);
        let z_real = real_mat_vec(&features, &weights);
        for (a, b) in z.iter().zip(z_real.iter()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn round2_matches_real_computation_up_to_quantization() {
        let (features, labels) = small_problem();
        let protocol = QuantizedProtocol::default();
        let transposed = features.transpose();
        let transposed_field = protocol.quantize_features::<P25>(&transposed);
        let errors: Vec<f64> = labels.iter().map(|&y| 0.5 - y).collect();
        let e_field = protocol.quantize_error::<P25>(&errors);
        let g_field = avcc_linalg::mat_vec(&transposed_field, &e_field);
        let g = protocol.dequantize_round2(&g_field);
        let g_real = real_matt_vec(&features, &errors);
        for (a, b) in g.iter().zip(g_real.iter()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn error_vector_applies_sigmoid_and_labels() {
        let protocol = QuantizedProtocol::default();
        let z_real = [0.0f64, 3.0, -3.0];
        let labels = [1.0f64, 0.0, 0.0];
        let quantizer = Quantizer::new(protocol.round1_scale_bits());
        let z_field: Vec<Fp<P25>> = z_real
            .iter()
            .map(|&v| quantizer.quantize(v).unwrap())
            .collect();
        let errors = protocol.error_vector(&z_field, &labels);
        assert!((errors[0] - (0.5 - 1.0)).abs() < 1e-3);
        assert!(errors[1] > 0.9);
        assert!(errors[2] < 0.1);
    }

    #[test]
    fn quantized_training_converges_like_real_training() {
        // Run 40 iterations of gradient descent where both matrix products go
        // through the field pipeline; compare final accuracy to the real-domain
        // reference. This is the property that lets the paper train over F_q.
        let (features, labels) = small_problem();
        let protocol = QuantizedProtocol::default();
        let features_field = protocol.quantize_features::<P25>(&features);
        let transposed_field = protocol.quantize_features::<P25>(&features.transpose());

        let learning_rate = 2.0;
        let mut quantized_model = LogisticModel::zeros(features.cols());
        let mut real_model = LogisticModel::zeros(features.cols());
        for _ in 0..40 {
            // Quantized path.
            let (_, _, _, gradient) = protocol.reference_iteration(
                &features_field,
                &transposed_field,
                &quantized_model.weights,
                &labels,
            );
            quantized_model.apply_gradient(&gradient, learning_rate, labels.len());
            // Real path.
            real_model.step(&features, &labels, learning_rate);
        }
        let quantized_accuracy = quantized_model.evaluate_accuracy(&features, &labels);
        let real_accuracy = real_model.evaluate_accuracy(&features, &labels);
        assert!(
            quantized_accuracy >= real_accuracy - 0.1,
            "quantized {quantized_accuracy} vs real {real_accuracy}"
        );
        assert!(quantized_accuracy > 0.7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn error_vector_checks_lengths() {
        let protocol = QuantizedProtocol::default();
        let z: Vec<Fp<P25>> = vec![Fp::new(0)];
        let _ = protocol.error_vector(&z, &[1.0, 0.0]);
    }
}
