//! Synthetic GISETTE-like dataset generation.
//!
//! The paper trains on GISETTE (Guyon et al., NIPS 2003 feature-selection
//! challenge): `m = 6000` samples, `d = 5000` features, binary labels, and —
//! critically for the finite-field embedding — **non-negative integer
//! features** that fit in the 25-bit field without quantization. The dataset
//! itself is not bundled here, so [`Dataset::gisette_like`] synthesizes data
//! with the same structural properties:
//!
//! * features are non-negative integers in `[0, max_feature_value]`,
//! * most features are noise; a configurable subset is informative,
//! * labels come from a ground-truth linear separator through the informative
//!   features with label-flip noise, so logistic regression converges to a
//!   high but not perfect accuracy — giving the accuracy-vs-time curves of
//!   Fig. 3 room to show degradation under Byzantine attacks.

use avcc_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of training samples `m`.
    pub train_samples: usize,
    /// Number of test samples.
    pub test_samples: usize,
    /// Feature dimension `d`.
    pub features: usize,
    /// Number of informative features (the rest are noise).
    pub informative: usize,
    /// Largest feature value (GISETTE pixel counts are in [0, 999]).
    pub max_feature_value: u64,
    /// Probability of flipping a label (injects irreducible error).
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        // Both dimensions are divisible by the paper's K = 9 partitions, and
        // the sample-to-feature ratio is large enough that 50 iterations of
        // full-batch gradient descent reach the paper's ~90-95% test-accuracy
        // range.
        DatasetConfig {
            train_samples: 900,
            test_samples: 300,
            features: 63,
            informative: 21,
            max_feature_value: 999,
            label_noise: 0.02,
            seed: 7,
        }
    }
}

impl DatasetConfig {
    /// The paper's full GISETTE shape (6000 × 5000, with an extra bias column
    /// folded into the feature count). Heavy; used only by the full-scale
    /// benchmark harness.
    pub fn gisette_full() -> Self {
        DatasetConfig {
            train_samples: 6000,
            test_samples: 1000,
            features: 5000,
            informative: 300,
            ..DatasetConfig::default()
        }
    }

    /// A scaled-down shape with the same aspect ratio, suitable for tests and
    /// quick experiment runs.
    pub fn gisette_small() -> Self {
        DatasetConfig::default()
    }
}

/// A binary-classification dataset with a train/test split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Training features (`m × d`), non-negative integers stored as `f64`.
    pub train_features: Matrix<f64>,
    /// Training labels in `{0.0, 1.0}`.
    pub train_labels: Vec<f64>,
    /// Test features.
    pub test_features: Matrix<f64>,
    /// Test labels in `{0.0, 1.0}`.
    pub test_labels: Vec<f64>,
    /// The ground-truth separator used to generate labels (for diagnostics).
    pub true_weights: Vec<f64>,
}

impl Dataset {
    /// Generates a GISETTE-like dataset from the configuration.
    pub fn gisette_like(config: DatasetConfig) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(config.seed);
        Self::generate(config, &mut rng)
    }

    /// Generates a dataset with an explicit RNG.
    pub fn generate<R: Rng + ?Sized>(config: DatasetConfig, rng: &mut R) -> Self {
        assert!(config.features > 0, "need at least one feature");
        assert!(
            config.informative > 0 && config.informative <= config.features,
            "informative feature count must be in [1, d]"
        );
        // Ground-truth separator over the informative features only.
        let mut true_weights = vec![0.0f64; config.features];
        for weight in true_weights.iter_mut().take(config.informative) {
            *weight = rng.gen_range(-1.0..=1.0);
        }

        let (train_features, train_labels) =
            Self::sample_block(config, &true_weights, config.train_samples, rng);
        let (test_features, test_labels) =
            Self::sample_block(config, &true_weights, config.test_samples, rng);
        Dataset {
            train_features,
            train_labels,
            test_features,
            test_labels,
            true_weights,
        }
    }

    fn sample_block<R: Rng + ?Sized>(
        config: DatasetConfig,
        true_weights: &[f64],
        samples: usize,
        rng: &mut R,
    ) -> (Matrix<f64>, Vec<f64>) {
        let d = config.features;
        let mut data = Vec::with_capacity(samples * d);
        let mut raw_scores = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut score = 0.0;
            for (j, &weight) in true_weights.iter().enumerate().take(d) {
                // The last column is a constant bias feature (the paper folds
                // the bias into the weights); without it the learner could not
                // represent the median threshold used to balance the classes.
                let value = if j + 1 == d {
                    config.max_feature_value as f64
                } else {
                    rng.gen_range(0..=config.max_feature_value) as f64
                };
                score += value * weight;
                data.push(value);
            }
            raw_scores.push(score);
        }
        // Center the scores so the two classes are roughly balanced.
        let mut sorted = raw_scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[samples / 2];
        let labels = raw_scores
            .iter()
            .map(|&score| {
                let label = if score > median { 1.0 } else { 0.0 };
                if rng.gen_bool(config.label_noise) {
                    1.0 - label
                } else {
                    label
                }
            })
            .collect();
        (Matrix::from_vec(samples, d, data), labels)
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// Feature dimension.
    pub fn features(&self) -> usize {
        self.train_features.cols()
    }

    /// Returns a copy whose training-set size is padded (by repeating samples)
    /// or truncated so it is divisible by `partitions` — MDS/Lagrange coding
    /// splits the data into `K` equal row blocks.
    pub fn with_train_size_divisible_by(&self, partitions: usize) -> Dataset {
        assert!(partitions > 0, "partitions must be positive");
        let m = self.train_len();
        let remainder = m % partitions;
        if remainder == 0 {
            return self.clone();
        }
        let target = m - remainder;
        Dataset {
            train_features: self.train_features.row_slice(0, target),
            train_labels: self.train_labels[..target].to_vec(),
            test_features: self.test_features.clone(),
            test_labels: self.test_labels.clone(),
            true_weights: self.true_weights.clone(),
        }
    }

    /// Fraction of positive training labels (diagnostic).
    pub fn positive_fraction(&self) -> f64 {
        self.train_labels.iter().sum::<f64>() / self.train_len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_shapes_match_configuration() {
        let config = DatasetConfig {
            train_samples: 120,
            test_samples: 40,
            features: 30,
            informative: 10,
            ..DatasetConfig::default()
        };
        let dataset = Dataset::gisette_like(config);
        assert_eq!(dataset.train_len(), 120);
        assert_eq!(dataset.test_len(), 40);
        assert_eq!(dataset.features(), 30);
        assert_eq!(dataset.train_features.rows(), 120);
        assert_eq!(dataset.train_features.cols(), 30);
        assert_eq!(dataset.true_weights.len(), 30);
    }

    #[test]
    fn features_are_nonnegative_integers_in_range() {
        let dataset = Dataset::gisette_like(DatasetConfig::default());
        for &value in dataset.train_features.data() {
            assert!((0.0..=999.0).contains(&value));
            assert_eq!(value.fract(), 0.0, "feature values must be integers");
        }
    }

    #[test]
    fn labels_are_binary_and_roughly_balanced() {
        let dataset = Dataset::gisette_like(DatasetConfig::default());
        for &label in dataset
            .train_labels
            .iter()
            .chain(dataset.test_labels.iter())
        {
            assert!(label == 0.0 || label == 1.0);
        }
        let fraction = dataset.positive_fraction();
        assert!(
            fraction > 0.3 && fraction < 0.7,
            "positive fraction {fraction}"
        );
    }

    #[test]
    fn generation_is_reproducible_from_the_seed() {
        let a = Dataset::gisette_like(DatasetConfig::default());
        let b = Dataset::gisette_like(DatasetConfig::default());
        assert_eq!(a, b);
        let c = Dataset::gisette_like(DatasetConfig {
            seed: 8,
            ..DatasetConfig::default()
        });
        assert_ne!(a.train_labels, c.train_labels);
    }

    #[test]
    fn divisibility_adjustment_truncates_to_a_multiple() {
        let config = DatasetConfig {
            train_samples: 100,
            ..DatasetConfig::default()
        };
        let dataset = Dataset::gisette_like(config);
        let adjusted = dataset.with_train_size_divisible_by(9);
        assert_eq!(adjusted.train_len() % 9, 0);
        assert_eq!(adjusted.train_len(), 99);
        // Already divisible: unchanged.
        let unchanged = dataset.with_train_size_divisible_by(10);
        assert_eq!(unchanged.train_len(), 100);
    }

    #[test]
    #[should_panic(expected = "informative feature count")]
    fn invalid_informative_count_panics() {
        let config = DatasetConfig {
            informative: 0,
            ..DatasetConfig::default()
        };
        let _ = Dataset::gisette_like(config);
    }
}
