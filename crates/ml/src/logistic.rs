//! Centralized logistic regression — the reference implementation and the
//! master-side real-domain steps of the distributed protocol.
//!
//! The model is the paper's eq. (4)–(5): binary cross-entropy minimized by
//! full-batch gradient descent,
//!
//! ```text
//! w ← w − (η/m) · Xᵀ (h(Xw) − y),     h(θ) = 1 / (1 + e^{−θ}).
//! ```
//!
//! The distributed schemes replace the two matrix products with coded worker
//! computations but keep the sigmoid, the error vector and the update rule in
//! the real domain on the master, so this module is shared by every scheme.

use avcc_linalg::{real_mat_vec, real_matt_vec, Matrix};
use serde::{Deserialize, Serialize};

/// The numerically stable sigmoid `h(θ) = 1 / (1 + e^{−θ})`.
pub fn sigmoid(theta: f64) -> f64 {
    if theta >= 0.0 {
        1.0 / (1.0 + (-theta).exp())
    } else {
        let exponential = theta.exp();
        exponential / (1.0 + exponential)
    }
}

/// Binary cross-entropy loss (paper eq. 4), clamped away from log(0).
pub fn cross_entropy(predictions: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    let epsilon = 1e-12;
    let total: f64 = predictions
        .iter()
        .zip(labels.iter())
        .map(|(&p, &y)| {
            let p = p.clamp(epsilon, 1.0 - epsilon);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    total / predictions.len() as f64
}

/// Classification accuracy with a 0.5 threshold.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
        .count();
    correct as f64 / predictions.len() as f64
}

/// Gradient-descent hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Number of full-batch iterations.
    pub iterations: usize,
    /// Whether to normalize features by their maximum value before training
    /// (the integer GISETTE-like features are large; normalization keeps the
    /// learning rate in a sane range and matches common practice).
    pub normalize: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 2.0,
            iterations: 50,
            normalize: true,
        }
    }
}

/// A logistic-regression model (weights only; the bias is folded into the
/// weights as the paper does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    /// The weight vector `w ∈ R^d`.
    pub weights: Vec<f64>,
}

impl LogisticModel {
    /// A zero-initialized model of dimension `d`.
    pub fn zeros(dimension: usize) -> Self {
        LogisticModel {
            weights: vec![0.0; dimension],
        }
    }

    /// Predicted probabilities `h(Xw)` for every row of `features`.
    pub fn predict_proba(&self, features: &Matrix<f64>) -> Vec<f64> {
        real_mat_vec(features, &self.weights)
            .into_iter()
            .map(sigmoid)
            .collect()
    }

    /// Test accuracy on a labelled set.
    pub fn evaluate_accuracy(&self, features: &Matrix<f64>, labels: &[f64]) -> f64 {
        accuracy(&self.predict_proba(features), labels)
    }

    /// Test loss on a labelled set.
    pub fn evaluate_loss(&self, features: &Matrix<f64>, labels: &[f64]) -> f64 {
        cross_entropy(&self.predict_proba(features), labels)
    }

    /// One full-batch gradient step from an already-computed gradient.
    pub fn apply_gradient(&mut self, gradient: &[f64], learning_rate: f64, samples: usize) {
        assert_eq!(
            gradient.len(),
            self.weights.len(),
            "gradient dimension mismatch"
        );
        let scale = learning_rate / samples as f64;
        for (weight, &g) in self.weights.iter_mut().zip(gradient.iter()) {
            *weight -= scale * g;
        }
    }

    /// One centralized gradient-descent step (computes `Xw`, the error vector
    /// and `Xᵀe` locally). Returns the error vector for diagnostics.
    pub fn step(&mut self, features: &Matrix<f64>, labels: &[f64], learning_rate: f64) -> Vec<f64> {
        let z = real_mat_vec(features, &self.weights);
        let errors: Vec<f64> = z
            .iter()
            .zip(labels.iter())
            .map(|(&score, &label)| sigmoid(score) - label)
            .collect();
        let gradient = real_matt_vec(features, &errors);
        self.apply_gradient(&gradient, learning_rate, labels.len());
        errors
    }

    /// Trains a model from scratch with plain centralized gradient descent.
    /// Returns the model and the per-iteration training-loss history.
    pub fn train(
        features: &Matrix<f64>,
        labels: &[f64],
        config: TrainConfig,
    ) -> (LogisticModel, Vec<f64>) {
        let (features, scale) = if config.normalize {
            let maximum = features
                .data()
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)
                .max(1.0);
            (features.map(|v| v / maximum), maximum)
        } else {
            (features.clone(), 1.0)
        };
        let mut model = LogisticModel::zeros(features.cols());
        let mut history = Vec::with_capacity(config.iterations);
        for _ in 0..config.iterations {
            model.step(&features, labels, config.learning_rate);
            history.push(model.evaluate_loss(&features, labels));
        }
        // Undo the normalization so the returned model operates on raw features.
        for weight in model.weights.iter_mut() {
            *weight /= scale;
        }
        (model, history)
    }
}

/// Normalizes a feature matrix by its global maximum, returning the scaled
/// matrix and the scale factor — the same preprocessing [`LogisticModel::train`]
/// applies, exposed for the distributed drivers so every scheme trains on
/// identical inputs.
pub fn normalize_features(features: &Matrix<f64>) -> (Matrix<f64>, f64) {
    let maximum = features
        .data()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1.0);
    (features.map(|v| v / maximum), maximum)
}

/// Column-centering plus global max-scaling of the features.
///
/// Gradient descent on the raw non-negative GISETTE-like features converges
/// poorly (all-positive columns make the loss ill-conditioned), so the
/// distributed drivers fit a [`FeatureScaler`] on the training set and apply
/// the identical affine transform to the test set. The resulting values lie
/// in `[−1, 1]`, which keeps the fixed-point overflow analysis of
/// [`crate::quantized::QuantizedProtocol`] intact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    /// Per-column means of the training features.
    pub column_means: Vec<f64>,
    /// The global scale (maximum raw feature value).
    pub scale: f64,
}

impl FeatureScaler {
    /// Fits the scaler on a training feature matrix.
    pub fn fit(features: &Matrix<f64>) -> Self {
        let rows = features.rows().max(1);
        let cols = features.cols();
        let mut column_means = vec![0.0; cols];
        for row in features.rows_iter() {
            for (mean, &value) in column_means.iter_mut().zip(row.iter()) {
                *mean += value;
            }
        }
        for mean in column_means.iter_mut() {
            *mean /= rows as f64;
        }
        let scale = features
            .data()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1.0);
        FeatureScaler {
            column_means,
            scale,
        }
    }

    /// Applies the fitted transform `(x − mean) / scale` to a feature matrix.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, features: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(
            features.cols(),
            self.column_means.len(),
            "feature dimension does not match the fitted scaler"
        );
        let mut data = Vec::with_capacity(features.len());
        for row in features.rows_iter() {
            for (&value, &mean) in row.iter().zip(self.column_means.iter()) {
                data.push((value - mean) / self.scale);
            }
        }
        Matrix::from_vec(features.rows(), features.cols(), data)
    }

    /// Fits on the training features and transforms both splits in one call.
    pub fn fit_transform(
        train: &Matrix<f64>,
        test: &Matrix<f64>,
    ) -> (Self, Matrix<f64>, Matrix<f64>) {
        let scaler = Self::fit(train);
        let train_scaled = scaler.transform(train);
        let test_scaled = scaler.transform(test);
        (scaler, train_scaled, test_scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};

    #[test]
    fn sigmoid_has_expected_fixed_points() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        // Symmetry: h(-x) = 1 - h(x).
        for x in [-3.0, -0.7, 0.4, 2.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_inputs() {
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
        assert_eq!(sigmoid(-1e6), 0.0);
    }

    #[test]
    fn cross_entropy_is_zero_for_perfect_confident_predictions() {
        let loss = cross_entropy(&[1.0, 0.0, 1.0], &[1.0, 0.0, 1.0]);
        assert!(loss < 1e-9);
        let bad = cross_entropy(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(bad > 10.0);
    }

    #[test]
    fn accuracy_counts_threshold_agreements() {
        let predictions = [0.9, 0.2, 0.6, 0.4];
        let labels = [1.0, 0.0, 0.0, 1.0];
        assert!((accuracy(&predictions, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_step_reduces_loss_on_separable_data() {
        // Tiny separable problem: positive iff feature 0 is large.
        let features = Matrix::from_vec(4, 2, vec![5.0, 1.0, 4.0, 1.0, 0.0, 1.0, 1.0, 1.0]);
        let labels = [1.0, 1.0, 0.0, 0.0];
        let mut model = LogisticModel::zeros(2);
        let initial = model.evaluate_loss(&features, &labels);
        for _ in 0..200 {
            model.step(&features, &labels, 0.5);
        }
        let trained = model.evaluate_loss(&features, &labels);
        assert!(trained < initial * 0.5, "loss {initial} -> {trained}");
        assert_eq!(model.evaluate_accuracy(&features, &labels), 1.0);
    }

    #[test]
    fn training_on_synthetic_dataset_beats_chance() {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 450,
            test_samples: 150,
            features: 63,
            informative: 21,
            ..DatasetConfig::default()
        });
        let (_, train, test) =
            FeatureScaler::fit_transform(&dataset.train_features, &dataset.test_features);
        let (model, history) = LogisticModel::train(
            &train,
            &dataset.train_labels,
            TrainConfig {
                iterations: 60,
                learning_rate: 5.0,
                normalize: false,
            },
        );
        let accuracy = model.evaluate_accuracy(&test, &dataset.test_labels);
        assert!(accuracy > 0.8, "test accuracy {accuracy} too low");
        // Loss history should be non-increasing overall.
        assert!(history.last().unwrap() < history.first().unwrap());
    }

    #[test]
    fn feature_scaler_centers_columns_and_bounds_values() {
        let dataset = Dataset::gisette_like(DatasetConfig::default());
        let (scaler, train, test) =
            FeatureScaler::fit_transform(&dataset.train_features, &dataset.test_features);
        assert_eq!(scaler.column_means.len(), dataset.features());
        // Every transformed training column has (near-)zero mean.
        for j in 0..train.cols() {
            let mean: f64 =
                (0..train.rows()).map(|i| *train.get(i, j)).sum::<f64>() / train.rows() as f64;
            assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
        }
        // Values stay within [-1, 1] so the quantized pipeline's overflow
        // analysis applies.
        for &value in train.data().iter().chain(test.data().iter()) {
            assert!(value.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not match the fitted scaler")]
    fn scaler_rejects_mismatched_dimensions() {
        let features = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let scaler = FeatureScaler::fit(&features);
        let other = Matrix::from_vec(2, 3, vec![0.0; 6]);
        let _ = scaler.transform(&other);
    }

    #[test]
    fn apply_gradient_matches_manual_update() {
        let mut model = LogisticModel {
            weights: vec![1.0, -1.0],
        };
        model.apply_gradient(&[2.0, 4.0], 0.5, 4);
        assert!((model.weights[0] - (1.0 - 0.25)).abs() < 1e-12);
        assert!((model.weights[1] - (-1.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn normalize_features_scales_by_global_maximum() {
        let features = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (normalized, scale) = normalize_features(&features);
        assert_eq!(scale, 4.0);
        assert_eq!(*normalized.get(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_prediction_lengths_panic() {
        let _ = accuracy(&[0.5], &[1.0, 0.0]);
    }
}
