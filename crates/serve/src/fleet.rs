//! The shared worker fleet: a fixed number of worker slots on a thread pool.
//!
//! A [`Fleet`] models the cluster's worker machines for the serving layer the
//! way [`avcc_sim::executor::ThreadedExecutor`] models them for a single
//! round: each spawned round task occupies one slot for its real compute time
//! (plus a straggler sleep, see
//! [`avcc_sim::executor::slowdown_sleep_seconds`]). The fleet is deliberately
//! *narrower* than the job's worker count in interesting configurations —
//! that is what creates queueing, and what the scheduler's cross-job
//! pipelining then fills.

use avcc_pool::ThreadPool;

/// A fixed-width pool of worker slots shared by every job the scheduler
/// admits.
///
/// The fleet owns a dedicated [`ThreadPool`] of `width + 1` parallelism:
/// `width` background threads execute worker tasks while the extra
/// participant slot belongs to the scheduler thread, which blocks on result
/// arrivals inside the pool scope. Keeping the scheduler off the worker
/// threads means a fleet of width `w` really computes at most `w` tasks at
/// once, and the scheduler can never deadlock waiting for a task that has no
/// thread to run on.
#[derive(Debug)]
pub struct Fleet {
    pool: ThreadPool,
    width: usize,
}

impl Fleet {
    /// Creates a fleet with `width` worker slots.
    ///
    /// # Panics
    /// Panics if `width` is zero — a fleet with no workers can never complete
    /// a round.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "a fleet needs at least one worker slot");
        Fleet {
            pool: ThreadPool::new(width + 1),
            width,
        }
    }

    /// Number of worker slots (tasks that can compute simultaneously).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The pool backing the fleet's worker slots.
    pub(crate) fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_reserves_a_scheduler_slot() {
        let fleet = Fleet::new(3);
        assert_eq!(fleet.width(), 3);
        assert_eq!(fleet.pool().parallelism(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_width_fleet_is_rejected() {
        let _ = Fleet::new(0);
    }
}
