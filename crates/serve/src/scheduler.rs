//! The serving scheduler: admission control plus a round-pipelined master
//! loop over the shared fleet.
//!
//! The scheduler owns a bounded submission queue and a fixed number of
//! in-flight slots. Its [`Scheduler::run`] loop is the master of every
//! admitted job at once, driving each through the staged round state machine
//!
//! ```text
//! Encode → Dispatch → Compute (on the fleet) → Verify/Decode → Update
//! ```
//!
//! with the master-side stages of *different jobs* overlapping each other's
//! compute stages. Concretely, one pass of the loop admits queued jobs into
//! free slots, drains every worker result that has arrived, and runs the
//! collect stage of any job whose round has enough arrivals — each collect
//! immediately encodes and dispatches the job's next round, so the fleet
//! never waits on the master for longer than one collect.
//!
//! Two properties the tests pin down:
//!
//! * **Determinism** — a job's final model is bit-identical to the
//!   synchronous driver's, whatever the fleet width or arrival order,
//!   because every scheme decodes the exact product from any sufficient set
//!   of honest results (the Byzantine corruption itself is a deterministic
//!   function of the worker index).
//! * **Retry on short prefixes** — engine collects are retryable: when an
//!   exactly-threshold prefix contains a corrupted result, the collect fails
//!   without consuming state and the scheduler simply waits for one more
//!   arrival, failing the job only when every dispatched result is in.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{self, Sender};
use std::time::{Duration, Instant};

use avcc_core::engines::AvccMatVec;
use avcc_core::rounds::field_vector_bytes;
use avcc_core::{
    BatchRoundTask, DistributedTrainer, MatVecEngine, RoundTask, SchemeFailure, TrainingReport,
    TrainingRound,
};
use avcc_field::{Fp, PrimeModulus};
use avcc_pool::Scope;
use avcc_sim::churn::{ChurnEventKind, ChurnSchedule, ChurnState};
use avcc_sim::cluster::{ClusterProfile, NetworkModel};
use avcc_sim::executor::{slowdown_sleep_seconds, WorkerOutcome};
use avcc_sim::metrics::{JobMetrics, ServingMetrics};
use avcc_verify::KeyGenConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fleet::Fleet;
use crate::job::{CompletedJob, JobId, JobOutput, JobSpec};

/// Admission and pacing knobs of one scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Jobs allowed in flight simultaneously (the pipeline depth). `1`
    /// degenerates to a synchronous one-job-at-a-time schedule.
    pub max_in_flight: usize,
    /// Jobs allowed in the submission queue; [`Scheduler::submit`] rejects
    /// with [`AdmissionError::QueueFull`] beyond this (backpressure).
    pub queue_capacity: usize,
    /// Real seconds a fleet task sleeps per unit of straggler slowdown (see
    /// [`slowdown_sleep_seconds`]) — how the fleet realizes the cluster
    /// profile's stragglers in wall-clock time.
    pub sleep_per_slowdown_unit: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_in_flight: 4,
            queue_capacity: 64,
            sleep_per_slowdown_unit: 0.002,
        }
    }
}

impl SchedulerConfig {
    /// One job at a time: the baseline the pipelined schedule is benchmarked
    /// against.
    pub fn synchronous() -> Self {
        SchedulerConfig {
            max_in_flight: 1,
            ..SchedulerConfig::default()
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The submission queue is at capacity; retry after `run` drains it.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "submission queue is full ({capacity} jobs)")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Everything one [`Scheduler::run`] produced.
#[derive(Debug, Clone)]
pub struct ServingReport<M: PrimeModulus> {
    /// Every job that finished, ordered by id.
    pub jobs: Vec<CompletedJob<M>>,
    /// Fleet-level throughput and occupancy accounting.
    pub metrics: ServingMetrics,
}

impl<M: PrimeModulus> ServingReport<M> {
    /// The completed job with the given id, if it was part of this run.
    pub fn job(&self, id: JobId) -> Option<&CompletedJob<M>> {
        self.jobs.iter().find(|job| job.id == id)
    }
}

/// A submitted-but-not-yet-admitted job.
struct PendingJob<M: PrimeModulus> {
    id: JobId,
    spec: JobSpec<M>,
    submitted_at: Instant,
}

/// One worker result in flight from the fleet back to the master.
struct TaskMessage<M: PrimeModulus> {
    slot: usize,
    serial: u64,
    worker: usize,
    payload: Vec<Fp<M>>,
    compute_seconds: f64,
}

/// The master-side driver of one admitted job.
enum JobEngine<M: PrimeModulus> {
    Training {
        trainer: Box<DistributedTrainer<M>>,
        report: Box<TrainingReport>,
        iteration: usize,
        cumulative: f64,
        round: TrainingRound,
    },
    MatVec {
        engine: Box<AvccMatVec<M>>,
        input: Vec<Fp<M>>,
        network: NetworkModel,
        rng: StdRng,
    },
    MatVecBatch {
        engine: Box<AvccMatVec<M>>,
        inputs: Vec<Vec<Fp<M>>>,
        network: NetworkModel,
        rng: StdRng,
    },
}

/// One worker task on the fleet: a single-function share product or a batch
/// of `m` of them over the same share.
#[derive(Clone)]
enum FleetTask<M: PrimeModulus> {
    Single(RoundTask<M>),
    Batch(BatchRoundTask<M>),
}

impl<M: PrimeModulus> FleetTask<M> {
    fn worker(&self) -> usize {
        match self {
            FleetTask::Single(task) => task.worker,
            FleetTask::Batch(task) => task.worker,
        }
    }

    /// Runs the task. A batch flattens its per-function outputs into one
    /// function-major wire payload; [`split_functions`] reverses this at
    /// collect time.
    fn run(&self) -> Vec<Fp<M>> {
        match self {
            FleetTask::Single(task) => task.run(),
            FleetTask::Batch(task) => task.run().into_iter().flatten().collect(),
        }
    }
}

/// Splits a flattened batch payload back into its `functions` per-function
/// parts (the inverse of [`FleetTask::run`]'s flattening).
fn split_functions<M: PrimeModulus>(payload: &[Fp<M>], functions: usize) -> Vec<Vec<Fp<M>>> {
    debug_assert_eq!(payload.len() % functions, 0);
    let part = payload.len() / functions;
    payload.chunks(part).map(<[Fp<M>]>::to_vec).collect()
}

/// A job occupying an in-flight slot, with its current round's bookkeeping.
struct ActiveJob<M: PrimeModulus> {
    id: JobId,
    engine: JobEngine<M>,
    /// Tag of the round currently on the fleet; results from earlier rounds
    /// of this slot (or earlier occupants) carry older serials and are
    /// discarded as stale.
    serial: u64,
    /// Tasks dispatched for the current round.
    dispatched: usize,
    /// Arrivals the next collect attempt waits for (raised after a retryable
    /// collect failure).
    needed: usize,
    /// Arrival-ordered results of the current round.
    outcomes: Vec<WorkerOutcome<Vec<Fp<M>>>>,
    round_started_at: Instant,
    admitted_at: Instant,
    metrics: JobMetrics,
    /// Decoder basis-cache counters at admission; the job's metrics report
    /// the delta at completion.
    cache_baseline: (u64, u64),
    /// A copy of the current round's tasks (cheap: both halves sit behind
    /// `Arc`s), kept so a parked round can be re-dispatched verbatim.
    tasks: Vec<FleetTask<M>>,
    /// Consecutive re-dispatches of the current parked round.
    stalls: usize,
}

impl<M: PrimeModulus> ActiveJob<M> {
    fn network(&self) -> NetworkModel {
        match &self.engine {
            JobEngine::Training { trainer, .. } => trainer.cluster().network,
            JobEngine::MatVec { network, .. } | JobEngine::MatVecBatch { network, .. } => *network,
        }
    }

    fn corrupt(&self, worker: usize, payload: &mut [Fp<M>]) -> bool {
        match &self.engine {
            JobEngine::Training { trainer, .. } => trainer.byzantine().corrupt(worker, payload),
            JobEngine::MatVec { .. } | JobEngine::MatVecBatch { .. } => false,
        }
    }

    /// Cumulative Lagrange-basis cache counters of this job's decoder(s).
    fn decode_cache_stats(&self) -> (u64, u64) {
        match &self.engine {
            JobEngine::Training { trainer, .. } => trainer.decode_cache_stats(),
            JobEngine::MatVec { engine, .. } | JobEngine::MatVecBatch { engine, .. } => {
                engine.decode_cache_stats()
            }
        }
    }

    /// Per-worker slowdown snapshot for re-dispatching the current round.
    fn slowdowns(&self) -> Vec<f64> {
        match &self.engine {
            JobEngine::Training { trainer, .. } => effective_slowdowns(trainer.cluster()),
            JobEngine::MatVec { .. } | JobEngine::MatVecBatch { .. } => vec![1.0; self.tasks.len()],
        }
    }
}

/// What one master step did to a collectable job.
enum Step<M: PrimeModulus> {
    /// The round was collected and the next round's tasks are ready.
    Continue(Vec<FleetTask<M>>, Vec<f64>),
    /// The collect failed on a short prefix; wait for one more arrival.
    Wait,
    /// The round came back below the recovery threshold with every
    /// dispatched result in (churned workers absent): re-dispatch the same
    /// tasks — the next dispatch advances the churn clock, so absent
    /// workers may have rejoined — while the stall budget lasts.
    Park,
    /// The job finished (successfully or not).
    Done(JobOutput<M>),
}

/// The multi-job serving scheduler. Submit jobs, then [`Scheduler::run`] them
/// to completion on a [`Fleet`].
pub struct Scheduler<M: PrimeModulus> {
    config: SchedulerConfig,
    pending: VecDeque<PendingJob<M>>,
    next_id: JobId,
    churn: Option<ChurnState>,
}

impl<M: PrimeModulus> Scheduler<M> {
    /// A scheduler with the given admission configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            pending: VecDeque::new(),
            next_id: 0,
            churn: None,
        }
    }

    /// Injects a churn schedule over the *logical* worker fleet (the worker
    /// indices jobs dispatch to, not the [`Fleet`]'s thread slots). The
    /// schedule's clock is the global dispatch counter: every dispatched
    /// round — including re-dispatches of parked rounds — advances it one
    /// tick, so the scheduling is deterministic and wall-clock-free.
    ///
    /// While a worker is down (or inside a corrupt window — the in-process
    /// fleet has no wire checksums, so a corrupting worker is simply not
    /// dispatched to), its tasks are skipped; a stalled worker's sleep is
    /// scaled by the stall multiplier. Training rounds that fall below the
    /// recovery threshold park and re-dispatch up to the trainer's stall
    /// budget, then shrink-recode; see [`DistributedTrainer::shrink_to_fit`].
    pub fn set_churn(&mut self, schedule: ChurnSchedule, workers: usize) {
        self.churn = Some(ChurnState::new(schedule, workers));
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Number of jobs queued and not yet admitted.
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Queues a job, returning its id, or rejects it when the queue is at
    /// capacity (the backpressure signal: retry after a `run`).
    pub fn submit(&mut self, spec: JobSpec<M>) -> Result<JobId, AdmissionError> {
        if self.pending.len() >= self.config.queue_capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(PendingJob {
            id,
            spec,
            submitted_at: Instant::now(),
        });
        Ok(id)
    }

    /// Runs every queued job to completion on the fleet and reports.
    ///
    /// The loop keeps at most [`SchedulerConfig::max_in_flight`] jobs active.
    /// Worker tasks execute on the fleet's slots; everything master-side
    /// (encoding, verification, decoding, model updates, admission) runs on
    /// the calling thread, interleaved across jobs.
    pub fn run(&mut self, fleet: &Fleet) -> ServingReport<M> {
        let run_started = Instant::now();
        let mut metrics = ServingMetrics {
            fleet_width: fleet.width(),
            ..ServingMetrics::default()
        };
        let mut jobs: Vec<CompletedJob<M>> = Vec::new();
        let mut slots: Vec<Option<ActiveJob<M>>> = (0..self.config.max_in_flight.max(1))
            .map(|_| None)
            .collect();
        let (tx, rx) = mpsc::channel::<TaskMessage<M>>();
        let mut next_serial: u64 = 0;
        let sleep_per_unit = self.config.sleep_per_slowdown_unit;

        fleet.pool().scope(|scope| loop {
            let mut progressed = false;

            // Admission: move queued jobs into free slots and dispatch their
            // first rounds.
            for (slot, entry) in slots.iter_mut().enumerate() {
                if entry.is_some() {
                    continue;
                }
                let Some(pending) = self.pending.pop_front() else {
                    break;
                };
                match start_job(pending, next_serial) {
                    Ok((mut job, tasks, slowdowns)) => {
                        next_serial += 1;
                        if let Some(churn) = self.churn.as_mut() {
                            churn.advance_to(job.serial);
                        }
                        job.tasks = tasks.clone();
                        job.dispatched = dispatch_round(
                            scope,
                            &tx,
                            slot,
                            job.serial,
                            sleep_per_unit,
                            tasks,
                            &slowdowns,
                            self.churn.as_ref(),
                        );
                        job.needed = job.needed.min(job.dispatched);
                        *entry = Some(job);
                    }
                    Err(completed) => {
                        metrics.record_job(&completed.metrics, completed.output.is_failed());
                        jobs.push(completed);
                    }
                }
                progressed = true;
            }

            // Drain every result that has arrived, without blocking.
            while let Ok(message) = rx.try_recv() {
                progressed |= deliver(message, &mut slots, &mut metrics);
            }

            // Master steps: collect any round with enough arrivals, then
            // immediately dispatch that job's next round.
            for (slot, entry) in slots.iter_mut().enumerate() {
                let Some(mut job) = entry.take() else {
                    continue;
                };
                if job.outcomes.len() < job.needed {
                    *entry = Some(job);
                    continue;
                }
                match step(&mut job) {
                    Step::Continue(tasks, slowdowns) => {
                        job.serial = next_serial;
                        next_serial += 1;
                        if let Some(churn) = self.churn.as_mut() {
                            churn.advance_to(job.serial);
                        }
                        job.outcomes.clear();
                        job.round_started_at = Instant::now();
                        job.tasks = tasks.clone();
                        job.dispatched = dispatch_round(
                            scope,
                            &tx,
                            slot,
                            job.serial,
                            sleep_per_unit,
                            tasks,
                            &slowdowns,
                            self.churn.as_ref(),
                        );
                        job.needed = job.needed.min(job.dispatched);
                        *entry = Some(job);
                        progressed = true;
                    }
                    Step::Park => {
                        job.serial = next_serial;
                        next_serial += 1;
                        if let Some(churn) = self.churn.as_mut() {
                            churn.advance_to(job.serial);
                        }
                        job.outcomes.clear();
                        job.round_started_at = Instant::now();
                        let tasks = job.tasks.clone();
                        let slowdowns = job.slowdowns();
                        job.dispatched = dispatch_round(
                            scope,
                            &tx,
                            slot,
                            job.serial,
                            sleep_per_unit,
                            tasks,
                            &slowdowns,
                            self.churn.as_ref(),
                        );
                        job.needed = job.needed.min(job.dispatched);
                        *entry = Some(job);
                        progressed = true;
                    }
                    Step::Wait => {
                        *entry = Some(job);
                    }
                    Step::Done(output) => {
                        let (hits, misses) = job.decode_cache_stats();
                        job.metrics.decode_cache_hits = hits.saturating_sub(job.cache_baseline.0);
                        job.metrics.decode_cache_misses =
                            misses.saturating_sub(job.cache_baseline.1);
                        job.metrics.active_seconds = job.admitted_at.elapsed().as_secs_f64();
                        metrics.record_job(&job.metrics, output.is_failed());
                        jobs.push(CompletedJob {
                            id: job.id,
                            output,
                            metrics: job.metrics,
                        });
                        progressed = true;
                    }
                }
            }

            if self.pending.is_empty() && slots.iter().all(Option::is_none) {
                break;
            }

            // Nothing to do until another result lands: block briefly. The
            // fleet's background threads keep computing meanwhile.
            if !progressed {
                if let Ok(message) = rx.recv_timeout(Duration::from_millis(50)) {
                    deliver(message, &mut slots, &mut metrics);
                }
            }
        });

        // Straggler tasks of already-collected rounds finish before the pool
        // scope exits; their slot time still counts toward occupancy.
        while let Ok(message) = rx.try_recv() {
            metrics.busy_worker_seconds += message.compute_seconds;
        }

        metrics.span_seconds = run_started.elapsed().as_secs_f64();
        jobs.sort_by_key(|job| job.id);
        ServingReport { jobs, metrics }
    }
}

/// Builds the master-side driver for a freshly admitted job and its first
/// round of tasks, or completes it immediately (zero-iteration training).
#[allow(clippy::type_complexity)]
fn start_job<M: PrimeModulus>(
    pending: PendingJob<M>,
    serial: u64,
) -> Result<(ActiveJob<M>, Vec<FleetTask<M>>, Vec<f64>), CompletedJob<M>> {
    let queue_wait_seconds = pending.submitted_at.elapsed().as_secs_f64();
    let metrics = JobMetrics {
        queue_wait_seconds,
        ..JobMetrics::default()
    };
    let (engine, tasks, needed, slowdowns) = match pending.spec {
        JobSpec::Training(config) => {
            let mut trainer = Box::new(config.build_trainer::<M>());
            if trainer.iterations() == 0 {
                let report =
                    TrainingReport::new(trainer.scheme().label(), trainer.scenario_label());
                return Err(CompletedJob {
                    id: pending.id,
                    output: JobOutput::Training(Box::new(report)),
                    metrics,
                });
            }
            let report = Box::new(TrainingReport::new(
                trainer.scheme().label(),
                trainer.scenario_label(),
            ));
            let tasks = trainer
                .encode_round1()
                .into_iter()
                .map(FleetTask::Single)
                .collect();
            let needed = trainer.round_min_results(TrainingRound::Round1);
            let slowdowns = effective_slowdowns(trainer.cluster());
            (
                JobEngine::Training {
                    trainer,
                    report,
                    iteration: 0,
                    cumulative: 0.0,
                    round: TrainingRound::Round1,
                },
                tasks,
                needed,
                slowdowns,
            )
        }
        JobSpec::CodedMatVec {
            matrix,
            input,
            coding,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let engine = Box::new(AvccMatVec::new(
                &matrix,
                coding,
                KeyGenConfig { repetitions: 1 },
                &mut rng,
            ));
            let tasks = engine
                .dispatch(&input)
                .into_iter()
                .map(FleetTask::Single)
                .collect::<Vec<_>>();
            let needed = engine.min_results();
            // One-shot products run on nominal workers; stragglers and
            // attacks are the training scenarios' concern.
            let slowdowns = vec![1.0; tasks.len()];
            (
                JobEngine::MatVec {
                    engine,
                    input,
                    network: NetworkModel::default(),
                    rng,
                },
                tasks,
                needed,
                slowdowns,
            )
        }
        JobSpec::MatMulBatch {
            matrix,
            inputs,
            coding,
            seed,
        } => {
            // Same construction (and rng stream) as CodedMatVec: one encode,
            // one key set — the whole point is that the m functions share it.
            let mut rng = StdRng::seed_from_u64(seed);
            let engine = Box::new(AvccMatVec::new(
                &matrix,
                coding,
                KeyGenConfig { repetitions: 1 },
                &mut rng,
            ));
            let tasks = engine
                .dispatch_batch(&inputs)
                .into_iter()
                .map(FleetTask::Batch)
                .collect::<Vec<_>>();
            let needed = engine.min_results();
            let slowdowns = vec![1.0; tasks.len()];
            (
                JobEngine::MatVecBatch {
                    engine,
                    inputs,
                    network: NetworkModel::default(),
                    rng,
                },
                tasks,
                needed,
                slowdowns,
            )
        }
    };
    let now = Instant::now();
    let mut job = ActiveJob {
        id: pending.id,
        engine,
        serial,
        dispatched: tasks.len(),
        needed,
        outcomes: Vec::new(),
        round_started_at: now,
        admitted_at: now,
        metrics,
        cache_baseline: (0, 0),
        tasks: Vec::new(),
        stalls: 0,
    };
    job.cache_baseline = job.decode_cache_stats();
    Ok((job, tasks, slowdowns))
}

/// Spawns one round's tasks onto the fleet. Each task computes its share
/// product, sleeps out its worker's straggler slowdown, and sends the tagged
/// result back to the scheduler. Tasks addressed to churned-down (or
/// corrupt-window) workers are skipped entirely — those workers are silently
/// absent from the round. Returns the number of tasks dispatched.
#[allow(clippy::too_many_arguments)]
fn dispatch_round<'scope, M: PrimeModulus>(
    scope: &Scope<'scope>,
    tx: &Sender<TaskMessage<M>>,
    slot: usize,
    serial: u64,
    sleep_per_unit: f64,
    tasks: Vec<FleetTask<M>>,
    slowdowns: &[f64],
    churn: Option<&ChurnState>,
) -> usize {
    let mut count = 0;
    for task in tasks {
        let worker = task.worker();
        if let Some(churn) = churn {
            if churn.is_down(worker) || churn.is_corrupting(worker) {
                continue;
            }
        }
        count += 1;
        let tx = tx.clone();
        let slowdown = slowdowns.get(worker).copied().unwrap_or(1.0)
            * churn.map_or(1.0, |c| c.slowdown_multiplier(worker));
        let sleep = slowdown_sleep_seconds(slowdown, sleep_per_unit);
        scope.spawn(move || {
            let started = Instant::now();
            let payload = task.run();
            if sleep > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(sleep));
            }
            let compute_seconds = started.elapsed().as_secs_f64();
            // A send can only fail after the scheduler has returned, which
            // the pool scope prevents until every task has finished.
            let _ = tx.send(TaskMessage {
                slot,
                serial,
                worker,
                payload,
                compute_seconds,
            });
        });
    }
    count
}

/// Routes one arrived result to its round, applying the job's Byzantine
/// corruption and network model on the way (the same master-side accounting
/// [`avcc_sim::executor::ThreadedExecutor`] performs for a single round).
/// Stale results — from rounds already collected — only count toward slot
/// occupancy. Returns `true` iff the result joined a live round.
fn deliver<M: PrimeModulus>(
    message: TaskMessage<M>,
    slots: &mut [Option<ActiveJob<M>>],
    metrics: &mut ServingMetrics,
) -> bool {
    metrics.busy_worker_seconds += message.compute_seconds;
    let Some(job) = slots[message.slot].as_mut() else {
        return false;
    };
    if job.serial != message.serial {
        return false;
    }
    let mut payload = message.payload;
    let corrupted = job.corrupt(message.worker, &mut payload);
    let network_seconds = job
        .network()
        .transfer_seconds(field_vector_bytes(payload.len()));
    let arrival_seconds = job.round_started_at.elapsed().as_secs_f64() + network_seconds;
    job.outcomes.push(WorkerOutcome {
        worker: message.worker,
        payload,
        compute_seconds: message.compute_seconds,
        network_seconds,
        arrival_seconds,
        corrupted,
    });
    true
}

/// Runs the collect stage of a job whose round has enough arrivals, and
/// prepares the next round. Collect failures on a short prefix raise the
/// arrival target instead of failing the job (the engines guarantee a failed
/// collect consumes no state); the job aborts only when every dispatched
/// result is already in.
fn step<M: PrimeModulus>(job: &mut ActiveJob<M>) -> Step<M> {
    match &mut job.engine {
        JobEngine::Training {
            trainer,
            report,
            iteration,
            cumulative,
            round,
        } => match round {
            TrainingRound::Round1 => match trainer.collect_round1(&job.outcomes) {
                Ok(tasks) => {
                    if job.stalls > 0 {
                        trainer.note_fleet_event(
                            *iteration as u64,
                            job.outcomes.len(),
                            ChurnEventKind::Resumed,
                        );
                        job.stalls = 0;
                    }
                    job.metrics.rounds += 1;
                    *round = TrainingRound::Round2;
                    job.needed = trainer.round_min_results(TrainingRound::Round2);
                    let slowdowns = effective_slowdowns(trainer.cluster());
                    Step::Continue(
                        tasks.into_iter().map(FleetTask::Single).collect(),
                        slowdowns,
                    )
                }
                Err(failure) => {
                    if job.outcomes.len() < job.dispatched {
                        job.needed = job.outcomes.len() + 1;
                        Step::Wait
                    } else {
                        park_or_shrink(
                            trainer,
                            *iteration,
                            round,
                            &mut job.needed,
                            &mut job.stalls,
                            failure,
                        )
                    }
                }
            },
            TrainingRound::Round2 => {
                // The round stopped collecting at `needed` arrivals; tell the
                // trainer how many workers were actually dispatched so the
                // autopilot's missing-worker estimate reflects churn, not the
                // early cutoff.
                trainer.set_live_hint(job.dispatched);
                match trainer.collect_round2(*iteration, &job.outcomes, cumulative) {
                    Ok(record) => {
                        if job.stalls > 0 {
                            trainer.note_fleet_event(
                                *iteration as u64,
                                job.outcomes.len(),
                                ChurnEventKind::Resumed,
                            );
                            job.stalls = 0;
                        }
                        job.metrics.rounds += 1;
                        job.metrics.ops = job.metrics.ops.combined(&record.ops);
                        job.metrics.screened_workers += record.screened_workers.len() as u64;
                        report.push(record);
                        *iteration += 1;
                        if *iteration >= trainer.iterations() {
                            let finished =
                                std::mem::replace(report, Box::new(TrainingReport::new("", "")));
                            Step::Done(JobOutput::Training(finished))
                        } else {
                            let tasks = trainer.encode_round1();
                            *round = TrainingRound::Round1;
                            job.needed = trainer.round_min_results(TrainingRound::Round1);
                            let slowdowns = effective_slowdowns(trainer.cluster());
                            Step::Continue(
                                tasks.into_iter().map(FleetTask::Single).collect(),
                                slowdowns,
                            )
                        }
                    }
                    Err(failure) => {
                        if job.outcomes.len() < job.dispatched {
                            job.needed = job.outcomes.len() + 1;
                            Step::Wait
                        } else {
                            park_or_shrink(
                                trainer,
                                *iteration,
                                round,
                                &mut job.needed,
                                &mut job.stalls,
                                failure,
                            )
                        }
                    }
                }
            }
        },
        JobEngine::MatVec {
            engine,
            input,
            network,
            rng,
        } => match engine.collect(input, &job.outcomes, network, 1.0, rng) {
            Ok(execution) => {
                job.metrics.rounds += 1;
                job.metrics.ops = job.metrics.ops.combined(&execution.ops);
                job.metrics.screened_workers += execution.screened_workers.len() as u64;
                Step::Done(JobOutput::MatVec(execution.output))
            }
            Err(failure) => {
                if job.outcomes.len() < job.dispatched {
                    job.needed = job.outcomes.len() + 1;
                    Step::Wait
                } else {
                    Step::Done(JobOutput::Failed(failure))
                }
            }
        },
        JobEngine::MatVecBatch {
            engine,
            inputs,
            network,
            rng,
        } => {
            // Un-flatten each wire payload back into its m per-function
            // parts before handing the arrivals to the batched collect.
            let functions = inputs.len();
            let outcomes: Vec<WorkerOutcome<Vec<Vec<Fp<M>>>>> = job
                .outcomes
                .iter()
                .map(|outcome| WorkerOutcome {
                    worker: outcome.worker,
                    payload: split_functions(&outcome.payload, functions),
                    compute_seconds: outcome.compute_seconds,
                    network_seconds: outcome.network_seconds,
                    arrival_seconds: outcome.arrival_seconds,
                    corrupted: outcome.corrupted,
                })
                .collect();
            match engine.collect_batch(inputs, &outcomes, network, 1.0, rng) {
                Ok(execution) => {
                    job.metrics.rounds += 1;
                    job.metrics.ops = job.metrics.ops.combined(&execution.ops);
                    job.metrics.screened_workers += execution.screened_workers.len() as u64;
                    Step::Done(JobOutput::MatVecBatch(execution.outputs))
                }
                Err(failure) => {
                    if job.outcomes.len() < job.dispatched {
                        job.needed = job.outcomes.len() + 1;
                        Step::Wait
                    } else {
                        Step::Done(JobOutput::Failed(failure))
                    }
                }
            }
        }
    }
}

/// Park/shrink policy for a training round that failed with every dispatched
/// result already in (churned workers absent, not merely late): re-dispatch
/// the same round while the trainer's stall budget lasts — the churn clock
/// advances per dispatch, so absent workers may rejoin — then shrink-recode
/// to a smaller `K` and restart the iteration. The job fails only when no
/// strictly smaller decodable code exists.
fn park_or_shrink<M: PrimeModulus>(
    trainer: &mut DistributedTrainer<M>,
    iteration: usize,
    round: &mut TrainingRound,
    needed: &mut usize,
    stalls: &mut usize,
    failure: SchemeFailure,
) -> Step<M> {
    let SchemeFailure::NotEnoughResults {
        available,
        required,
    } = failure
    else {
        return Step::Done(JobOutput::Failed(failure));
    };
    if *stalls < trainer.stall_budget() {
        if *stalls == 0 {
            trainer.note_fleet_event(iteration as u64, available, ChurnEventKind::Parked);
        }
        *stalls += 1;
        *needed = required;
        Step::Park
    } else if trainer
        .shrink_to_fit(iteration as u64, available, required)
        .is_ok()
    {
        *stalls = 0;
        *round = TrainingRound::Round1;
        let tasks = trainer.encode_round1();
        *needed = trainer.round_min_results(TrainingRound::Round1);
        let slowdowns = effective_slowdowns(trainer.cluster());
        Step::Continue(
            tasks.into_iter().map(FleetTask::Single).collect(),
            slowdowns,
        )
    } else {
        Step::Done(JobOutput::Failed(SchemeFailure::NotEnoughResults {
            available,
            required,
        }))
    }
}

/// Snapshot of every worker's effective slowdown, taken at dispatch time so
/// a mid-round adaptation (worker eviction) cannot skew an in-flight round.
fn effective_slowdowns(cluster: &ClusterProfile) -> Vec<f64> {
    cluster
        .workers()
        .iter()
        .map(|worker| worker.effective_slowdown())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_coding::SchemeConfig;
    use avcc_core::{ExperimentConfig, FaultScenario};
    use avcc_field::{PrimeField, P25};
    use avcc_linalg::{mat_vec, Matrix};
    use avcc_ml::dataset::DatasetConfig;
    use avcc_sim::attack::AttackModel;
    use rand::Rng;

    type F = avcc_field::F25;

    fn quick_training(scheme: avcc_core::SchemeKind, iterations: usize) -> ExperimentConfig {
        let scenario = FaultScenario::paper(1, 1, AttackModel::constant());
        let mut config = match scheme {
            avcc_core::SchemeKind::Uncoded => ExperimentConfig::paper_uncoded(scenario),
            avcc_core::SchemeKind::Lcc => ExperimentConfig::paper_lcc(scenario),
            _ => ExperimentConfig::paper_avcc(2, 1, scenario),
        };
        config.iterations = iterations;
        config.time_scale = 1.0;
        config.dataset = DatasetConfig {
            train_samples: 180,
            test_samples: 60,
            features: 27,
            informative: 9,
            ..DatasetConfig::default()
        };
        config
    }

    #[test]
    fn submit_rejects_past_queue_capacity() {
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig {
            queue_capacity: 2,
            ..SchedulerConfig::default()
        });
        let spec = || JobSpec::Training(quick_training(avcc_core::SchemeKind::Avcc, 1));
        assert_eq!(scheduler.submit(spec()), Ok(0));
        assert_eq!(scheduler.submit(spec()), Ok(1));
        assert_eq!(
            scheduler.submit(spec()),
            Err(AdmissionError::QueueFull { capacity: 2 })
        );
        assert_eq!(scheduler.pending_jobs(), 2);
    }

    #[test]
    fn admission_error_is_a_readable_error() {
        let error = AdmissionError::QueueFull { capacity: 8 };
        assert!(error.to_string().contains("8"));
        let _: &dyn std::error::Error = &error;
    }

    #[test]
    fn synchronous_config_runs_one_job_at_a_time() {
        let config = SchedulerConfig::synchronous();
        assert_eq!(config.max_in_flight, 1);
        assert!(config.queue_capacity > 1);
    }

    #[test]
    fn training_job_matches_the_synchronous_driver() {
        // The per-iteration accuracy/loss trajectory is a function of the
        // model weights alone, so f64 equality here certifies bit-identical
        // models between the pipelined scheduler and `train()`.
        let config = quick_training(avcc_core::SchemeKind::Avcc, 3);
        let oracle = config.build_trainer::<P25>().train().unwrap();

        let fleet = Fleet::new(2);
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        let id = scheduler.submit(JobSpec::Training(config)).unwrap();
        let report = scheduler.run(&fleet);

        assert_eq!(report.metrics.jobs_completed, 1);
        assert_eq!(report.metrics.jobs_failed, 0);
        let job = report.job(id).expect("job must be reported");
        let JobOutput::Training(served) = &job.output else {
            panic!("training job must produce a training report");
        };
        assert_eq!(served.len(), oracle.len());
        for (served, oracle) in served.iterations.iter().zip(&oracle.iterations) {
            assert_eq!(served.test_accuracy, oracle.test_accuracy);
            assert_eq!(served.train_loss, oracle.train_loss);
        }
        // Two rounds per iteration, op counts accumulated across all of them.
        assert_eq!(job.metrics.rounds, 2 * oracle.len());
        assert!(job.metrics.ops.total() > 0);
    }

    #[test]
    fn matvec_job_decodes_the_exact_product() {
        let mut rng = StdRng::seed_from_u64(7);
        let rows = 24;
        let cols = 10;
        let matrix = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| F::from_u64(rng.gen_range(0..F::MODULUS)))
                .collect::<Vec<F>>(),
        );
        let input: Vec<F> = (0..cols)
            .map(|_| F::from_u64(rng.gen_range(0..F::MODULUS)))
            .collect();
        let expected = mat_vec(&matrix, &input);

        let fleet = Fleet::new(2);
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        let id = scheduler
            .submit(JobSpec::CodedMatVec {
                matrix,
                input,
                coding: SchemeConfig::linear(12, 8, 2, 1).unwrap(),
                seed: 99,
            })
            .unwrap();
        let report = scheduler.run(&fleet);
        let JobOutput::MatVec(output) = &report.job(id).unwrap().output else {
            panic!("matvec job must produce a product");
        };
        assert_eq!(output, &expected);
        assert_eq!(report.metrics.rounds_total, 1);
    }

    #[test]
    fn zero_iteration_training_completes_immediately() {
        let fleet = Fleet::new(1);
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        let id = scheduler
            .submit(JobSpec::Training(quick_training(
                avcc_core::SchemeKind::Avcc,
                0,
            )))
            .unwrap();
        let report = scheduler.run(&fleet);
        let JobOutput::Training(served) = &report.job(id).unwrap().output else {
            panic!("training job must produce a training report");
        };
        assert_eq!(served.len(), 0);
        assert_eq!(report.metrics.jobs_completed, 1);
    }

    #[test]
    fn serving_metrics_account_for_queue_and_occupancy() {
        let fleet = Fleet::new(2);
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        for _ in 0..3 {
            scheduler
                .submit(JobSpec::Training(quick_training(
                    avcc_core::SchemeKind::Uncoded,
                    2,
                )))
                .unwrap();
        }
        let report = scheduler.run(&fleet);
        assert_eq!(report.metrics.jobs_completed, 3);
        assert_eq!(report.metrics.rounds_total, 3 * 2 * 2);
        assert!(report.metrics.span_seconds > 0.0);
        assert!(report.metrics.busy_worker_seconds > 0.0);
        assert!(report.metrics.pipeline_occupancy() > 0.0);
        assert!(report.metrics.jobs_per_second() > 0.0);
        // Jobs were all submitted before the run, so the later ones waited.
        assert!(report.metrics.queue_wait_total_seconds >= 0.0);
        for job in &report.jobs {
            assert!(job.metrics.active_seconds > 0.0);
            assert!(job.metrics.rounds_per_second() > 0.0);
        }
    }
}
