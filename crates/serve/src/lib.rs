//! The pipelined multi-job serving layer: many jobs on one shared fleet.
//!
//! The training driver in `avcc-core` runs one job at a time and blocks the
//! master through every stage of every round. This crate turns the staged
//! pipeline API ([`avcc_core::DistributedTrainer::encode_round1`] and its
//! collect stages) into a *serving* system:
//!
//! * a [`Fleet`] — a fixed number of worker slots backed by the
//!   [`avcc_pool`] work-stealing pool, shared by every admitted job;
//! * [`JobSpec`]s — full training runs, one-shot coded matrix–vector
//!   products, or multi-function matmul batches built with
//!   [`JobSpec::matmul`] that serve `m` inputs over **one** shared encoded
//!   dataset (one encode, one batched Freivalds pass, `m` decodes through a
//!   shared Lagrange-basis cache) — submitted to a queue with admission
//!   control; and
//! * a [`Scheduler`] — the master loop that multiplexes worker slots across
//!   jobs and overlaps the stages of *different* jobs: while one job's round
//!   computes on the fleet, the scheduler verifies/decodes another job's
//!   finished round and encodes a third job's next round.
//!
//! The pipelining win comes from exactly the waits the paper's schemes
//! expose: the uncoded baseline blocks on every straggler, LCC blocks on the
//! fastest `N − S`, and AVCC blocks on the verified threshold. In a
//! synchronous schedule ([`SchedulerConfig::synchronous`]) those waits leave
//! the fleet idle; with several jobs in flight the scheduler fills them with
//! other jobs' work. Results are unaffected: every job's final model is
//! bit-identical to what the synchronous driver produces, because the exact
//! field decode reconstructs the same product from *any* sufficient set of
//! honest results (see `tests/serving_equivalence.rs`).
//!
//! ```
//! use avcc_core::{ExperimentConfig, FaultScenario, SchemeKind};
//! use avcc_field::P25;
//! use avcc_ml::dataset::DatasetConfig;
//! use avcc_serve::{Fleet, JobSpec, Scheduler, SchedulerConfig};
//!
//! let mut config = ExperimentConfig::paper_avcc(2, 1, FaultScenario::none());
//! config.iterations = 2;
//! config.time_scale = 1.0;
//! config.dataset = DatasetConfig {
//!     train_samples: 180,
//!     test_samples: 60,
//!     features: 27,
//!     informative: 9,
//!     ..DatasetConfig::default()
//! };
//!
//! let fleet = Fleet::new(2);
//! let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
//! let id = scheduler.submit(JobSpec::Training(config)).unwrap();
//! let report = scheduler.run(&fleet);
//! assert_eq!(report.metrics.jobs_completed, 1);
//! assert!(report.job(id).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod fleet;
pub mod job;
pub mod scheduler;

pub use distributed::serve_distributed;
pub use fleet::Fleet;
pub use job::{CompletedJob, JobId, JobOutput, JobSpec, MatMulJobBuilder};
pub use scheduler::{AdmissionError, Scheduler, SchedulerConfig, ServingReport};
