//! Job descriptions and results for the serving layer.
//!
//! A job is a complete unit of master-side work: either a full training run
//! (many iterations, each two distributed rounds) or a one-shot coded
//! matrix–vector product (a single round). The scheduler interleaves the
//! *rounds* of different jobs on the fleet; the job is the unit of admission,
//! completion and accounting.

use avcc_coding::SchemeConfig;
use avcc_core::{ExperimentConfig, SchemeFailure, TrainingReport};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::metrics::JobMetrics;

/// Identifier assigned at submission, unique within one [`crate::Scheduler`].
pub type JobId = usize;

/// One unit of work submitted to the serving layer.
#[derive(Debug, Clone)]
pub enum JobSpec<M: PrimeModulus> {
    /// A full distributed training run: every iteration's two rounds pass
    /// through the fleet, exactly as `DistributedTrainer::train` would run
    /// them on its own executor.
    Training(ExperimentConfig),
    /// A one-shot AVCC-coded matrix–vector product: encode, one round on the
    /// fleet, verify and decode.
    CodedMatVec {
        /// The matrix to encode across the fleet's workers.
        matrix: Matrix<Fp<M>>,
        /// The broadcast input vector (`matrix.cols()` entries).
        input: Vec<Fp<M>>,
        /// The coding configuration `(N, K, S, M, T, deg f)`.
        coding: SchemeConfig,
        /// RNG seed for encoding pads and verification keys.
        seed: u64,
    },
    /// A multi-function matmul: `m` input vectors served against **one**
    /// shared encoded dataset. The matrix is encoded once, every worker task
    /// carries all `m` inputs, and one batched Freivalds pass (with
    /// per-function fallback) verifies the whole batch — amortizing the
    /// encode and the Lagrange-basis setup that [`JobSpec::CodedMatVec`]
    /// pays per product. Outputs are bit-identical to `m` independent
    /// `CodedMatVec` jobs with the same seed.
    MatMulBatch {
        /// The matrix to encode once across the fleet's workers.
        matrix: Matrix<Fp<M>>,
        /// The `m` broadcast input vectors (`matrix.cols()` entries each).
        inputs: Vec<Vec<Fp<M>>>,
        /// The coding configuration `(N, K, S, M, T, deg f)`.
        coding: SchemeConfig,
        /// RNG seed for encoding pads and verification keys.
        seed: u64,
    },
}

impl<M: PrimeModulus> JobSpec<M> {
    /// Starts a builder for a coded matmul job over `matrix` with one input
    /// vector — extend it with [`MatMulJobBuilder::with_batch`] to serve
    /// many functions over the same encoded dataset.
    ///
    /// Defaults: the paper's `(N = 12, K = 9, S = 2, M = 1)` linear coding
    /// and seed `0`.
    pub fn matmul(matrix: Matrix<Fp<M>>, input: Vec<Fp<M>>) -> MatMulJobBuilder<M> {
        MatMulJobBuilder {
            matrix,
            inputs: vec![input],
            coding: SchemeConfig::linear(12, 9, 2, 1)
                .expect("the paper's default coding configuration is feasible"),
            seed: 0,
        }
    }
}

/// Builder returned by [`JobSpec::matmul`]: configures the coding scheme,
/// the input batch and the seed before producing a [`JobSpec`].
#[derive(Debug, Clone)]
pub struct MatMulJobBuilder<M: PrimeModulus> {
    matrix: Matrix<Fp<M>>,
    inputs: Vec<Vec<Fp<M>>>,
    coding: SchemeConfig,
    seed: u64,
}

impl<M: PrimeModulus> MatMulJobBuilder<M> {
    /// Uses the given coding configuration instead of the paper default.
    pub fn with_scheme(mut self, coding: SchemeConfig) -> Self {
        self.coding = coding;
        self
    }

    /// Replaces the input set with a batch of `m` input vectors, all served
    /// against the one shared encoded dataset.
    ///
    /// # Panics
    /// Panics if `inputs` is empty.
    pub fn with_batch(mut self, inputs: Vec<Vec<Fp<M>>>) -> Self {
        assert!(!inputs.is_empty(), "a matmul job needs at least one input");
        self.inputs = inputs;
        self
    }

    /// Seeds the encoding pads and verification keys. Two jobs with the same
    /// matrix, coding and seed encode identically, which is what makes a
    /// batch comparable to its independent single-function equivalents.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Produces the job: a [`JobSpec::CodedMatVec`] for a single input, a
    /// [`JobSpec::MatMulBatch`] for `m > 1`.
    pub fn build(self) -> JobSpec<M> {
        let MatMulJobBuilder {
            matrix,
            mut inputs,
            coding,
            seed,
        } = self;
        if inputs.len() == 1 {
            JobSpec::CodedMatVec {
                matrix,
                input: inputs.pop().expect("one input"),
                coding,
                seed,
            }
        } else {
            JobSpec::MatMulBatch {
                matrix,
                inputs,
                coding,
                seed,
            }
        }
    }
}

/// What a finished job produced.
#[derive(Debug, Clone)]
pub enum JobOutput<M: PrimeModulus> {
    /// The training report of a [`JobSpec::Training`] job.
    Training(Box<TrainingReport>),
    /// The decoded product of a [`JobSpec::CodedMatVec`] job.
    MatVec(Vec<Fp<M>>),
    /// The decoded per-function products of a [`JobSpec::MatMulBatch`] job,
    /// in input order.
    MatVecBatch(Vec<Vec<Fp<M>>>),
    /// The job aborted with a scheme-level failure (e.g. a round could not be
    /// decoded even with every dispatched result in hand).
    Failed(SchemeFailure),
}

impl<M: PrimeModulus> JobOutput<M> {
    /// `true` iff the job aborted instead of completing.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutput::Failed(_))
    }
}

/// A job the scheduler has finished with, successfully or not.
#[derive(Debug, Clone)]
pub struct CompletedJob<M: PrimeModulus> {
    /// The id [`crate::Scheduler::submit`] returned for this job.
    pub id: JobId,
    /// The job's result.
    pub output: JobOutput<M>,
    /// Queue-wait and throughput accounting for this job.
    pub metrics: JobMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{PrimeField, F25, P25};

    fn small_matrix() -> Matrix<F25> {
        Matrix::from_vec(4, 2, (0..8).map(F25::from_u64).collect())
    }

    fn input(offset: u64) -> Vec<F25> {
        vec![F25::from_u64(offset), F25::from_u64(offset + 1)]
    }

    #[test]
    fn builder_defaults_to_a_single_function_job() {
        let spec = JobSpec::<P25>::matmul(small_matrix(), input(0)).build();
        let JobSpec::CodedMatVec {
            coding,
            seed,
            input: built_input,
            ..
        } = spec
        else {
            panic!("one input must build a CodedMatVec job");
        };
        assert_eq!(seed, 0);
        assert_eq!(built_input, input(0));
        assert_eq!((coding.workers, coding.partitions), (12, 9));
    }

    #[test]
    fn builder_with_batch_builds_a_batched_job() {
        let coding = SchemeConfig::linear(12, 8, 2, 1).unwrap();
        let spec = JobSpec::<P25>::matmul(small_matrix(), input(0))
            .with_batch(vec![input(0), input(2), input(4)])
            .with_scheme(coding)
            .with_seed(7)
            .build();
        let JobSpec::MatMulBatch {
            inputs,
            coding: built,
            seed,
            ..
        } = spec
        else {
            panic!("three inputs must build a MatMulBatch job");
        };
        assert_eq!(inputs.len(), 3);
        assert_eq!(seed, 7);
        assert_eq!(built.partitions, 8);
    }

    #[test]
    fn builder_with_batch_of_one_stays_single_function() {
        let spec = JobSpec::<P25>::matmul(small_matrix(), input(0))
            .with_batch(vec![input(9)])
            .build();
        assert!(matches!(spec, JobSpec::CodedMatVec { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn builder_rejects_an_empty_batch() {
        let _ = JobSpec::<P25>::matmul(small_matrix(), input(0)).with_batch(Vec::new());
    }
}
