//! Job descriptions and results for the serving layer.
//!
//! A job is a complete unit of master-side work: either a full training run
//! (many iterations, each two distributed rounds) or a one-shot coded
//! matrix–vector product (a single round). The scheduler interleaves the
//! *rounds* of different jobs on the fleet; the job is the unit of admission,
//! completion and accounting.

use avcc_coding::SchemeConfig;
use avcc_core::{ExperimentConfig, SchemeFailure, TrainingReport};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::metrics::JobMetrics;

/// Identifier assigned at submission, unique within one [`crate::Scheduler`].
pub type JobId = usize;

/// One unit of work submitted to the serving layer.
#[derive(Debug, Clone)]
pub enum JobSpec<M: PrimeModulus> {
    /// A full distributed training run: every iteration's two rounds pass
    /// through the fleet, exactly as `DistributedTrainer::train` would run
    /// them on its own executor.
    Training(ExperimentConfig),
    /// A one-shot AVCC-coded matrix–vector product: encode, one round on the
    /// fleet, verify and decode.
    CodedMatVec {
        /// The matrix to encode across the fleet's workers.
        matrix: Matrix<Fp<M>>,
        /// The broadcast input vector (`matrix.cols()` entries).
        input: Vec<Fp<M>>,
        /// The coding configuration `(N, K, S, M, T, deg f)`.
        coding: SchemeConfig,
        /// RNG seed for encoding pads and verification keys.
        seed: u64,
    },
}

/// What a finished job produced.
#[derive(Debug, Clone)]
pub enum JobOutput<M: PrimeModulus> {
    /// The training report of a [`JobSpec::Training`] job.
    Training(Box<TrainingReport>),
    /// The decoded product of a [`JobSpec::CodedMatVec`] job.
    MatVec(Vec<Fp<M>>),
    /// The job aborted with a scheme-level failure (e.g. a round could not be
    /// decoded even with every dispatched result in hand).
    Failed(SchemeFailure),
}

impl<M: PrimeModulus> JobOutput<M> {
    /// `true` iff the job aborted instead of completing.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutput::Failed(_))
    }
}

/// A job the scheduler has finished with, successfully or not.
#[derive(Debug, Clone)]
pub struct CompletedJob<M: PrimeModulus> {
    /// The id [`crate::Scheduler::submit`] returned for this job.
    pub id: JobId,
    /// The job's result.
    pub output: JobOutput<M>,
    /// Queue-wait and throughput accounting for this job.
    pub metrics: JobMetrics,
}
