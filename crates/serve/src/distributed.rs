//! Serving jobs over a wire [`Executor`] — the socket-fleet counterpart of
//! the in-process [`crate::Scheduler`].
//!
//! [`serve_distributed`] runs a list of [`JobSpec`]s against any executor
//! implementing the modulus-erased trait: the in-process engines for tests,
//! or `avcc_sim::SocketExecutor` for a real multi-process TCP/UDS fleet. Jobs
//! run to completion one at a time (round pipelining across jobs remains the
//! in-process scheduler's specialty; the wire fleet's concurrency is *within*
//! a round, across worker processes), but every job's result is bit-identical
//! to the scheduler's for the same spec — all decode paths are exact.
//!
//! Worker evictions (corrupt frames, disconnects, deadline blowouts) surface
//! as absent outcomes, which the engines absorb through the same straggler
//! tolerance they were designed around; a job fails only when the surviving
//! results genuinely cannot reconstruct the product.

use std::time::Instant;

use avcc_core::distributed::{train_distributed, DistributedError, WireRunner};
use avcc_core::engines::AvccMatVec;
use avcc_core::rounds::SchemeFailure;
use avcc_core::MatVecEngine;
use avcc_field::PrimeModulus;
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::Executor;
use avcc_sim::metrics::JobMetrics;
use avcc_verify::KeyGenConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::job::{CompletedJob, JobOutput, JobSpec};

/// Folds an executor-level failure into the job-failure shape callers
/// already handle (an executor that cannot run a round cannot decode one).
fn job_failure(error: DistributedError) -> SchemeFailure {
    match error {
        DistributedError::Scheme(failure) => failure,
        DistributedError::Executor(error) => SchemeFailure::DecodeFailed {
            details: format!("executor failure: {error}"),
        },
    }
}

/// Runs every job on `executor`, in submission order, returning one
/// [`CompletedJob`] per spec (ids are the spec's index). See the module docs
/// for semantics.
pub fn serve_distributed<M: PrimeModulus>(
    specs: Vec<JobSpec<M>>,
    executor: &mut dyn Executor,
) -> Vec<CompletedJob<M>> {
    let mut runner = WireRunner::new();
    let mut completed = Vec::with_capacity(specs.len());
    // Training jobs use two block channels (one per round); one-shot jobs
    // use one. Distinct channels per job keep block installation cached
    // per dataset instead of thrashing between jobs.
    let mut next_channel = 0usize;
    for (id, spec) in specs.into_iter().enumerate() {
        let started = Instant::now();
        let mut metrics = JobMetrics::default();
        let output = match spec {
            JobSpec::Training(config) => {
                let mut trainer = config.build_trainer::<M>();
                match train_distributed(&mut trainer, executor) {
                    Ok(report) => {
                        metrics.rounds = report.len() * 2;
                        for record in &report.iterations {
                            metrics.ops = metrics.ops.combined(&record.ops);
                            metrics.screened_workers += record.screened_workers.len() as u64;
                        }
                        JobOutput::Training(Box::new(report))
                    }
                    Err(error) => JobOutput::Failed(job_failure(error)),
                }
            }
            JobSpec::CodedMatVec {
                matrix,
                input,
                coding,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut engine =
                    AvccMatVec::new(&matrix, coding, KeyGenConfig { repetitions: 1 }, &mut rng);
                let channel = next_channel;
                next_channel += 1;
                let tasks = engine.dispatch(&input);
                let result = runner
                    .run_round(executor, channel, &tasks, &ByzantineSpec::none())
                    .map_err(|e| job_failure(DistributedError::Executor(e)))
                    .and_then(|outcomes| {
                        engine.collect(&input, &outcomes, &NetworkModel::default(), 1.0, &mut rng)
                    });
                match result {
                    Ok(execution) => {
                        metrics.rounds = 1;
                        metrics.ops = execution.ops;
                        metrics.screened_workers = execution.screened_workers.len() as u64;
                        JobOutput::MatVec(execution.output)
                    }
                    Err(failure) => JobOutput::Failed(failure),
                }
            }
            JobSpec::MatMulBatch {
                matrix,
                inputs,
                coding,
                seed,
            } => {
                // Same construction (and rng stream) as CodedMatVec — the m
                // functions share one encode and one key set.
                let mut rng = StdRng::seed_from_u64(seed);
                let mut engine =
                    AvccMatVec::new(&matrix, coding, KeyGenConfig { repetitions: 1 }, &mut rng);
                let channel = next_channel;
                next_channel += 1;
                let tasks = engine.dispatch_batch(&inputs);
                let result = runner
                    .run_batch_round(executor, channel, &tasks, &ByzantineSpec::none())
                    .map_err(|e| job_failure(DistributedError::Executor(e)))
                    .and_then(|outcomes| {
                        engine.collect_batch(
                            &inputs,
                            &outcomes,
                            &NetworkModel::default(),
                            1.0,
                            &mut rng,
                        )
                    });
                match result {
                    Ok(execution) => {
                        metrics.rounds = 1;
                        metrics.ops = execution.ops;
                        metrics.screened_workers = execution.screened_workers.len() as u64;
                        JobOutput::MatVecBatch(execution.outputs)
                    }
                    Err(failure) => JobOutput::Failed(failure),
                }
            }
        };
        metrics.active_seconds = started.elapsed().as_secs_f64();
        completed.push(CompletedJob {
            id,
            output,
            metrics,
        });
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use avcc_coding::SchemeConfig;
    use avcc_field::{Fp, PrimeField, P25};
    use avcc_linalg::{mat_vec, Matrix};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::ThreadedExecutor;

    fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Fp<P25>> {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| Fp::<P25>::from_u64(seed.wrapping_mul(i as u64 + 3) % 1000))
                .collect(),
        )
    }

    fn input(cols: usize, seed: u64) -> Vec<Fp<P25>> {
        (0..cols)
            .map(|i| Fp::<P25>::from_u64(seed.wrapping_add(i as u64) % 997))
            .collect()
    }

    #[test]
    fn matvec_and_batch_jobs_decode_the_exact_products() {
        let coding = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let m = matrix(18, 6, 11);
        let single_in = input(6, 1);
        let batch_ins = vec![input(6, 2), input(6, 3), input(6, 4)];
        let specs = vec![
            JobSpec::CodedMatVec {
                matrix: m.clone(),
                input: single_in.clone(),
                coding,
                seed: 7,
            },
            JobSpec::MatMulBatch {
                matrix: m.clone(),
                inputs: batch_ins.clone(),
                coding,
                seed: 7,
            },
        ];
        let mut executor = ThreadedExecutor::new(ClusterProfile::uniform(12));
        let completed = serve_distributed(specs, &mut executor);
        assert_eq!(completed.len(), 2);

        let JobOutput::MatVec(product) = &completed[0].output else {
            panic!(
                "job 0 must be a matvec result, got {:?}",
                completed[0].output
            );
        };
        assert_eq!(product, &mat_vec(&m, &single_in));

        let JobOutput::MatVecBatch(products) = &completed[1].output else {
            panic!("job 1 must be a batch result");
        };
        assert_eq!(products.len(), 3);
        for (got, want) in products
            .iter()
            .zip(batch_ins.iter().map(|v| mat_vec(&m, v)))
        {
            assert_eq!(got, &want);
        }
        assert!(completed.iter().all(|job| job.metrics.rounds == 1));
    }
}
