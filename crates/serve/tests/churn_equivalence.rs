//! Churn-tolerance contract of the serving layer (PR10): a pipelined
//! scheduler over a churning fleet must produce results **bit-identical** to
//! a synchronous scheduler over a quiet fleet, for every recoverable
//! [`ChurnSchedule`], across schemes and moduli.
//!
//! Churn perturbs which workers answer each round and when — never the
//! decoded values: decode is exact over any sufficient honest subset, and
//! parked rounds re-dispatch the same encoded tasks. The comparator is the
//! per-iteration `(test_accuracy, train_loss)` trajectory, a deterministic
//! function of the model weights.

use avcc_core::{ExperimentConfig, FaultScenario, SchemeKind};
use avcc_field::{PrimeModulus, P25, P64};
use avcc_ml::dataset::DatasetConfig;
use avcc_serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig};
use avcc_sim::churn::{ChurnAction, ChurnSchedule};
use proptest::prelude::*;

const WORKERS: usize = 12;

/// A quick verifying experiment: tiny dataset, two iterations, no faults
/// beyond whatever the churn schedule injects.
fn quick(scheme: SchemeKind, seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_avcc(2, 1, FaultScenario::none());
    config.scheme = scheme;
    config.iterations = 2;
    config.time_scale = 1.0;
    config.seed = seed;
    config.dataset = DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    };
    config
}

fn assert_trajectories_match(
    served: &avcc_core::TrainingReport,
    oracle: &avcc_core::TrainingReport,
    context: &str,
) {
    assert_eq!(served.len(), oracle.len(), "{context}: iteration count");
    for (index, (served, oracle)) in served.iterations.iter().zip(&oracle.iterations).enumerate() {
        assert_eq!(
            served.test_accuracy, oracle.test_accuracy,
            "{context}: accuracy diverged at iteration {index}"
        );
        assert_eq!(
            served.train_loss, oracle.train_loss,
            "{context}: loss diverged at iteration {index}"
        );
    }
}

/// Runs the same verifying-scheme job mix twice — churned + pipelined vs
/// quiet + synchronous — and demands bit-identical trajectories.
fn churned_matches_quiet<M: PrimeModulus>(seed: u64, max_down: usize) {
    let configs = [
        quick(SchemeKind::Avcc, seed),
        quick(SchemeKind::StaticVcc, seed + 1),
        quick(SchemeKind::Avcc, seed + 2),
    ];

    let quiet = {
        let fleet = Fleet::new(2);
        let mut scheduler = Scheduler::<M>::new(SchedulerConfig::synchronous());
        for config in &configs {
            scheduler.submit(JobSpec::Training(config.clone())).unwrap();
        }
        scheduler.run(&fleet)
    };
    assert_eq!(quiet.metrics.jobs_failed, 0);

    let churned = {
        let fleet = Fleet::new(2);
        let mut scheduler = Scheduler::<M>::new(SchedulerConfig::default());
        scheduler.set_churn(ChurnSchedule::seeded(seed, WORKERS, 64, max_down), WORKERS);
        for config in &configs {
            scheduler.submit(JobSpec::Training(config.clone())).unwrap();
        }
        scheduler.run(&fleet)
    };

    assert_eq!(churned.metrics.jobs_completed, configs.len());
    assert_eq!(churned.metrics.jobs_failed, 0);
    for (job, (fast, slow)) in churned.jobs.iter().zip(&quiet.jobs).enumerate() {
        assert_eq!(fast.id, slow.id);
        let (JobOutput::Training(fast), JobOutput::Training(slow)) = (&fast.output, &slow.output)
        else {
            panic!("both runs must produce training reports for job {job}");
        };
        assert_trajectories_match(
            fast,
            slow,
            &format!("job {job} under seeded churn (seed {seed}, max_down {max_down})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any recoverable seeded churn schedule — flaps and stall bursts with a
    /// bounded number of workers down at once — leaves pipelined serving
    /// bit-identical to the quiet synchronous run, for both verifying
    /// schemes on both a 25-bit and a 64-bit modulus.
    #[test]
    fn pipelined_serving_under_recoverable_churn_is_bit_identical(
        seed in 0u64..10_000,
        max_down in 1usize..3,
    ) {
        churned_matches_quiet::<P25>(seed, max_down);
        churned_matches_quiet::<P64>(seed, max_down);
    }
}

#[test]
fn below_threshold_round_parks_then_resumes_in_the_scheduler() {
    // Four workers flap out at the very first dispatch: 8 responders is
    // below AVCC's recovery threshold of 9, so the scheduler must park the
    // round and re-dispatch until the flap window closes — without shrinking
    // the code (the rejoin lands inside the stall budget) and without
    // disturbing the model.
    let config = quick(SchemeKind::Avcc, 77);
    let oracle = config.build_trainer::<P25>().train().unwrap();
    let schedule = (0..4).fold(ChurnSchedule::quiet(), |schedule, worker| {
        schedule.at(0, ChurnAction::Flap { worker, rounds: 2 })
    });

    let fleet = Fleet::new(2);
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    scheduler.set_churn(schedule, WORKERS);
    let id = scheduler.submit(JobSpec::Training(config)).unwrap();
    let report = scheduler.run(&fleet);

    assert_eq!(
        report.metrics.jobs_failed, 0,
        "parking must not fail the job"
    );
    let JobOutput::Training(served) = &report.job(id).unwrap().output else {
        panic!("training job must produce a report");
    };
    assert_eq!(
        served.reconfiguration_count(),
        0,
        "a rejoin inside the stall budget must not shrink-recode"
    );
    assert_trajectories_match(served, &oracle, "parked-then-resumed job");
}
