//! The serving layer's contract with the synchronous driver: whatever the
//! fleet width, pipeline depth, scheme mix or fault profile, every training
//! job served by the scheduler produces results bit-identical to
//! `DistributedTrainer::train` — plus admission-control and no-deadlock
//! coverage for the scheduler itself.
//!
//! The equivalence comparator is the per-iteration `(test_accuracy,
//! train_loss)` trajectory: both are deterministic `f64` functions of the
//! model weights, so exact equality across every iteration certifies
//! bit-identical models without reaching into the trainer.

use avcc_coding::SchemeConfig;
use avcc_core::{ExperimentConfig, FaultScenario, SchemeKind};
use avcc_field::{PrimeField, F25, P25};
use avcc_linalg::{mat_vec, Matrix};
use avcc_ml::dataset::DatasetConfig;
use avcc_serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig};
use avcc_sim::attack::AttackModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A quick experiment: tiny dataset, two iterations, unit time scale.
fn quick(scheme: SchemeKind, stragglers: usize, byzantine: usize, seed: u64) -> ExperimentConfig {
    let attack = if byzantine > 0 {
        AttackModel::constant()
    } else {
        AttackModel::None
    };
    // Clamp the injected faults to each scheme's designed tolerance so the
    // run is guaranteed to succeed (beyond-design behaviour is covered by
    // `overwhelmed_job_shrink_recodes_instead_of_failing`). The uncoded
    // baseline tolerates nothing but fails on nothing either: corruption
    // flows into the model deterministically.
    let (config_stragglers, config_byzantine) = match scheme {
        SchemeKind::Uncoded => (stragglers, byzantine),
        SchemeKind::Lcc => (stragglers.min(1), byzantine.min(1)),
        SchemeKind::Avcc | SchemeKind::StaticVcc => (stragglers.min(2), byzantine.min(1)),
    };
    let scenario = FaultScenario::paper(config_stragglers, config_byzantine, attack);
    let mut config = match scheme {
        SchemeKind::Uncoded => ExperimentConfig::paper_uncoded(scenario),
        SchemeKind::Lcc => ExperimentConfig::paper_lcc(scenario),
        SchemeKind::Avcc => ExperimentConfig::paper_avcc(2, 1, scenario),
        SchemeKind::StaticVcc => {
            let mut config = ExperimentConfig::paper_avcc(2, 1, scenario);
            config.scheme = SchemeKind::StaticVcc;
            config
        }
    };
    config.iterations = 2;
    config.time_scale = 1.0;
    config.seed = seed;
    config.dataset = DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    };
    config
}

fn assert_trajectories_match(
    served: &avcc_core::TrainingReport,
    oracle: &avcc_core::TrainingReport,
    context: &str,
) {
    assert_eq!(served.len(), oracle.len(), "{context}: iteration count");
    for (index, (served, oracle)) in served.iterations.iter().zip(&oracle.iterations).enumerate() {
        assert_eq!(
            served.test_accuracy, oracle.test_accuracy,
            "{context}: accuracy diverged at iteration {index}"
        );
        assert_eq!(
            served.train_loss, oracle.train_loss,
            "{context}: loss diverged at iteration {index}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn concurrent_jobs_match_the_serial_driver_bit_for_bit(
        width in 1usize..5,
        mix in proptest::collection::vec(0usize..4, 2..5),
        stragglers in 0usize..3,
        byzantine in 0usize..2,
    ) {
        let schemes = [
            SchemeKind::Uncoded,
            SchemeKind::Lcc,
            SchemeKind::Avcc,
            SchemeKind::StaticVcc,
        ];
        let configs: Vec<ExperimentConfig> = mix
            .iter()
            .enumerate()
            .map(|(job, &pick)| quick(schemes[pick], stragglers, byzantine, 42 + job as u64))
            .collect();

        // Oracle: each job alone on the synchronous driver.
        let oracles: Vec<_> = configs
            .iter()
            .map(|config| config.build_trainer::<P25>().train().unwrap())
            .collect();

        // All jobs concurrently on a shared fleet.
        let fleet = Fleet::new(width);
        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        let ids: Vec<_> = configs
            .iter()
            .map(|config| scheduler.submit(JobSpec::Training(config.clone())).unwrap())
            .collect();
        let report = scheduler.run(&fleet);

        prop_assert_eq!(report.metrics.jobs_completed, configs.len());
        prop_assert_eq!(report.metrics.jobs_failed, 0);
        for (job, (&id, oracle)) in ids.iter().zip(&oracles).enumerate() {
            let completed = report.job(id).expect("every job must be reported");
            let JobOutput::Training(served) = &completed.output else {
                panic!("training job {job} must produce a training report");
            };
            let context = format!(
                "job {job} ({}), width {width}, S={stragglers}, M={byzantine}",
                oracle.scheme
            );
            assert_trajectories_match(served, oracle, &context);
        }
    }
}

#[test]
fn pipelined_and_synchronous_schedules_agree() {
    // Same four jobs, depth 4 vs depth 1: the schedule must not leak into
    // the results, only into the timing.
    let configs: Vec<ExperimentConfig> = (0..4)
        .map(|job| {
            quick(
                [SchemeKind::Uncoded, SchemeKind::Avcc][job % 2],
                job % 3,
                job % 2,
                100 + job as u64,
            )
        })
        .collect();
    let fleet = Fleet::new(3);

    let run = |scheduler_config: SchedulerConfig| {
        let mut scheduler = Scheduler::<P25>::new(scheduler_config);
        for config in &configs {
            scheduler.submit(JobSpec::Training(config.clone())).unwrap();
        }
        scheduler.run(&fleet)
    };
    let pipelined = run(SchedulerConfig::default());
    let synchronous = run(SchedulerConfig::synchronous());

    assert_eq!(pipelined.metrics.jobs_completed, 4);
    assert_eq!(synchronous.metrics.jobs_completed, 4);
    for (fast, slow) in pipelined.jobs.iter().zip(&synchronous.jobs) {
        assert_eq!(fast.id, slow.id);
        let (JobOutput::Training(fast), JobOutput::Training(slow)) = (&fast.output, &slow.output)
        else {
            panic!("both schedules must produce training reports");
        };
        assert_trajectories_match(fast, slow, "pipelined vs synchronous");
    }
}

#[test]
fn mixed_training_and_matvec_jobs_share_the_fleet() {
    let mut rng = StdRng::seed_from_u64(11);
    let rows = 30;
    let cols = 8;
    let matrix = Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
            .collect::<Vec<F25>>(),
    );
    let input: Vec<F25> = (0..cols)
        .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
        .collect();
    let expected = mat_vec(&matrix, &input);
    let training = quick(SchemeKind::Avcc, 1, 1, 7);
    let oracle = training.build_trainer::<P25>().train().unwrap();

    let fleet = Fleet::new(2);
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    let train_id = scheduler.submit(JobSpec::Training(training)).unwrap();
    let matvec_id = scheduler
        .submit(JobSpec::CodedMatVec {
            matrix,
            input,
            coding: avcc_coding::SchemeConfig::linear(12, 8, 2, 1).unwrap(),
            seed: 5,
        })
        .unwrap();
    let report = scheduler.run(&fleet);

    assert_eq!(report.metrics.jobs_completed, 2);
    let JobOutput::Training(served) = &report.job(train_id).unwrap().output else {
        panic!("training job must produce a report");
    };
    assert_trajectories_match(served, &oracle, "mixed-fleet training job");
    let JobOutput::MatVec(product) = &report.job(matvec_id).unwrap().output else {
        panic!("matvec job must produce a product");
    };
    assert_eq!(product, &expected);
}

#[test]
fn overwhelmed_job_shrink_recodes_instead_of_failing() {
    // Five Byzantine workers leave only 7 honest results — below AVCC's
    // designed recovery threshold of 9. Instead of aborting (the pre-elastic
    // behaviour), the scheduler exhausts the round's stall budget and then
    // shrink-recodes to a K whose threshold fits the 7 usable results, so
    // the job completes; its neighbour is untouched throughout.
    //
    // Decode is exact whatever the code dimension and the corrupt results
    // are detected and excluded, so the rescued job's model trajectory must
    // equal a fault-free run of the same problem bit for bit.
    let mut overwhelmed = quick(SchemeKind::Avcc, 0, 1, 21);
    overwhelmed.scenario = FaultScenario::paper(0, 5, AttackModel::constant());
    let clean_reference = {
        let mut config = overwhelmed.clone();
        config.scenario = FaultScenario::none();
        config
    };
    let healthy = quick(SchemeKind::Avcc, 1, 0, 22);

    let fleet = Fleet::new(2);
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    let rescued_id = scheduler.submit(JobSpec::Training(overwhelmed)).unwrap();
    let healthy_id = scheduler
        .submit(JobSpec::Training(healthy.clone()))
        .unwrap();
    let report = scheduler.run(&fleet);

    assert_eq!(report.metrics.jobs_failed, 0);
    assert_eq!(report.metrics.jobs_completed, 2);
    let JobOutput::Training(rescued) = &report.job(rescued_id).unwrap().output else {
        panic!("rescued job must produce a report");
    };
    assert!(
        rescued.reconfiguration_count() >= 1,
        "the rescue must have re-encoded"
    );
    let clean_oracle = clean_reference.build_trainer::<P25>().train().unwrap();
    assert_trajectories_match(rescued, &clean_oracle, "shrink-recoded job");
    let JobOutput::Training(served) = &report.job(healthy_id).unwrap().output else {
        panic!("healthy job must produce a report");
    };
    let oracle = healthy.build_trainer::<P25>().train().unwrap();
    assert_trajectories_match(served, &oracle, "healthy job next to a parked one");
}

#[test]
fn queue_drains_after_a_run_and_accepts_new_jobs() {
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig {
        max_in_flight: 2,
        queue_capacity: 2,
        ..SchedulerConfig::default()
    });
    let spec = || JobSpec::Training(quick(SchemeKind::Uncoded, 0, 0, 1));
    scheduler.submit(spec()).unwrap();
    scheduler.submit(spec()).unwrap();
    assert!(scheduler.submit(spec()).is_err());

    let fleet = Fleet::new(2);
    let report = scheduler.run(&fleet);
    assert_eq!(report.metrics.jobs_completed, 2);
    assert_eq!(scheduler.pending_jobs(), 0);

    // Backpressure released: the queue accepts again, and ids keep growing.
    let id = scheduler.submit(spec()).unwrap();
    assert_eq!(id, 2);
    let report = scheduler.run(&fleet);
    assert_eq!(report.metrics.jobs_completed, 1);
}

#[test]
fn scheduler_completes_inside_a_nested_pool_scope() {
    // A scheduler run spawned as a task on the global pool must still drain:
    // the fleet owns its own threads, so blocking in the scheduler can never
    // starve the scope that hosts it.
    let completed = std::sync::Mutex::new(None);
    avcc_pool::global().scope(|scope| {
        let completed = &completed;
        scope.spawn(move || {
            let fleet = Fleet::new(1);
            let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
            scheduler
                .submit(JobSpec::Training(quick(SchemeKind::Avcc, 1, 1, 33)))
                .unwrap();
            let report = scheduler.run(&fleet);
            *completed.lock().unwrap() = Some(report.metrics.jobs_completed);
        });
    });
    assert_eq!(completed.lock().unwrap().unwrap(), 1);
}

/// Builds a deterministic test matrix and `m` input vectors from a seed.
fn batch_problem(seed: u64, functions: usize) -> (Matrix<F25>, Vec<Vec<F25>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = 24;
    let cols = 10;
    let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    let inputs = (0..functions)
        .map(|_| avcc_field::random_vector(&mut rng, cols))
        .collect();
    (matrix, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A multi-function matmul job is bit-identical to `m` independent
    /// single-function jobs over the same seed — and both match the plain
    /// `mat_vec` oracle. This is the serve-level face of the amortization
    /// contract: batching changes the cost, never the answer.
    #[test]
    fn batched_job_matches_independent_single_jobs(
        seed in 0u64..1000,
        functions in 2usize..7,
    ) {
        let (matrix, inputs) = batch_problem(seed, functions);
        let oracle: Vec<Vec<F25>> = inputs.iter().map(|input| mat_vec(&matrix, input)).collect();
        let coding = SchemeConfig::linear(12, 8, 2, 1).unwrap();
        let fleet = Fleet::new(2);

        let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
        let batch_id = scheduler
            .submit(
                JobSpec::matmul(matrix.clone(), inputs[0].clone())
                    .with_batch(inputs.clone())
                    .with_scheme(coding)
                    .with_seed(seed)
                    .build(),
            )
            .unwrap();
        let single_ids: Vec<_> = inputs
            .iter()
            .map(|input| {
                scheduler
                    .submit(
                        JobSpec::matmul(matrix.clone(), input.clone())
                            .with_scheme(coding)
                            .with_seed(seed)
                            .build(),
                    )
                    .unwrap()
            })
            .collect();
        let report = scheduler.run(&fleet);

        let batch_job = report.job(batch_id).unwrap();
        let JobOutput::MatVecBatch(batch_outputs) = &batch_job.output else {
            panic!("batched job must produce a MatVecBatch output");
        };
        prop_assert_eq!(batch_outputs, &oracle);
        for (function, id) in single_ids.iter().enumerate() {
            let JobOutput::MatVec(single) = &report.job(*id).unwrap().output else {
                panic!("single job must produce a MatVec output");
            };
            prop_assert_eq!(single, &oracle[function]);
            prop_assert_eq!(single, &batch_outputs[function]);
        }

        // The batch decodes m functions over one survivor set: the first
        // pays the Lagrange basis, the remaining m − 1 hit the shared cache.
        prop_assert_eq!(
            (batch_job.metrics.decode_cache_hits, batch_job.metrics.decode_cache_misses),
            (functions as u64 - 1, 1)
        );
        prop_assert_eq!(report.metrics.jobs_completed, functions + 1);
        prop_assert!(report.metrics.decode_cache_hits >= functions as u64 - 1);
    }
}
