//! Property tests for the SCRAPE-style dual-codeword screen: honest rounds
//! always pass on every modulus and point layout (including boundary values
//! next to the modulus), corrupted rounds are rejected and localized exactly,
//! and the empirical escape rate of a single corrupted symbol respects the
//! documented Schwartz–Zippel bound `(1/q)^k` (measurable on the tiny
//! `q = 251` field).

use avcc_coding::points::EvaluationPoints;
use avcc_coding::{DualCodeword, SchemeConfig, ScreenError, ScreenOutcome};
use avcc_field::{random_vector, Fp, PrimeModulus, P25, P251, P61, P64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evaluates `poly` (coefficients ascending) at `x`.
fn horner<M: PrimeModulus>(poly: &[Fp<M>], x: Fp<M>) -> Fp<M> {
    let mut value = Fp::<M>::ZERO;
    for &coefficient in poly.iter().rev() {
        value = value * x + coefficient;
    }
    value
}

/// An honest round: `width` independent random polynomials of degree below
/// the recovery threshold, evaluated at every worker α-point — exactly the
/// shape of worker results in a linear AVCC round.
fn honest_round<M: PrimeModulus>(
    config: SchemeConfig,
    width: usize,
    seed: u64,
) -> Vec<(usize, Vec<Fp<M>>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let threshold = config.recovery_threshold();
    let polys: Vec<Vec<Fp<M>>> = (0..width)
        .map(|_| random_vector(&mut rng, threshold))
        .collect();
    evaluate_round(config, &polys)
}

/// A round whose polynomial coefficients sit at the field boundary
/// (`q − 1`, `q − 2`, …): the hardest values for lazy-reduction arithmetic.
fn boundary_round<M: PrimeModulus>(config: SchemeConfig, width: usize) -> Vec<(usize, Vec<Fp<M>>)> {
    let threshold = config.recovery_threshold();
    let polys: Vec<Vec<Fp<M>>> = (0..width)
        .map(|c| {
            (0..threshold)
                .map(|k| Fp::<M>::new(M::MODULUS - 1 - ((c + k) as u64 % 3)))
                .collect()
        })
        .collect();
    evaluate_round(config, &polys)
}

fn evaluate_round<M: PrimeModulus>(
    config: SchemeConfig,
    polys: &[Vec<Fp<M>>],
) -> Vec<(usize, Vec<Fp<M>>)> {
    let points = EvaluationPoints::<M>::auto(config.partitions, config.colluding, config.workers);
    points
        .alpha()
        .iter()
        .enumerate()
        .map(|(worker, &alpha)| {
            let vector = polys.iter().map(|poly| horner(poly, alpha)).collect();
            (worker, vector)
        })
        .collect()
}

/// Honest rounds pass with every responder subset large enough to screen.
fn assert_honest_passes<M: PrimeModulus>(config: SchemeConfig, seed: u64) {
    let screen = DualCodeword::<M>::new(config);
    let threshold = config.recovery_threshold();
    let round = honest_round::<M>(config, 5, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    for responders in (threshold + 1)..=config.workers {
        let subset = round[config.workers - responders..].to_vec();
        let report = screen.screen(&subset, 2, &mut rng).expect("screenable");
        assert_eq!(
            report.outcome,
            ScreenOutcome::Clean,
            "honest round must pass with {responders} responders (modulus {})",
            M::MODULUS
        );
    }
}

#[test]
fn honest_rounds_pass_on_all_four_moduli() {
    // General Lagrange layouts (standard points).
    assert_honest_passes::<P25>(SchemeConfig::linear(12, 9, 2, 1).unwrap(), 1);
    assert_honest_passes::<P61>(SchemeConfig::linear(12, 9, 2, 1).unwrap(), 2);
    assert_honest_passes::<P251>(SchemeConfig::linear(10, 4, 2, 2).unwrap(), 3);
    // Subgroup/coset layout (P64 auto-selects NTT position for K+T = 8):
    // responders = 16 exercises the closed-form full-coset weights and the
    // NTT Q-evaluation; smaller subsets exercise the general weights.
    let subgroup = SchemeConfig::linear(16, 8, 4, 2).unwrap();
    assert!(EvaluationPoints::<P64>::auto(8, 0, 16)
        .ntt_layout()
        .is_some());
    assert_honest_passes::<P64>(subgroup, 4);
    // Privacy pads shift the threshold; the screen must follow it.
    assert_honest_passes::<P64>(SchemeConfig::new(16, 6, 2, 2, 2, 1).unwrap(), 5);
}

#[test]
fn boundary_values_near_the_modulus_pass() {
    let mut rng = StdRng::seed_from_u64(99);
    macro_rules! check {
        ($modulus:ty, $config:expr) => {
            let config = $config;
            let screen = DualCodeword::<$modulus>::new(config);
            let round = boundary_round::<$modulus>(config, 3);
            let report = screen.screen(&round, 2, &mut rng).expect("screenable");
            assert_eq!(report.outcome, ScreenOutcome::Clean);
        };
    }
    check!(P25, SchemeConfig::linear(12, 9, 2, 1).unwrap());
    check!(P61, SchemeConfig::linear(12, 9, 2, 1).unwrap());
    check!(P64, SchemeConfig::linear(16, 8, 4, 2).unwrap());
    check!(P251, SchemeConfig::linear(10, 4, 2, 2).unwrap());
}

#[test]
fn single_corruption_is_rejected_and_localized() {
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let screen = DualCodeword::<P61>::new(config);
    let mut rng = StdRng::seed_from_u64(7);
    for victim in 0..config.workers {
        let mut round = honest_round::<P61>(config, 5, 40 + victim as u64);
        round[victim].1[3] += Fp::<P61>::new(1);
        let report = screen.screen(&round, 1, &mut rng).expect("screenable");
        assert_eq!(
            report.outcome,
            ScreenOutcome::Corrupted {
                workers: vec![victim]
            },
            "single corrupted symbol at worker {victim} must be localized"
        );
    }
}

#[test]
fn multiple_corruptions_are_localized_exactly_up_to_the_budget() {
    // ν = 16 − 8 = 8 responders of redundancy → up to 4 locatable errors.
    let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
    let screen = DualCodeword::<P64>::new(config);
    assert_eq!(screen.max_locatable(16), 4);
    let mut rng = StdRng::seed_from_u64(11);
    for planted in [vec![0], vec![3, 9], vec![1, 7, 14], vec![2, 5, 8, 15]] {
        let mut round = honest_round::<P64>(config, 6, 60 + planted.len() as u64);
        for (offset, &victim) in planted.iter().enumerate() {
            for (c, value) in round[victim].1.iter_mut().enumerate() {
                *value += Fp::<P64>::new((offset + c) as u64 * 31 + 1);
            }
        }
        let report = screen.screen(&round, 1, &mut rng).expect("screenable");
        assert_eq!(
            report.outcome,
            ScreenOutcome::Corrupted {
                workers: planted.clone()
            },
            "planted set {planted:?} must be localized exactly"
        );
    }
}

#[test]
fn identical_colluding_corruption_is_still_localized() {
    let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
    let screen = DualCodeword::<P64>::new(config);
    let mut round = honest_round::<P64>(config, 4, 77);
    // Two colluders send the *same* wrong vector — coordinated corruption.
    let forged: Vec<Fp<P64>> = (0..4).map(|c| Fp::<P64>::new(c as u64 + 5)).collect();
    round[4].1 = forged.clone();
    round[10].1 = forged;
    let mut rng = StdRng::seed_from_u64(78);
    let report = screen.screen(&round, 1, &mut rng).expect("screenable");
    assert_eq!(
        report.outcome,
        ScreenOutcome::Corrupted {
            workers: vec![4, 10]
        }
    );
}

#[test]
fn threshold_plus_one_detects_but_cannot_localize() {
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let screen = DualCodeword::<P61>::new(config);
    assert_eq!(screen.max_locatable(10), 0);
    let mut round = honest_round::<P61>(config, 3, 13);
    round.truncate(10); // threshold 9 + 1: ν = 1, detection only.
    round[2].1[0] += Fp::<P61>::new(9);
    let mut rng = StdRng::seed_from_u64(14);
    let report = screen.screen(&round, 1, &mut rng).expect("screenable");
    assert_eq!(report.outcome, ScreenOutcome::Unlocalized);
}

#[test]
fn malformed_rounds_are_rejected() {
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let screen = DualCodeword::<P25>::new(config);
    let round = honest_round::<P25>(config, 3, 21);
    let mut rng = StdRng::seed_from_u64(22);

    // Exactly threshold responders: no dual redundancy.
    let too_few = round[..9].to_vec();
    assert_eq!(
        screen.screen(&too_few, 1, &mut rng),
        Err(ScreenError::NotScreenable {
            responders: 9,
            required: 10
        })
    );
    assert!(!screen.screenable(9));
    assert!(screen.screenable(10));

    let mut duplicated = round.clone();
    duplicated[1] = duplicated[0].clone();
    assert_eq!(
        screen.screen(&duplicated, 1, &mut rng),
        Err(ScreenError::DuplicateWorker { worker: 0 })
    );

    let mut unknown = round.clone();
    unknown[0].0 = 99;
    assert_eq!(
        screen.screen(&unknown, 1, &mut rng),
        Err(ScreenError::UnknownWorker { worker: 99 })
    );

    let mut ragged = round.clone();
    ragged[2].1.pop();
    assert_eq!(
        screen.screen(&ragged, 1, &mut rng),
        Err(ScreenError::ShapeMismatch)
    );

    assert_eq!(
        screen.screen(&[], 1, &mut rng),
        Err(ScreenError::EmptyRound)
    );
}

#[test]
fn repeated_responder_sets_hit_the_weight_cache() {
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let screen = DualCodeword::<P25>::new(config);
    let round = honest_round::<P25>(config, 3, 31);
    let subset = round[1..].to_vec();
    let mut rng = StdRng::seed_from_u64(32);
    assert_eq!(screen.weight_cache_stats(), (0, 0));
    screen.screen(&subset, 1, &mut rng).unwrap();
    assert_eq!(screen.weight_cache_stats(), (0, 1));
    screen.screen(&subset, 1, &mut rng).unwrap();
    assert_eq!(screen.weight_cache_stats(), (1, 1));
    // Arrival order must not matter.
    let mut shuffled = subset.clone();
    shuffled.reverse();
    screen.screen(&shuffled, 1, &mut rng).unwrap();
    assert_eq!(screen.weight_cache_stats(), (2, 1));
    // A different responder set is a different key.
    screen.screen(&round[2..], 1, &mut rng).unwrap();
    assert_eq!(screen.weight_cache_stats(), (2, 2));
    // Cloning resets the cache (pure accelerator).
    assert_eq!(screen.clone().weight_cache_stats(), (0, 0));
}

/// The Schwartz–Zippel escape bound, measured: on `q = 251` a single
/// corrupted symbol escapes one dual vector iff `Q(α_victim) = 0`, i.e. with
/// probability `1/251 ≈ 0.4%`. Two independent vectors square the bound
/// (`1/63001`), which over these trials means zero escapes.
#[test]
fn empirical_escape_rate_respects_the_schwartz_zippel_bound() {
    let config = SchemeConfig::linear(10, 4, 2, 2).unwrap();
    let screen = DualCodeword::<P251>::new(config);
    let round = honest_round::<P251>(config, 3, 51);
    let mut rng = StdRng::seed_from_u64(52);
    let trials = 2000usize;
    let mut single_vector_escapes = 0usize;
    let mut double_vector_escapes = 0usize;
    for trial in 0..trials {
        let mut corrupted = round.clone();
        let victim = trial % config.workers;
        let delta = Fp::<P251>::new(rng.gen_range(1..251u64));
        corrupted[victim].1[trial % 3] += delta;
        let single = screen.screen(&corrupted, 1, &mut rng).unwrap();
        if single.outcome == ScreenOutcome::Clean {
            single_vector_escapes += 1;
        }
        let double = screen.screen(&corrupted, 2, &mut rng).unwrap();
        if double.outcome == ScreenOutcome::Clean {
            double_vector_escapes += 1;
        }
    }
    let escape_rate = single_vector_escapes as f64 / trials as f64;
    // Expected 1/251 ≈ 0.004; 2% is a generous deterministic-seed margin.
    assert!(
        escape_rate <= 0.02,
        "single-vector escape rate {escape_rate} exceeds the 1/q envelope"
    );
    assert_eq!(
        double_vector_escapes, 0,
        "two dual vectors must catch every corruption at (1/q)² odds"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest rounds pass for any responder subset on both layouts.
    #[test]
    fn prop_honest_rounds_always_pass(seed in any::<u64>(), drop in 0usize..2) {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let screen = DualCodeword::<P61>::new(config);
        let round = honest_round::<P61>(config, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let report = screen.screen(&round[drop..], 2, &mut rng).unwrap();
        prop_assert_eq!(report.outcome, ScreenOutcome::Clean);
    }

    /// Any single corrupted symbol is rejected and localized exactly, on the
    /// subgroup layout, for any victim and any screened subset.
    #[test]
    fn prop_single_corruption_localized_on_subgroup_points(
        seed in any::<u64>(),
        victim in 0usize..16,
        drop in 0usize..3,
    ) {
        let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
        let screen = DualCodeword::<P64>::new(config);
        let mut round = honest_round::<P64>(config, 4, seed);
        round[victim].1[1] += Fp::<P64>::new(seed % 1000 + 1);
        // Keep the victim in the screened subset.
        let subset: Vec<_> = round
            .iter()
            .enumerate()
            .filter(|(w, _)| *w == victim || *w >= drop)
            .map(|(_, entry)| entry.clone())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let report = screen.screen(&subset, 1, &mut rng).unwrap();
        prop_assert_eq!(
            report.outcome,
            ScreenOutcome::Corrupted { workers: vec![victim] }
        );
    }
}
