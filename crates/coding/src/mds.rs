//! Systematic `(N, K)` MDS coding — the linear, non-private special case of
//! Lagrange coding used by the paper's illustrating example (Fig. 1) and by
//! the logistic-regression experiments (§V uses `T = 0`).
//!
//! [`MdsCode`] bundles an encoder and decoder for the common "split a matrix
//! into `K` row blocks, encode into `N` coded blocks, multiply each by a
//! vector, decode from any `K` results" workflow, so application code does not
//! need to touch the Lagrange machinery directly.

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use rand::Rng;

use crate::decoder::{DecodeError, LagrangeDecoder};
use crate::encoder::{EncodedShare, LagrangeEncoder};
use crate::scheme::{SchemeConfig, SchemeError};

/// A systematic `(N, K)` MDS code over the field `M`.
#[derive(Debug, Clone)]
pub struct MdsCode<M: PrimeModulus> {
    encoder: LagrangeEncoder<M>,
    decoder: LagrangeDecoder<M>,
}

impl<M: PrimeModulus> MdsCode<M> {
    /// Creates an `(N, K)` MDS code (no privacy pads, linear computations).
    pub fn new(workers: usize, partitions: usize) -> Result<Self, SchemeError> {
        if workers < partitions {
            return Err(SchemeError::Invalid {
                details: format!("N = {workers} workers cannot hold K = {partitions} partitions"),
            });
        }
        let config = SchemeConfig::new(workers, partitions, workers - partitions, 0, 0, 1)?;
        // Fig. 1's illustration is *systematic* (worker i ≤ K stores X_i
        // itself), which only the standard integer points provide — subgroup
        // layouts are disjoint by construction — so the MDS wrapper pins the
        // standard layout instead of using the automatic selection.
        let points = crate::points::EvaluationPoints::<M>::standard(partitions, 0, workers);
        Ok(MdsCode {
            encoder: LagrangeEncoder::with_points(config, points.clone()),
            decoder: LagrangeDecoder::with_points(config, points),
        })
    }

    /// The underlying scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        self.encoder.config()
    }

    /// Number of workers `N`.
    pub fn workers(&self) -> usize {
        self.config().workers
    }

    /// Number of data partitions `K` (also the number of results needed to
    /// decode).
    pub fn partitions(&self) -> usize {
        self.config().partitions
    }

    /// Splits a data matrix into `K` row blocks and encodes them into `N`
    /// coded blocks. The first `K` shares equal the raw blocks (systematic).
    ///
    /// # Panics
    /// Panics if the row count of `data` is not divisible by `K`.
    pub fn encode_matrix(&self, data: &Matrix<Fp<M>>) -> Vec<EncodedShare<M>> {
        let blocks = data.split_rows(self.partitions());
        self.encoder.encode_deterministic(&blocks)
    }

    /// Encodes pre-partitioned blocks (all the same shape).
    pub fn encode_blocks(&self, blocks: &[Matrix<Fp<M>>]) -> Vec<EncodedShare<M>> {
        self.encoder.encode_deterministic(blocks)
    }

    /// Access to the inner Lagrange encoder (e.g. for the encoding matrix).
    pub fn encoder(&self) -> &LagrangeEncoder<M> {
        &self.encoder
    }

    /// Access to the inner Lagrange decoder.
    pub fn decoder(&self) -> &LagrangeDecoder<M> {
        &self.decoder
    }

    /// Decodes the `K` per-block outputs from any `K` (or more) worker
    /// results, then concatenates them in block order — recovering `f(X)`
    /// for a row-block-parallel linear `f` such as `X·b` (Fig. 1).
    pub fn decode_concatenated(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
    ) -> Result<Vec<Fp<M>>, DecodeError> {
        let blocks = self.decoder.decode_erasure(results)?;
        Ok(blocks.into_iter().flatten().collect())
    }

    /// Error-correcting decode and concatenation (used by tests comparing the
    /// MDS wrapper against the LCC baseline's behaviour).
    pub fn decode_concatenated_with_errors<R: Rng + ?Sized>(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        max_errors: usize,
        rng: &mut R,
    ) -> Result<(Vec<Fp<M>>, Vec<usize>), DecodeError> {
        let (blocks, corrupted) = self.decoder.decode_with_errors(results, max_errors, rng)?;
        Ok((blocks.into_iter().flatten().collect(), corrupted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{PrimeField, F25, P25};
    use avcc_linalg::mat_vec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reproduces the paper's Fig. 1: a (3, 2) MDS code computing X·b with one
    /// straggler.
    #[test]
    fn figure_1_example_three_workers_one_straggler() {
        let code = MdsCode::<P25>::new(3, 2).unwrap();
        let data = Matrix::from_vec(4, 3, (1..=12u64).map(F25::from_u64).collect());
        let b: Vec<F25> = [2u64, 1, 3].iter().map(|&v| F25::from_u64(v)).collect();
        let expected = mat_vec(&data, &b);

        let shares = code.encode_matrix(&data);
        assert_eq!(shares.len(), 3);
        // Systematic part: workers 1 and 2 hold the raw blocks X1 and X2.
        assert_eq!(shares[0].block, data.row_slice(0, 2));
        assert_eq!(shares[1].block, data.row_slice(2, 4));
        // Worker 3 holds a parity combination that differs from both.
        assert_ne!(shares[2].block, shares[0].block);
        assert_ne!(shares[2].block, shares[1].block);

        // Worker 1 straggles: decode from workers 2 and 3.
        let results: Vec<(usize, Vec<F25>)> = shares[1..]
            .iter()
            .map(|share| (share.worker, mat_vec(&share.block, &b)))
            .collect();
        let decoded = code.decode_concatenated(&results).unwrap();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn paper_testbed_configuration_decodes_from_any_nine() {
        let code = MdsCode::<P25>::new(12, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(20);
        let data = Matrix::from_vec(18, 5, avcc_field::random_matrix(&mut rng, 18, 5));
        let b: Vec<F25> = avcc_field::random_vector(&mut rng, 5);
        let expected = mat_vec(&data, &b);
        let shares = code.encode_matrix(&data);
        let results: Vec<(usize, Vec<F25>)> = shares
            .iter()
            .map(|share| (share.worker, mat_vec(&share.block, &b)))
            .collect();
        // Take workers 3..12 (9 results, skipping the three "stragglers").
        let decoded = code.decode_concatenated(&results[3..]).unwrap();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn error_correcting_wrapper_locates_byzantine_worker() {
        let code = MdsCode::<P25>::new(12, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let data = Matrix::from_vec(9, 4, avcc_field::random_matrix(&mut rng, 9, 4));
        let b: Vec<F25> = avcc_field::random_vector(&mut rng, 4);
        let expected = mat_vec(&data, &b);
        let shares = code.encode_matrix(&data);
        let mut results: Vec<(usize, Vec<F25>)> = shares
            .iter()
            .map(|share| (share.worker, mat_vec(&share.block, &b)))
            .collect();
        for value in results[6].1.iter_mut() {
            *value = -*value;
        }
        let (decoded, corrupted) = code
            .decode_concatenated_with_errors(&results, 1, &mut rng)
            .unwrap();
        assert_eq!(decoded, expected);
        assert_eq!(corrupted, vec![6]);
    }

    #[test]
    fn invalid_partition_counts_are_rejected() {
        assert!(MdsCode::<P25>::new(3, 0).is_err());
        assert!(MdsCode::<P25>::new(2, 3).is_err());
    }

    #[test]
    fn config_reports_dimensions() {
        let code = MdsCode::<P25>::new(5, 3).unwrap();
        assert_eq!(code.workers(), 5);
        assert_eq!(code.partitions(), 3);
        assert_eq!(code.config().stragglers, 2);
    }
}
