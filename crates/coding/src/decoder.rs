//! The Lagrange / MDS decoder (paper §IV-B, step 4).
//!
//! Workers return `Ỹ_i = f(X̃_i) = f(u(α_i))`, i.e. evaluations of the
//! composed polynomial `f(u(z))` of degree at most `(K+T−1)·deg f`. The master
//! recovers the desired outputs `Y_k = f(X_k) = f(u(β_k))` by interpolation.
//! Two decoding modes are provided:
//!
//! * [`LagrangeDecoder::decode_erasure`] — what **AVCC** uses: every supplied
//!   result has already passed Freivalds verification, so the decoder only
//!   needs the recovery threshold `(K+T−1)·deg f + 1` of them and performs a
//!   plain coordinate-wise interpolation (implemented as one linear
//!   combination per output block, with coefficients shared across all
//!   coordinates).
//! * [`LagrangeDecoder::decode_with_errors`] — what the **LCC baseline**
//!   uses: up to `max_errors` of the supplied results may be arbitrary
//!   garbage. The decoder first *locates* the corrupted workers by running
//!   Berlekamp–Welch on a random-linear-combination fingerprint of each
//!   worker's vector (a corrupted vector produces a wrong fingerprint with
//!   probability at least `1 − deg/q`), then erasure-decodes from the
//!   remaining workers. The located workers are reported so the caller can
//!   mark them Byzantine. An exhaustive per-coordinate Berlekamp–Welch
//!   fallback is used if the fingerprint pass fails to produce a consistent
//!   codeword.
//!
//! When the evaluation points are in subgroup position (NTT-friendly field,
//! see [`crate::points::EvaluationPoints::subgroup`]) erasure decoding stays
//! on a fast path regardless of who responded:
//!
//! * **Every worker present** and `N` filling the covering coset: one
//!   full-coset inverse NTT, a fold modulo `z^B − 1` and one forward NTT —
//!   `O(N log N)` per coordinate.
//! * **Workers missing** (stragglers, evicted Byzantine workers): the
//!   surviving α-points are no longer a full coset, so the decoder
//!   interpolates `f(u)` from the survivor subset with a subproduct tree
//!   ([`avcc_poly::TreeInterpolator`], `O(R log² R)` per coordinate), then
//!   folds and forward-NTTs to the β-points exactly like the full-coset
//!   path. The tree, its vanishing-derivative weights and their shared batch
//!   inversion depend only on *which* workers survived, so they are cached
//!   per survivor set (consecutive rounds straggle the same workers far more
//!   often than not).
//!
//! The dense Lagrange combination ([`LagrangeDecoder::decode_erasure_lagrange`])
//! remains as the non-NTT-field path and as the correctness oracle — both
//! paths are bit-identical on every input (exact field arithmetic), which the
//! tests assert directly.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use avcc_field::{dot, random_vector, Fp, PrimeField, PrimeModulus};
use avcc_poly::{BerlekampWelch, LagrangeBasis, NttPlan, RsDecodeError, TreeInterpolator};
use rand::Rng;

use crate::points::EvaluationPoints;
use crate::scheme::SchemeConfig;

/// Errors raised during decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer results than the recovery threshold (erasure mode) or than the
    /// threshold plus `2·max_errors` (error-correcting mode).
    NotEnoughResults {
        /// Results provided.
        provided: usize,
        /// Results required.
        required: usize,
    },
    /// The same worker index appears twice.
    DuplicateWorker {
        /// The repeated worker index.
        worker: usize,
    },
    /// A worker index outside `[0, N)`.
    UnknownWorker {
        /// The offending index.
        worker: usize,
    },
    /// Result vectors disagree in length.
    ShapeMismatch,
    /// Error-correcting decoding could not find a consistent codeword within
    /// the error budget.
    TooManyErrors,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotEnoughResults { provided, required } => {
                write!(
                    f,
                    "not enough results: {provided} provided, {required} required"
                )
            }
            DecodeError::DuplicateWorker { worker } => {
                write!(f, "worker {worker} supplied more than one result")
            }
            DecodeError::UnknownWorker { worker } => write!(f, "unknown worker index {worker}"),
            DecodeError::ShapeMismatch => write!(f, "result vectors disagree in length"),
            DecodeError::TooManyErrors => {
                write!(
                    f,
                    "could not find a consistent codeword within the error budget"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The result of error-correcting decoding: the `K` output blocks plus the
/// worker indices identified as corrupted.
pub type DecodedWithErrors<M> = (Vec<Vec<Fp<M>>>, Vec<usize>);

/// The cached NTT plans of a decoder whose points are in subgroup position.
#[derive(Debug, Clone)]
struct DecoderNtt<M: PrimeModulus> {
    /// Inverse transform over the α-coset subgroup (size `A`): worker values
    /// → coefficients of `f(u)` (after undoing the coset shift). Present
    /// only when `N` fills the covering subgroup — the full-coset path needs
    /// an evaluation at *every* coset point.
    interpolate: Option<NttPlan<M>>,
    /// Forward transform over the β-subgroup (size `K + T`): folded
    /// coefficients → outputs at the β-points. Shared by the full-coset and
    /// the partial (subproduct-tree) paths.
    evaluate: NttPlan<M>,
}

/// Entries the decoder caches per surviving-worker set: everything about a
/// decode that depends only on *which* workers supplied results, not on the
/// values they returned.
#[derive(Debug)]
enum CachedBasis<M: PrimeModulus> {
    /// Dense Lagrange combination rows (the fallback/oracle path).
    Dense(DenseBasis<M>),
    /// Subproduct-tree interpolator over the survivor α-points (the partial
    /// NTT path).
    Tree(TreeInterpolator<M>),
}

/// The dense path's cached shape: systematic hits plus one Lagrange
/// coefficient row per interpolated block, all in sorted-survivor order.
#[derive(Debug)]
struct DenseBasis<M: PrimeModulus> {
    /// For each data block `k`: the sorted-survivor position of a worker
    /// sitting exactly on `β_k` (its vector *is* the output), if any.
    systematic: Vec<Option<usize>>,
    /// `ℓ_j(β_k)` rows for the non-systematic blocks, ascending `k`.
    rows: Vec<Vec<Fp<M>>>,
}

/// Basis cache keyed by `(tree_path, sorted surviving workers)` with hit
/// accounting. Bounded: at [`BASIS_CACHE_CAPACITY`] distinct survivor sets
/// the cache is cleared (straggler patterns at scale are heavily repetitive,
/// so churn past the bound means the patterns are random and caching is
/// hopeless anyway).
#[derive(Debug)]
struct BasisCache<M: PrimeModulus> {
    entries: HashMap<(bool, Vec<usize>), Arc<CachedBasis<M>>>,
    hits: u64,
    misses: u64,
}

impl<M: PrimeModulus> Default for BasisCache<M> {
    fn default() -> Self {
        BasisCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

/// Distinct survivor sets held before the basis cache resets.
const BASIS_CACHE_CAPACITY: usize = 32;

/// The decoder bound to a scheme configuration and its evaluation points.
#[derive(Debug)]
pub struct LagrangeDecoder<M: PrimeModulus> {
    config: SchemeConfig,
    points: EvaluationPoints<M>,
    /// Cached transforms for the NTT fast paths (`None` → points not in
    /// subgroup position, always the dense Lagrange path).
    ntt: Option<DecoderNtt<M>>,
    /// Per-survivor-set interpolation state (see [`BasisCache`]); interior
    /// mutability because decoding takes `&self`.
    cache: Mutex<BasisCache<M>>,
}

impl<M: PrimeModulus> Clone for LagrangeDecoder<M> {
    /// Clones the decoder configuration; the basis cache starts empty (it is
    /// a pure accelerator, rebuilt on demand).
    fn clone(&self) -> Self {
        LagrangeDecoder {
            config: self.config,
            points: self.points.clone(),
            ntt: self.ntt.clone(),
            cache: Mutex::new(BasisCache::default()),
        }
    }
}

impl<M: PrimeModulus> LagrangeDecoder<M> {
    /// Creates a decoder using the automatically selected evaluation points
    /// for `config` — [`EvaluationPoints::auto`] is deterministic, so this
    /// matches the points an independently constructed
    /// [`crate::encoder::LagrangeEncoder`] picks.
    pub fn new(config: SchemeConfig) -> Self {
        Self::with_points(
            config,
            EvaluationPoints::<M>::auto(config.partitions, config.colluding, config.workers),
        )
    }

    /// Creates a decoder on explicitly chosen evaluation points (must match
    /// the encoder's).
    ///
    /// # Panics
    /// Panics if the point counts disagree with the configuration.
    pub fn with_points(config: SchemeConfig, points: EvaluationPoints<M>) -> Self {
        assert_eq!(
            points.beta().len(),
            config.partitions + config.colluding,
            "need one β-point per data block and pad"
        );
        assert_eq!(
            points.alpha().len(),
            config.workers,
            "need one α-point per worker"
        );
        // The β-side forward transform works whenever the points are in
        // subgroup position; the full-coset inverse NTT additionally needs an
        // evaluation at *every* coset point, so that plan only exists when
        // the worker count fills the covering subgroup exactly (N a power of
        // two).
        let ntt = points.ntt_layout().map(|layout| DecoderNtt {
            interpolate: (layout.workers() == config.workers)
                .then(|| NttPlan::new(layout.log_workers)),
            evaluate: NttPlan::new(layout.log_blocks),
        });
        LagrangeDecoder {
            config,
            points,
            ntt,
            cache: Mutex::new(BasisCache::default()),
        }
    }

    /// `true` iff this decoder can take the full-coset `O(N log N)` NTT path
    /// (subgroup points and `N` filling the covering subgroup); with results
    /// missing it drops to the partial subproduct-tree path instead.
    pub fn supports_ntt(&self) -> bool {
        self.ntt
            .as_ref()
            .is_some_and(|ntt| ntt.interpolate.is_some())
    }

    /// `true` iff this decoder can take the partial `O(R log² R)`
    /// subproduct-tree path when workers are missing (points in subgroup
    /// position — the β-side forward NTT is what the fold needs).
    pub fn supports_partial_ntt(&self) -> bool {
        self.ntt.is_some()
    }

    /// Cache accounting for the per-survivor-set interpolation state:
    /// `(hits, misses)` since construction. A repeated straggler pattern
    /// must hit (tested), so at steady state `hits` grows and `misses`
    /// stays put.
    pub fn basis_cache_stats(&self) -> (u64, u64) {
        let cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (cache.hits, cache.misses)
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The recovery threshold `(K+T−1)·deg f + 1`.
    pub fn recovery_threshold(&self) -> usize {
        self.config.recovery_threshold()
    }

    /// Erasure decoding from verified results.
    ///
    /// `results` maps worker indices to their returned vectors `Ỹ_i`; at least
    /// the recovery threshold of them must be present. Returns the `K` output
    /// blocks `Y_1, …, Y_K` (each the same length as the worker vectors).
    pub fn decode_erasure(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
    ) -> Result<Vec<Vec<Fp<M>>>, DecodeError> {
        let threshold = self.recovery_threshold();
        self.validate(results, threshold)?;
        if let Some(ntt) = &self.ntt {
            // Full-coset fast path: every worker responded (validate has
            // already established distinctness, so `N` results = all of
            // them), and `N` fills the covering subgroup.
            if ntt.interpolate.is_some() && results.len() == self.config.workers {
                return Ok(self.decode_erasure_full_coset(results));
            }
            // Partial fast path: workers are missing (or never filled the
            // coset), but the points are still in subgroup position —
            // subproduct-tree interpolation from the surviving subset.
            return Ok(self.decode_erasure_tree(&results[..threshold], ntt));
        }
        Ok(self.decode_erasure_dense(&results[..threshold]))
    }

    /// The dense Lagrange combination on exactly `threshold` results — the
    /// non-NTT-field path, kept public as the correctness oracle for the
    /// NTT paths (bit-identical outputs, asserted in tests) and as the
    /// comparator the `decode_straggler` benches gate against.
    ///
    /// Accepts the same inputs as [`LagrangeDecoder::decode_erasure`] and
    /// shares its per-survivor-set cache.
    pub fn decode_erasure_lagrange(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
    ) -> Result<Vec<Vec<Fp<M>>>, DecodeError> {
        let threshold = self.recovery_threshold();
        self.validate(results, threshold)?;
        Ok(self.decode_erasure_dense(&results[..threshold]))
    }

    /// Sorts selected results by worker index: the cache key must not depend
    /// on arrival order, so every per-survivor-set structure (and the
    /// combination that consumes it) uses this canonical order.
    fn sorted_by_worker(selected: &[(usize, Vec<Fp<M>>)]) -> Vec<&(usize, Vec<Fp<M>>)> {
        let mut ordered: Vec<&(usize, Vec<Fp<M>>)> = selected.iter().collect();
        ordered.sort_unstable_by_key(|(worker, _)| *worker);
        ordered
    }

    /// Fetches (or builds and caches) the per-survivor-set interpolation
    /// state for the given canonicalized selection.
    fn basis_for(&self, ordered: &[&(usize, Vec<Fp<M>>)], tree: bool) -> Arc<CachedBasis<M>> {
        let workers: Vec<usize> = ordered.iter().map(|(worker, _)| *worker).collect();
        {
            let mut cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = cache.entries.get(&(tree, workers.clone())) {
                let hit = Arc::clone(hit);
                cache.hits += 1;
                return hit;
            }
            cache.misses += 1;
        }
        // Build outside the lock: concurrent first decodes of the same
        // pattern may both build (harmless), but no decode ever blocks on
        // another's basis construction.
        let alphas: Vec<Fp<M>> = workers.iter().map(|&w| self.points.alpha()[w]).collect();
        let built = Arc::new(if tree {
            CachedBasis::Tree(TreeInterpolator::new(alphas))
        } else {
            CachedBasis::Dense(self.build_dense_basis(&alphas))
        });
        let mut cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.entries.len() >= BASIS_CACHE_CAPACITY {
            cache.entries.clear();
        }
        cache.entries.insert((tree, workers), Arc::clone(&built));
        built
    }

    /// Builds the dense path's cached shape: systematic hits and the
    /// Lagrange rows for the interpolated blocks. One basis construction
    /// (with its batch-inverted barycentric weights) and one shared
    /// `evaluate_at_many` batch inversion cover all `K` blocks.
    fn build_dense_basis(&self, alphas: &[Fp<M>]) -> DenseBasis<M> {
        let basis = LagrangeBasis::new(alphas.to_vec());
        // Systematic fast path per block: a selected worker sitting exactly
        // on β_k already holds the output.
        let systematic: Vec<Option<usize>> = (0..self.config.partitions)
            .map(|k| {
                let beta = self.points.beta()[k];
                alphas.iter().position(|&alpha| alpha == beta)
            })
            .collect();
        let interpolated_betas: Vec<Fp<M>> = systematic
            .iter()
            .enumerate()
            .filter(|(_, hit)| hit.is_none())
            .map(|(k, _)| self.points.beta()[k])
            .collect();
        let rows = basis.evaluate_at_many(&interpolated_betas);
        DenseBasis { systematic, rows }
    }

    /// The dense `O(K·R)`-per-coordinate combination over exactly
    /// `threshold` results, with its basis rows cached per survivor set.
    fn decode_erasure_dense(&self, selected: &[(usize, Vec<Fp<M>>)]) -> Vec<Vec<Fp<M>>> {
        let ordered = Self::sorted_by_worker(selected);
        let basis = self.basis_for(&ordered, false);
        let CachedBasis::Dense(dense) = &*basis else {
            unreachable!("dense decode fetched a dense basis");
        };
        let width = ordered[0].1.len();
        let mut basis_rows = dense.rows.iter();
        let mut outputs = Vec::with_capacity(self.config.partitions);
        for hit in &dense.systematic {
            if let Some(position) = hit {
                outputs.push(ordered[*position].1.clone());
                continue;
            }
            let coefficients = basis_rows
                .next()
                .expect("one basis row per interpolated β-point");
            // One lazy-reduction pass over the selected workers: the u128
            // lanes absorb one product per worker and reduce once at the end.
            let mut block = avcc_field::WideAccumulator::<M>::new(width);
            for ((_, vector), &coefficient) in ordered.iter().zip(coefficients.iter()) {
                if coefficient == Fp::<M>::ZERO {
                    continue;
                }
                block.axpy(coefficient, vector);
            }
            outputs.push(block.finish());
        }
        outputs
    }

    /// The partial `O(R log² R)`-per-coordinate fast path (points in
    /// subgroup position, workers missing): interpolate `P = f(u)` from the
    /// surviving α-subset with the cached subproduct tree (vector lanes —
    /// every coordinate in one tree pass), then fold the coefficients modulo
    /// `z^B − 1` and forward-NTT over the β-subgroup exactly like the
    /// full-coset path.
    fn decode_erasure_tree(
        &self,
        selected: &[(usize, Vec<Fp<M>>)],
        ntt: &DecoderNtt<M>,
    ) -> Vec<Vec<Fp<M>>> {
        let ordered = Self::sorted_by_worker(selected);
        let basis = self.basis_for(&ordered, true);
        let CachedBasis::Tree(interpolator) = &*basis else {
            unreachable!("tree decode fetched a tree basis");
        };
        let lanes: Vec<&[Fp<M>]> = ordered
            .iter()
            .map(|(_, vector)| vector.as_slice())
            .collect();
        let width = lanes[0].len();
        let mut coefficients = interpolator.interpolate_vectors(&lanes).into_iter();
        // Fold modulo z^B − 1 (exact: every β-point satisfies z^B = 1). The
        // recovery threshold (K+T−1)·deg f + 1 is at least B = K+T, so the
        // first B coefficient lanes always exist.
        let blocks = ntt.evaluate.len();
        let mut folded: Vec<Vec<Fp<M>>> = coefficients.by_ref().take(blocks).collect();
        debug_assert_eq!(folded.len(), blocks);
        for (m, lane) in coefficients.enumerate() {
            let target = &mut folded[m % blocks];
            for (slot, value) in target.iter_mut().zip(lane) {
                *slot += value;
            }
        }
        ntt.evaluate.forward_vectors(&mut folded);
        folded.truncate(self.config.partitions);
        debug_assert!(folded.iter().all(|lane| lane.len() == width));
        folded
    }

    /// The `O(N log N)`-per-coordinate fast path: interpolate `P = f(u)` from
    /// the full α-coset with one inverse NTT, fold the coefficients modulo
    /// `z^B − 1` (exact, because every β-point satisfies `z^B = 1`) and
    /// evaluate at all β-points with one forward NTT over the subgroup.
    fn decode_erasure_full_coset(&self, results: &[(usize, Vec<Fp<M>>)]) -> Vec<Vec<Fp<M>>> {
        let ntt = self.ntt.as_ref().expect("caller checked the fast path");
        let interpolate = ntt
            .interpolate
            .as_ref()
            .expect("caller checked the full-coset plan");
        let layout = self
            .points
            .ntt_layout()
            .expect("NTT plans imply a subgroup layout");
        let width = results[0].1.len();
        // Scatter results into coset order: worker i sits at α_i = g·ω_A^i.
        let mut lanes: Vec<Vec<Fp<M>>> = vec![Vec::new(); self.config.workers];
        for (worker, vector) in results {
            lanes[*worker] = vector.clone();
        }
        // Coefficients of P in the coset basis: INTT gives p_k·g^k, undone by
        // scaling with g^{-1} powers.
        interpolate.inverse_vectors(&mut lanes);
        interpolate.coset_scale_vectors(&mut lanes, layout.shift.inverse());
        // Fold modulo z^B − 1: coefficient m contributes to residue m mod B.
        let blocks = ntt.evaluate.len();
        let mut folded: Vec<Vec<Fp<M>>> = lanes.drain(..blocks).collect();
        for (m, lane) in lanes.into_iter().enumerate() {
            let target = &mut folded[m % blocks];
            debug_assert_eq!(lane.len(), width);
            for (slot, value) in target.iter_mut().zip(lane) {
                *slot += value;
            }
        }
        ntt.evaluate.forward_vectors(&mut folded);
        folded.truncate(self.config.partitions);
        folded
    }

    /// Error-correcting decoding: tolerates up to `max_errors` arbitrarily
    /// corrupted results among `results`. Returns the `K` output blocks and
    /// the worker indices identified as corrupted.
    pub fn decode_with_errors<R: Rng + ?Sized>(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        max_errors: usize,
        rng: &mut R,
    ) -> Result<DecodedWithErrors<M>, DecodeError> {
        let threshold = self.recovery_threshold();
        let required = threshold + 2 * max_errors;
        self.validate(results, required)?;
        let width = results[0].1.len();
        let alphas: Vec<Fp<M>> = results
            .iter()
            .map(|(worker, _)| self.points.alpha()[*worker])
            .collect();

        // Fingerprint pass: collapse each worker vector to a single field
        // element with a shared random combination vector. Correct workers'
        // fingerprints are evaluations of a degree-(threshold-1) polynomial.
        let combination: Vec<Fp<M>> = random_vector(rng, width);
        let fingerprints: Vec<Fp<M>> = results
            .iter()
            .map(|(_, vector)| dot(vector, &combination))
            .collect();
        let decoder = BerlekampWelch::new(alphas.clone(), threshold);
        let located = match decoder.decode(&fingerprints, max_errors) {
            Ok(decoded) => decoded.error_positions,
            Err(RsDecodeError::TooManyErrors) => return Err(DecodeError::TooManyErrors),
            Err(RsDecodeError::NotEnoughEvaluations { provided, required }) => {
                return Err(DecodeError::NotEnoughResults { provided, required })
            }
            Err(RsDecodeError::LengthMismatch { .. }) => return Err(DecodeError::ShapeMismatch),
        };

        // Erasure-decode from the workers that were not located as corrupted.
        let clean: Vec<(usize, Vec<Fp<M>>)> = results
            .iter()
            .enumerate()
            .filter(|(position, _)| !located.contains(position))
            .map(|(_, entry)| entry.clone())
            .collect();
        if clean.len() < threshold {
            return Err(DecodeError::TooManyErrors);
        }
        let outputs = self.decode_erasure(&clean)?;
        let corrupted_workers: Vec<usize> = located
            .iter()
            .map(|&position| results[position].0)
            .collect();
        Ok((outputs, corrupted_workers))
    }

    fn validate(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        required: usize,
    ) -> Result<(), DecodeError> {
        if results.len() < required {
            return Err(DecodeError::NotEnoughResults {
                provided: results.len(),
                required,
            });
        }
        let mut seen = vec![false; self.config.workers];
        let width = results[0].1.len();
        for (worker, vector) in results {
            if *worker >= self.config.workers {
                return Err(DecodeError::UnknownWorker { worker: *worker });
            }
            if seen[*worker] {
                return Err(DecodeError::DuplicateWorker { worker: *worker });
            }
            seen[*worker] = true;
            if vector.len() != width {
                return Err(DecodeError::ShapeMismatch);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::LagrangeEncoder;
    use avcc_field::{PrimeField, F25, P25};
    use avcc_linalg::{mat_vec, Matrix};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a full encode → worker-compute → decode round for a linear map
    /// (matrix–vector product), returning the expected per-block outputs and
    /// the worker results.
    type LinearRound = (Vec<Vec<F25>>, Vec<(usize, Vec<F25>)>, LagrangeDecoder<P25>);

    fn linear_round(config: SchemeConfig, seed: u64) -> LinearRound {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = 4;
        let cols = 6;
        let blocks: Vec<Matrix<F25>> = (0..config.partitions)
            .map(|_| Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols)))
            .collect();
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, cols);
        let encoder = LagrangeEncoder::<P25>::new(config);
        let shares = if config.colluding == 0 {
            encoder.encode_deterministic(&blocks)
        } else {
            encoder.encode(&blocks, &mut rng)
        };
        let expected: Vec<Vec<F25>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();
        let results: Vec<(usize, Vec<F25>)> = shares
            .iter()
            .map(|share| (share.worker, mat_vec(&share.block, &w)))
            .collect();
        (expected, results, LagrangeDecoder::<P25>::new(config))
    }

    #[test]
    fn erasure_decoding_from_all_workers() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 1);
        let outputs = decoder.decode_erasure(&results).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_from_any_threshold_subset() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 2);
        // Drop the first three workers (as if they straggled).
        let subset = results[3..].to_vec();
        let outputs = decoder.decode_erasure(&subset).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_with_privacy_pads() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 3);
        // Threshold is (3+2-1)*1+1 = 5.
        assert_eq!(decoder.recovery_threshold(), 5);
        let subset = results[2..7].to_vec();
        let outputs = decoder.decode_erasure(&subset).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_requires_threshold_results() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 4);
        let subset = results[..8].to_vec();
        assert_eq!(
            decoder.decode_erasure(&subset),
            Err(DecodeError::NotEnoughResults {
                provided: 8,
                required: 9
            })
        );
    }

    #[test]
    fn duplicate_and_unknown_workers_are_rejected() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 5);
        let mut duplicated = results.clone();
        duplicated[1] = duplicated[0].clone();
        assert_eq!(
            decoder.decode_erasure(&duplicated),
            Err(DecodeError::DuplicateWorker { worker: 0 })
        );
        let mut unknown = results.clone();
        unknown[0].0 = 99;
        assert_eq!(
            decoder.decode_erasure(&unknown),
            Err(DecodeError::UnknownWorker { worker: 99 })
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let (_, mut results, decoder) = linear_round(config, 6);
        results[2].1.pop();
        assert_eq!(
            decoder.decode_erasure(&results),
            Err(DecodeError::ShapeMismatch)
        );
    }

    #[test]
    fn error_correcting_decode_locates_byzantine_workers() {
        // LCC-style: (N=12, K=9, S=1, M=1) needs 9 + 1 + 2 = 12 workers.
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 7);
        // Corrupt worker 4's vector (constant attack).
        for value in results[4].1.iter_mut() {
            *value = F25::from_u64(3);
        }
        // Drop one straggler (worker 11), leaving N - S = 11 results.
        results.truncate(11);
        let mut rng = StdRng::seed_from_u64(70);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        assert_eq!(corrupted, vec![4]);
    }

    #[test]
    fn error_correcting_decode_with_two_errors() {
        let config = SchemeConfig::linear(14, 9, 1, 2).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 8);
        for value in results[0].1.iter_mut() {
            *value = -*value; // reverse-value attack
        }
        for value in results[7].1.iter_mut() {
            *value += F25::from_u64(1234);
        }
        let mut rng = StdRng::seed_from_u64(80);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 2, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        let mut corrupted_sorted = corrupted;
        corrupted_sorted.sort_unstable();
        assert_eq!(corrupted_sorted, vec![0, 7]);
    }

    #[test]
    fn error_correcting_decode_needs_two_extra_per_error() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 9);
        // Only 10 results available but 9 + 2*1 = 11 required.
        let subset = results[..10].to_vec();
        let mut rng = StdRng::seed_from_u64(90);
        assert_eq!(
            decoder.decode_with_errors(&subset, 1, &mut rng),
            Err(DecodeError::NotEnoughResults {
                provided: 10,
                required: 11
            })
        );
    }

    #[test]
    fn error_correcting_decode_reports_overload() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 10);
        // Corrupt three workers but only budget one error: the decoder must
        // either refuse or at least fail to reproduce the clean outputs (the
        // attack exceeds the code's correction capability by design).
        for index in [1, 5, 9] {
            for value in results[index].1.iter_mut() {
                *value = F25::from_u64(7);
            }
        }
        let mut rng = StdRng::seed_from_u64(100);
        match decoder.decode_with_errors(&results, 1, &mut rng) {
            Err(DecodeError::TooManyErrors) => {}
            Ok((outputs, _)) => assert_ne!(outputs, expected),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn clean_results_report_no_corruption() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 11);
        let mut rng = StdRng::seed_from_u64(110);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        assert!(corrupted.is_empty());
    }

    mod ntt_path {
        use super::*;
        use avcc_field::{F64, P64};

        type NttRound = (Vec<Vec<F64>>, Vec<(usize, Vec<F64>)>, LagrangeDecoder<P64>);

        /// A full encode → linear-compute round on the Goldilocks field with
        /// `N = 16` workers (filling the covering subgroup) and `K = 8`.
        fn ntt_round(config: SchemeConfig, seed: u64) -> NttRound {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = 4;
            let cols = 6;
            let blocks: Vec<Matrix<F64>> = (0..config.partitions)
                .map(|_| {
                    Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
                })
                .collect();
            let w: Vec<F64> = avcc_field::random_vector(&mut rng, cols);
            let encoder = LagrangeEncoder::<P64>::new(config);
            assert!(encoder.uses_ntt());
            let shares = if config.colluding == 0 {
                encoder.encode_deterministic(&blocks)
            } else {
                encoder.encode(&blocks, &mut rng)
            };
            let expected: Vec<Vec<F64>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();
            let results: Vec<(usize, Vec<F64>)> = shares
                .iter()
                .map(|share| (share.worker, mat_vec(&share.block, &w)))
                .collect();
            (expected, results, LagrangeDecoder::<P64>::new(config))
        }

        #[test]
        fn full_coset_results_decode_through_the_ntt() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 21);
            assert!(decoder.supports_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn missing_workers_take_the_tree_path_and_agree() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 22);
            // Dropping any straggler drops to the partial subproduct-tree
            // path; all three paths must produce the same outputs.
            let full = decoder.decode_erasure(&results).unwrap();
            let subset = results[3..].to_vec();
            let partial = decoder.decode_erasure(&subset).unwrap();
            let oracle = decoder.decode_erasure_lagrange(&subset).unwrap();
            assert_eq!(full, expected);
            assert_eq!(partial, expected);
            // Bit-identical to the dense Lagrange oracle, not just equal as
            // decoded numbers.
            assert_eq!(partial, oracle);
        }

        #[test]
        fn tree_path_is_bit_identical_to_lagrange_for_any_straggler_count() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 26);
            for missing in 1..=4usize {
                let subset = results[missing..].to_vec();
                let tree = decoder.decode_erasure(&subset).unwrap();
                let oracle = decoder.decode_erasure_lagrange(&subset).unwrap();
                assert_eq!(tree, expected, "{missing} missing");
                assert_eq!(tree, oracle, "{missing} missing");
            }
        }

        #[test]
        fn non_power_of_two_worker_counts_use_the_partial_path() {
            // N = 12 < 16 never fills the coset: the full-coset path is
            // unavailable, but the points are still in subgroup position so
            // the partial tree path applies — and decoding stays correct.
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            let (expected, results, decoder) = ntt_round(config, 23);
            assert!(!decoder.supports_ntt());
            assert!(decoder.supports_partial_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn repeated_straggler_pattern_hits_the_basis_cache() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 27);
            // Exactly threshold-many survivors, so the selected set (and
            // with it the cache key) is the whole subset regardless of
            // arrival order.
            assert_eq!(decoder.recovery_threshold(), 8);
            let subset = results[2..10].to_vec();
            assert_eq!(decoder.basis_cache_stats(), (0, 0));
            assert_eq!(decoder.decode_erasure(&subset).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (0, 1));
            // Same survivor set again (the common consecutive-round case):
            // the interpolator is reused, not rebuilt.
            assert_eq!(decoder.decode_erasure(&subset).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (1, 1));
            // Arrival order must not matter: a shuffled copy of the same
            // survivor set still hits.
            let mut shuffled = subset.clone();
            shuffled.reverse();
            assert_eq!(decoder.decode_erasure(&shuffled).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (2, 1));
            // A different straggler pattern is a different key.
            let other = results[3..].to_vec();
            assert_eq!(decoder.decode_erasure(&other).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (2, 2));
            // The dense oracle on the same survivors caches separately.
            assert_eq!(decoder.decode_erasure_lagrange(&subset).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (2, 3));
            assert_eq!(decoder.decode_erasure_lagrange(&subset).unwrap(), expected);
            assert_eq!(decoder.basis_cache_stats(), (3, 3));
            // Cloning resets the cache (it is a pure accelerator).
            let cloned = decoder.clone();
            assert_eq!(cloned.basis_cache_stats(), (0, 0));
        }

        #[test]
        fn private_ntt_round_trips_with_full_coset() {
            // K + T = 8, N = 16: threshold (8−1)·1+1 = 8 ≤ 16.
            let config = SchemeConfig::new(16, 6, 2, 2, 2, 1).unwrap();
            let (expected, results, decoder) = ntt_round(config, 24);
            assert!(decoder.supports_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn error_correcting_decode_works_on_subgroup_points() {
            // LCC-style on F64: locate the corruption via Berlekamp–Welch,
            // then erasure-decode the clean subset (Lagrange fallback, since
            // the evicted worker breaks full-coset coverage).
            let config = SchemeConfig::linear(16, 8, 2, 2).unwrap();
            let (expected, mut results, decoder) = ntt_round(config, 25);
            for value in results[5].1.iter_mut() {
                *value = -*value;
            }
            let mut rng = StdRng::seed_from_u64(250);
            let (outputs, corrupted) = decoder.decode_with_errors(&results, 2, &mut rng).unwrap();
            assert_eq!(outputs, expected);
            assert_eq!(corrupted, vec![5]);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn prop_ntt_and_lagrange_paths_agree(seed in any::<u64>(), drop_count in 0usize..8) {
                let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
                let (expected, results, decoder) = ntt_round(config, seed);
                let outputs = decoder
                    .decode_erasure(&results[drop_count..])
                    .unwrap();
                prop_assert_eq!(outputs, expected);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_any_threshold_subset_decodes(seed in any::<u64>(), drop_count in 0usize..3) {
            let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
            let (expected, results, decoder) = linear_round(config, seed);
            let subset = results[drop_count..].to_vec();
            let outputs = decoder.decode_erasure(&subset).unwrap();
            prop_assert_eq!(outputs, expected);
        }

        #[test]
        fn prop_single_corruption_is_always_located(seed in any::<u64>(), victim in 0usize..12) {
            let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
            let (expected, mut results, decoder) = linear_round(config, seed);
            for value in results[victim].1.iter_mut() {
                *value += F25::from_u64(999);
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
            prop_assert_eq!(outputs, expected);
            prop_assert_eq!(corrupted, vec![victim]);
        }
    }
}
