//! The Lagrange / MDS decoder (paper §IV-B, step 4).
//!
//! Workers return `Ỹ_i = f(X̃_i) = f(u(α_i))`, i.e. evaluations of the
//! composed polynomial `f(u(z))` of degree at most `(K+T−1)·deg f`. The master
//! recovers the desired outputs `Y_k = f(X_k) = f(u(β_k))` by interpolation.
//! Two decoding modes are provided:
//!
//! * [`LagrangeDecoder::decode_erasure`] — what **AVCC** uses: every supplied
//!   result has already passed Freivalds verification, so the decoder only
//!   needs the recovery threshold `(K+T−1)·deg f + 1` of them and performs a
//!   plain coordinate-wise interpolation (implemented as one linear
//!   combination per output block, with coefficients shared across all
//!   coordinates).
//! * [`LagrangeDecoder::decode_with_errors`] — what the **LCC baseline**
//!   uses: up to `max_errors` of the supplied results may be arbitrary
//!   garbage. The decoder first *locates* the corrupted workers by running
//!   Berlekamp–Welch on a random-linear-combination fingerprint of each
//!   worker's vector (a corrupted vector produces a wrong fingerprint with
//!   probability at least `1 − deg/q`), then erasure-decodes from the
//!   remaining workers. The located workers are reported so the caller can
//!   mark them Byzantine. An exhaustive per-coordinate Berlekamp–Welch
//!   fallback is used if the fingerprint pass fails to produce a consistent
//!   codeword.
//!
//! When the evaluation points are in subgroup position (NTT-friendly field,
//! see [`crate::points::EvaluationPoints::subgroup`]) and every worker
//! responded, erasure decoding takes a full-coset NTT fast path —
//! `O(N log N)` per coordinate instead of the `O(K·R)` Lagrange combination —
//! and falls back to Lagrange interpolation the moment any result is missing
//! (stragglers, evicted Byzantine workers).

use avcc_field::{dot, random_vector, Fp, PrimeField, PrimeModulus};
use avcc_poly::{BerlekampWelch, LagrangeBasis, NttPlan, RsDecodeError};
use rand::Rng;

use crate::points::EvaluationPoints;
use crate::scheme::SchemeConfig;

/// Errors raised during decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer results than the recovery threshold (erasure mode) or than the
    /// threshold plus `2·max_errors` (error-correcting mode).
    NotEnoughResults {
        /// Results provided.
        provided: usize,
        /// Results required.
        required: usize,
    },
    /// The same worker index appears twice.
    DuplicateWorker {
        /// The repeated worker index.
        worker: usize,
    },
    /// A worker index outside `[0, N)`.
    UnknownWorker {
        /// The offending index.
        worker: usize,
    },
    /// Result vectors disagree in length.
    ShapeMismatch,
    /// Error-correcting decoding could not find a consistent codeword within
    /// the error budget.
    TooManyErrors,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotEnoughResults { provided, required } => {
                write!(
                    f,
                    "not enough results: {provided} provided, {required} required"
                )
            }
            DecodeError::DuplicateWorker { worker } => {
                write!(f, "worker {worker} supplied more than one result")
            }
            DecodeError::UnknownWorker { worker } => write!(f, "unknown worker index {worker}"),
            DecodeError::ShapeMismatch => write!(f, "result vectors disagree in length"),
            DecodeError::TooManyErrors => {
                write!(
                    f,
                    "could not find a consistent codeword within the error budget"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The result of error-correcting decoding: the `K` output blocks plus the
/// worker indices identified as corrupted.
pub type DecodedWithErrors<M> = (Vec<Vec<Fp<M>>>, Vec<usize>);

/// The cached NTT plans of a decoder whose points are in subgroup position.
#[derive(Debug, Clone)]
struct DecoderNtt<M: PrimeModulus> {
    /// Inverse transform over the α-coset subgroup (size `A`): worker values
    /// → coefficients of `f(u)` (after undoing the coset shift).
    interpolate: NttPlan<M>,
    /// Forward transform over the β-subgroup (size `K + T`): folded
    /// coefficients → outputs at the β-points.
    evaluate: NttPlan<M>,
}

/// The decoder bound to a scheme configuration and its evaluation points.
#[derive(Debug, Clone)]
pub struct LagrangeDecoder<M: PrimeModulus> {
    config: SchemeConfig,
    points: EvaluationPoints<M>,
    /// Cached transforms for the full-coset NTT fast path (`None` → always
    /// the Lagrange path).
    ntt: Option<DecoderNtt<M>>,
}

impl<M: PrimeModulus> LagrangeDecoder<M> {
    /// Creates a decoder using the automatically selected evaluation points
    /// for `config` — [`EvaluationPoints::auto`] is deterministic, so this
    /// matches the points an independently constructed
    /// [`crate::encoder::LagrangeEncoder`] picks.
    pub fn new(config: SchemeConfig) -> Self {
        Self::with_points(
            config,
            EvaluationPoints::<M>::auto(config.partitions, config.colluding, config.workers),
        )
    }

    /// Creates a decoder on explicitly chosen evaluation points (must match
    /// the encoder's).
    ///
    /// # Panics
    /// Panics if the point counts disagree with the configuration.
    pub fn with_points(config: SchemeConfig, points: EvaluationPoints<M>) -> Self {
        assert_eq!(
            points.beta().len(),
            config.partitions + config.colluding,
            "need one β-point per data block and pad"
        );
        assert_eq!(
            points.alpha().len(),
            config.workers,
            "need one α-point per worker"
        );
        // The full-coset inverse NTT needs an evaluation at *every* coset
        // point, so the fast path only exists when the worker count fills the
        // covering subgroup exactly (N a power of two).
        let ntt = points
            .ntt_layout()
            .filter(|layout| layout.workers() == config.workers)
            .map(|layout| DecoderNtt {
                interpolate: NttPlan::new(layout.log_workers),
                evaluate: NttPlan::new(layout.log_blocks),
            });
        LagrangeDecoder {
            config,
            points,
            ntt,
        }
    }

    /// `true` iff this decoder can take the full-coset `O(N log N)` NTT path
    /// (subgroup points and `N` filling the covering subgroup); it still
    /// falls back to Lagrange interpolation when results are missing.
    pub fn supports_ntt(&self) -> bool {
        self.ntt.is_some()
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The recovery threshold `(K+T−1)·deg f + 1`.
    pub fn recovery_threshold(&self) -> usize {
        self.config.recovery_threshold()
    }

    /// Erasure decoding from verified results.
    ///
    /// `results` maps worker indices to their returned vectors `Ỹ_i`; at least
    /// the recovery threshold of them must be present. Returns the `K` output
    /// blocks `Y_1, …, Y_K` (each the same length as the worker vectors).
    pub fn decode_erasure(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
    ) -> Result<Vec<Vec<Fp<M>>>, DecodeError> {
        let threshold = self.recovery_threshold();
        self.validate(results, threshold)?;
        // Full-coset NTT fast path: every worker responded (validate has
        // already established distinctness, so `N` results = all of them),
        // the points are in subgroup position and `N` fills the covering
        // subgroup. Missing workers fall through to Lagrange interpolation.
        if self.ntt.is_some() && results.len() == self.config.workers {
            return Ok(self.decode_erasure_ntt(results));
        }
        // Use exactly `threshold` results (the fastest ones the caller chose).
        let selected = &results[..threshold];
        let alphas: Vec<Fp<M>> = selected
            .iter()
            .map(|(worker, _)| self.points.alpha()[*worker])
            .collect();
        let width = selected[0].1.len();

        // One basis construction (with its batch-inverted barycentric
        // weights) is shared by all K β-point evaluations below.
        let basis = LagrangeBasis::new(alphas);

        // Systematic fast path per block: a selected worker sitting exactly
        // on β_k already holds the output. Every *other* β-point goes
        // through one shared `evaluate_at_many` call, so the whole fallback
        // performs a single batch inversion (one Montgomery-routed chain of
        // `3·threshold` multiplies per block) instead of one per block.
        let systematic: Vec<Option<&Vec<Fp<M>>>> = (0..self.config.partitions)
            .map(|k| {
                let beta = self.points.beta()[k];
                selected
                    .iter()
                    .find(|(worker, _)| self.points.alpha()[*worker] == beta)
                    .map(|(_, vector)| vector)
            })
            .collect();
        let interpolated_betas: Vec<Fp<M>> = systematic
            .iter()
            .enumerate()
            .filter(|(_, hit)| hit.is_none())
            .map(|(k, _)| self.points.beta()[k])
            .collect();
        let mut basis_rows = basis.evaluate_at_many(&interpolated_betas).into_iter();

        let mut outputs = Vec::with_capacity(self.config.partitions);
        for hit in systematic {
            if let Some(vector) = hit {
                outputs.push(vector.clone());
                continue;
            }
            let coefficients = basis_rows
                .next()
                .expect("one basis row per interpolated β-point");
            // One lazy-reduction pass over the selected workers: the u128
            // lanes absorb one product per worker and reduce once at the end.
            let mut block = avcc_field::WideAccumulator::<M>::new(width);
            for ((_, vector), &coefficient) in selected.iter().zip(coefficients.iter()) {
                if coefficient == Fp::<M>::ZERO {
                    continue;
                }
                block.axpy(coefficient, vector);
            }
            outputs.push(block.finish());
        }
        Ok(outputs)
    }

    /// The `O(N log N)`-per-coordinate fast path: interpolate `P = f(u)` from
    /// the full α-coset with one inverse NTT, fold the coefficients modulo
    /// `z^B − 1` (exact, because every β-point satisfies `z^B = 1`) and
    /// evaluate at all β-points with one forward NTT over the subgroup.
    fn decode_erasure_ntt(&self, results: &[(usize, Vec<Fp<M>>)]) -> Vec<Vec<Fp<M>>> {
        let ntt = self.ntt.as_ref().expect("caller checked the fast path");
        let layout = self
            .points
            .ntt_layout()
            .expect("NTT plans imply a subgroup layout");
        let width = results[0].1.len();
        // Scatter results into coset order: worker i sits at α_i = g·ω_A^i.
        let mut lanes: Vec<Vec<Fp<M>>> = vec![Vec::new(); self.config.workers];
        for (worker, vector) in results {
            lanes[*worker] = vector.clone();
        }
        // Coefficients of P in the coset basis: INTT gives p_k·g^k, undone by
        // scaling with g^{-1} powers.
        ntt.interpolate.inverse_vectors(&mut lanes);
        ntt.interpolate
            .coset_scale_vectors(&mut lanes, layout.shift.inverse());
        // Fold modulo z^B − 1: coefficient m contributes to residue m mod B.
        let blocks = ntt.evaluate.len();
        let mut folded: Vec<Vec<Fp<M>>> = lanes.drain(..blocks).collect();
        for (m, lane) in lanes.into_iter().enumerate() {
            let target = &mut folded[m % blocks];
            debug_assert_eq!(lane.len(), width);
            for (slot, value) in target.iter_mut().zip(lane) {
                *slot += value;
            }
        }
        ntt.evaluate.forward_vectors(&mut folded);
        folded.truncate(self.config.partitions);
        folded
    }

    /// Error-correcting decoding: tolerates up to `max_errors` arbitrarily
    /// corrupted results among `results`. Returns the `K` output blocks and
    /// the worker indices identified as corrupted.
    pub fn decode_with_errors<R: Rng + ?Sized>(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        max_errors: usize,
        rng: &mut R,
    ) -> Result<DecodedWithErrors<M>, DecodeError> {
        let threshold = self.recovery_threshold();
        let required = threshold + 2 * max_errors;
        self.validate(results, required)?;
        let width = results[0].1.len();
        let alphas: Vec<Fp<M>> = results
            .iter()
            .map(|(worker, _)| self.points.alpha()[*worker])
            .collect();

        // Fingerprint pass: collapse each worker vector to a single field
        // element with a shared random combination vector. Correct workers'
        // fingerprints are evaluations of a degree-(threshold-1) polynomial.
        let combination: Vec<Fp<M>> = random_vector(rng, width);
        let fingerprints: Vec<Fp<M>> = results
            .iter()
            .map(|(_, vector)| dot(vector, &combination))
            .collect();
        let decoder = BerlekampWelch::new(alphas.clone(), threshold);
        let located = match decoder.decode(&fingerprints, max_errors) {
            Ok(decoded) => decoded.error_positions,
            Err(RsDecodeError::TooManyErrors) => return Err(DecodeError::TooManyErrors),
            Err(RsDecodeError::NotEnoughEvaluations { provided, required }) => {
                return Err(DecodeError::NotEnoughResults { provided, required })
            }
            Err(RsDecodeError::LengthMismatch { .. }) => return Err(DecodeError::ShapeMismatch),
        };

        // Erasure-decode from the workers that were not located as corrupted.
        let clean: Vec<(usize, Vec<Fp<M>>)> = results
            .iter()
            .enumerate()
            .filter(|(position, _)| !located.contains(position))
            .map(|(_, entry)| entry.clone())
            .collect();
        if clean.len() < threshold {
            return Err(DecodeError::TooManyErrors);
        }
        let outputs = self.decode_erasure(&clean)?;
        let corrupted_workers: Vec<usize> = located
            .iter()
            .map(|&position| results[position].0)
            .collect();
        Ok((outputs, corrupted_workers))
    }

    fn validate(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        required: usize,
    ) -> Result<(), DecodeError> {
        if results.len() < required {
            return Err(DecodeError::NotEnoughResults {
                provided: results.len(),
                required,
            });
        }
        let mut seen = vec![false; self.config.workers];
        let width = results[0].1.len();
        for (worker, vector) in results {
            if *worker >= self.config.workers {
                return Err(DecodeError::UnknownWorker { worker: *worker });
            }
            if seen[*worker] {
                return Err(DecodeError::DuplicateWorker { worker: *worker });
            }
            seen[*worker] = true;
            if vector.len() != width {
                return Err(DecodeError::ShapeMismatch);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::LagrangeEncoder;
    use avcc_field::{PrimeField, F25, P25};
    use avcc_linalg::{mat_vec, Matrix};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a full encode → worker-compute → decode round for a linear map
    /// (matrix–vector product), returning the expected per-block outputs and
    /// the worker results.
    type LinearRound = (Vec<Vec<F25>>, Vec<(usize, Vec<F25>)>, LagrangeDecoder<P25>);

    fn linear_round(config: SchemeConfig, seed: u64) -> LinearRound {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = 4;
        let cols = 6;
        let blocks: Vec<Matrix<F25>> = (0..config.partitions)
            .map(|_| Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols)))
            .collect();
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, cols);
        let encoder = LagrangeEncoder::<P25>::new(config);
        let shares = if config.colluding == 0 {
            encoder.encode_deterministic(&blocks)
        } else {
            encoder.encode(&blocks, &mut rng)
        };
        let expected: Vec<Vec<F25>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();
        let results: Vec<(usize, Vec<F25>)> = shares
            .iter()
            .map(|share| (share.worker, mat_vec(&share.block, &w)))
            .collect();
        (expected, results, LagrangeDecoder::<P25>::new(config))
    }

    #[test]
    fn erasure_decoding_from_all_workers() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 1);
        let outputs = decoder.decode_erasure(&results).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_from_any_threshold_subset() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 2);
        // Drop the first three workers (as if they straggled).
        let subset = results[3..].to_vec();
        let outputs = decoder.decode_erasure(&subset).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_with_privacy_pads() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 3);
        // Threshold is (3+2-1)*1+1 = 5.
        assert_eq!(decoder.recovery_threshold(), 5);
        let subset = results[2..7].to_vec();
        let outputs = decoder.decode_erasure(&subset).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn erasure_decoding_requires_threshold_results() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 4);
        let subset = results[..8].to_vec();
        assert_eq!(
            decoder.decode_erasure(&subset),
            Err(DecodeError::NotEnoughResults {
                provided: 8,
                required: 9
            })
        );
    }

    #[test]
    fn duplicate_and_unknown_workers_are_rejected() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 5);
        let mut duplicated = results.clone();
        duplicated[1] = duplicated[0].clone();
        assert_eq!(
            decoder.decode_erasure(&duplicated),
            Err(DecodeError::DuplicateWorker { worker: 0 })
        );
        let mut unknown = results.clone();
        unknown[0].0 = 99;
        assert_eq!(
            decoder.decode_erasure(&unknown),
            Err(DecodeError::UnknownWorker { worker: 99 })
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let (_, mut results, decoder) = linear_round(config, 6);
        results[2].1.pop();
        assert_eq!(
            decoder.decode_erasure(&results),
            Err(DecodeError::ShapeMismatch)
        );
    }

    #[test]
    fn error_correcting_decode_locates_byzantine_workers() {
        // LCC-style: (N=12, K=9, S=1, M=1) needs 9 + 1 + 2 = 12 workers.
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 7);
        // Corrupt worker 4's vector (constant attack).
        for value in results[4].1.iter_mut() {
            *value = F25::from_u64(3);
        }
        // Drop one straggler (worker 11), leaving N - S = 11 results.
        results.truncate(11);
        let mut rng = StdRng::seed_from_u64(70);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        assert_eq!(corrupted, vec![4]);
    }

    #[test]
    fn error_correcting_decode_with_two_errors() {
        let config = SchemeConfig::linear(14, 9, 1, 2).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 8);
        for value in results[0].1.iter_mut() {
            *value = -*value; // reverse-value attack
        }
        for value in results[7].1.iter_mut() {
            *value += F25::from_u64(1234);
        }
        let mut rng = StdRng::seed_from_u64(80);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 2, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        let mut corrupted_sorted = corrupted;
        corrupted_sorted.sort_unstable();
        assert_eq!(corrupted_sorted, vec![0, 7]);
    }

    #[test]
    fn error_correcting_decode_needs_two_extra_per_error() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (_, results, decoder) = linear_round(config, 9);
        // Only 10 results available but 9 + 2*1 = 11 required.
        let subset = results[..10].to_vec();
        let mut rng = StdRng::seed_from_u64(90);
        assert_eq!(
            decoder.decode_with_errors(&subset, 1, &mut rng),
            Err(DecodeError::NotEnoughResults {
                provided: 10,
                required: 11
            })
        );
    }

    #[test]
    fn error_correcting_decode_reports_overload() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, mut results, decoder) = linear_round(config, 10);
        // Corrupt three workers but only budget one error: the decoder must
        // either refuse or at least fail to reproduce the clean outputs (the
        // attack exceeds the code's correction capability by design).
        for index in [1, 5, 9] {
            for value in results[index].1.iter_mut() {
                *value = F25::from_u64(7);
            }
        }
        let mut rng = StdRng::seed_from_u64(100);
        match decoder.decode_with_errors(&results, 1, &mut rng) {
            Err(DecodeError::TooManyErrors) => {}
            Ok((outputs, _)) => assert_ne!(outputs, expected),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn clean_results_report_no_corruption() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let (expected, results, decoder) = linear_round(config, 11);
        let mut rng = StdRng::seed_from_u64(110);
        let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
        assert_eq!(outputs, expected);
        assert!(corrupted.is_empty());
    }

    mod ntt_path {
        use super::*;
        use avcc_field::{F64, P64};

        type NttRound = (Vec<Vec<F64>>, Vec<(usize, Vec<F64>)>, LagrangeDecoder<P64>);

        /// A full encode → linear-compute round on the Goldilocks field with
        /// `N = 16` workers (filling the covering subgroup) and `K = 8`.
        fn ntt_round(config: SchemeConfig, seed: u64) -> NttRound {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = 4;
            let cols = 6;
            let blocks: Vec<Matrix<F64>> = (0..config.partitions)
                .map(|_| {
                    Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
                })
                .collect();
            let w: Vec<F64> = avcc_field::random_vector(&mut rng, cols);
            let encoder = LagrangeEncoder::<P64>::new(config);
            assert!(encoder.uses_ntt());
            let shares = if config.colluding == 0 {
                encoder.encode_deterministic(&blocks)
            } else {
                encoder.encode(&blocks, &mut rng)
            };
            let expected: Vec<Vec<F64>> = blocks.iter().map(|b| mat_vec(b, &w)).collect();
            let results: Vec<(usize, Vec<F64>)> = shares
                .iter()
                .map(|share| (share.worker, mat_vec(&share.block, &w)))
                .collect();
            (expected, results, LagrangeDecoder::<P64>::new(config))
        }

        #[test]
        fn full_coset_results_decode_through_the_ntt() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 21);
            assert!(decoder.supports_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn missing_workers_fall_back_to_lagrange_and_agree() {
            let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
            let (expected, results, decoder) = ntt_round(config, 22);
            // Dropping any straggler forces the Lagrange path; both paths
            // must produce the same outputs.
            let full = decoder.decode_erasure(&results).unwrap();
            let subset = results[3..].to_vec();
            let partial = decoder.decode_erasure(&subset).unwrap();
            assert_eq!(full, expected);
            assert_eq!(partial, expected);
        }

        #[test]
        fn non_power_of_two_worker_counts_use_lagrange_only() {
            // N = 12 < 16 never fills the coset: supports_ntt is false but
            // decoding stays correct.
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            let (expected, results, decoder) = ntt_round(config, 23);
            assert!(!decoder.supports_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn private_ntt_round_trips_with_full_coset() {
            // K + T = 8, N = 16: threshold (8−1)·1+1 = 8 ≤ 16.
            let config = SchemeConfig::new(16, 6, 2, 2, 2, 1).unwrap();
            let (expected, results, decoder) = ntt_round(config, 24);
            assert!(decoder.supports_ntt());
            let outputs = decoder.decode_erasure(&results).unwrap();
            assert_eq!(outputs, expected);
        }

        #[test]
        fn error_correcting_decode_works_on_subgroup_points() {
            // LCC-style on F64: locate the corruption via Berlekamp–Welch,
            // then erasure-decode the clean subset (Lagrange fallback, since
            // the evicted worker breaks full-coset coverage).
            let config = SchemeConfig::linear(16, 8, 2, 2).unwrap();
            let (expected, mut results, decoder) = ntt_round(config, 25);
            for value in results[5].1.iter_mut() {
                *value = -*value;
            }
            let mut rng = StdRng::seed_from_u64(250);
            let (outputs, corrupted) = decoder.decode_with_errors(&results, 2, &mut rng).unwrap();
            assert_eq!(outputs, expected);
            assert_eq!(corrupted, vec![5]);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn prop_ntt_and_lagrange_paths_agree(seed in any::<u64>(), drop_count in 0usize..8) {
                let config = SchemeConfig::linear(16, 8, 4, 2).unwrap();
                let (expected, results, decoder) = ntt_round(config, seed);
                let outputs = decoder
                    .decode_erasure(&results[drop_count..])
                    .unwrap();
                prop_assert_eq!(outputs, expected);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_any_threshold_subset_decodes(seed in any::<u64>(), drop_count in 0usize..3) {
            let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
            let (expected, results, decoder) = linear_round(config, seed);
            let subset = results[drop_count..].to_vec();
            let outputs = decoder.decode_erasure(&subset).unwrap();
            prop_assert_eq!(outputs, expected);
        }

        #[test]
        fn prop_single_corruption_is_always_located(seed in any::<u64>(), victim in 0usize..12) {
            let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
            let (expected, mut results, decoder) = linear_round(config, seed);
            for value in results[victim].1.iter_mut() {
                *value += F25::from_u64(999);
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let (outputs, corrupted) = decoder.decode_with_errors(&results, 1, &mut rng).unwrap();
            prop_assert_eq!(outputs, expected);
            prop_assert_eq!(corrupted, vec![victim]);
        }
    }
}
