//! Coding-scheme configuration and the worker-count feasibility rules.
//!
//! A [`SchemeConfig`] is the tuple `(N, K, S, M, T, deg f)` from §III of the
//! paper. The two bounds it enforces are the heart of the AVCC-vs-LCC
//! comparison:
//!
//! * **LCC (eq. 1)**: `N ≥ (K + T − 1)·deg f + S + 2M + 1` — a Byzantine
//!   worker costs two extra workers because Reed–Solomon error correction
//!   needs two redundant evaluations per error.
//! * **AVCC (eq. 2)**: `N ≥ (K + T − 1)·deg f + S + M + 1` — a Byzantine
//!   worker costs one extra worker because its (verified-and-rejected) result
//!   is simply treated as an erasure.

use serde::{Deserialize, Serialize};

/// Errors raised when a configuration is infeasible or inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// The worker count is too small for the requested tolerances.
    Infeasible {
        /// Workers available.
        available: usize,
        /// Workers required by the bound.
        required: usize,
        /// Which bound was violated ("LCC" or "AVCC").
        bound: &'static str,
    },
    /// A structural inconsistency (e.g. `K = 0`).
    Invalid {
        /// Human-readable description.
        details: String,
    },
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::Infeasible {
                available,
                required,
                bound,
            } => write!(
                f,
                "infeasible {bound} configuration: {available} workers available, {required} required"
            ),
            SchemeError::Invalid { details } => write!(f, "invalid configuration: {details}"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// The coding-scheme parameters `(N, K, S, M, T, deg f)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeConfig {
    /// Number of worker nodes `N`.
    pub workers: usize,
    /// Number of data partitions `K`.
    pub partitions: usize,
    /// Number of stragglers to tolerate, `S`.
    pub stragglers: usize,
    /// Number of Byzantine workers to tolerate, `M`.
    pub byzantine: usize,
    /// Number of colluding workers to protect against, `T`.
    pub colluding: usize,
    /// Degree of the computation polynomial `f` (1 for the linear
    /// matrix–vector rounds of logistic regression).
    pub degree: usize,
}

impl SchemeConfig {
    /// Creates a configuration, validating only structural sanity (positive
    /// `K`, positive degree, `N ≥ K`). Feasibility for a particular scheme is
    /// checked by [`SchemeConfig::require_lcc_feasible`] /
    /// [`SchemeConfig::require_avcc_feasible`].
    pub fn new(
        workers: usize,
        partitions: usize,
        stragglers: usize,
        byzantine: usize,
        colluding: usize,
        degree: usize,
    ) -> Result<Self, SchemeError> {
        if partitions == 0 {
            return Err(SchemeError::Invalid {
                details: "the number of partitions K must be positive".to_string(),
            });
        }
        if degree == 0 {
            return Err(SchemeError::Invalid {
                details: "the polynomial degree must be positive".to_string(),
            });
        }
        if workers < partitions {
            return Err(SchemeError::Invalid {
                details: format!("N = {workers} workers cannot hold K = {partitions} partitions"),
            });
        }
        Ok(SchemeConfig {
            workers,
            partitions,
            stragglers,
            byzantine,
            colluding,
            degree,
        })
    }

    /// Convenience constructor for the paper's linear, non-private setting
    /// (`T = 0`, `deg f = 1`): the `(N, K, S, M)` configuration used in §V.
    pub fn linear(
        workers: usize,
        partitions: usize,
        stragglers: usize,
        byzantine: usize,
    ) -> Result<Self, SchemeError> {
        Self::new(workers, partitions, stragglers, byzantine, 0, 1)
    }

    /// The recovery threshold shared by both schemes: the number of *correct*
    /// evaluations needed to interpolate `f(u(z))`, namely
    /// `(K + T − 1)·deg f + 1`.
    pub fn recovery_threshold(&self) -> usize {
        (self.partitions + self.colluding - 1) * self.degree + 1
    }

    /// Workers required by the LCC bound (eq. 1).
    pub fn lcc_required_workers(&self) -> usize {
        self.recovery_threshold() + self.stragglers + 2 * self.byzantine
    }

    /// Workers required by the AVCC bound (eq. 2).
    pub fn avcc_required_workers(&self) -> usize {
        self.recovery_threshold() + self.stragglers + self.byzantine
    }

    /// `true` iff the configuration satisfies the LCC bound.
    pub fn lcc_feasible(&self) -> bool {
        self.workers >= self.lcc_required_workers()
    }

    /// `true` iff the configuration satisfies the AVCC bound.
    pub fn avcc_feasible(&self) -> bool {
        self.workers >= self.avcc_required_workers()
    }

    /// Errors unless the LCC bound holds.
    pub fn require_lcc_feasible(&self) -> Result<(), SchemeError> {
        if self.lcc_feasible() {
            Ok(())
        } else {
            Err(SchemeError::Infeasible {
                available: self.workers,
                required: self.lcc_required_workers(),
                bound: "LCC",
            })
        }
    }

    /// Errors unless the AVCC bound holds.
    pub fn require_avcc_feasible(&self) -> Result<(), SchemeError> {
        if self.avcc_feasible() {
            Ok(())
        } else {
            Err(SchemeError::Infeasible {
                available: self.workers,
                required: self.avcc_required_workers(),
                bound: "AVCC",
            })
        }
    }

    /// The number of results the LCC master waits for before it can decode:
    /// `N − S` (it cannot start earlier because Byzantine workers are only
    /// identified during Reed–Solomon decoding).
    pub fn lcc_wait_count(&self) -> usize {
        self.workers - self.stragglers
    }

    /// The slack parameter `A_t` of the dynamic-coding controller (eq. 16/18):
    /// how many additional stragglers can be absorbed given the *observed*
    /// straggler and Byzantine counts of the current iteration.
    pub fn slack(&self, observed_stragglers: usize, observed_byzantine: usize) -> i64 {
        self.workers as i64
            - observed_byzantine as i64
            - observed_stragglers as i64
            - self.recovery_threshold() as i64
    }
}

impl std::fmt::Display for SchemeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(N={}, K={}, S={}, M={}, T={}, deg={})",
            self.workers,
            self.partitions,
            self.stragglers,
            self.byzantine,
            self.colluding,
            self.degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_configuration_bounds() {
        // The paper's testbed: N = 12, K = 9.
        // LCC is designed for (S = 1, M = 1): 9 + 1 + 2 = 12 workers needed.
        let lcc = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        assert_eq!(lcc.lcc_required_workers(), 12);
        assert!(lcc.lcc_feasible());

        // AVCC can afford (S = 1, M = 2) or (S = 2, M = 1) with the same 12.
        let avcc_a = SchemeConfig::linear(12, 9, 1, 2).unwrap();
        assert_eq!(avcc_a.avcc_required_workers(), 12);
        assert!(avcc_a.avcc_feasible());
        assert!(!avcc_a.lcc_feasible());

        let avcc_b = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        assert!(avcc_b.avcc_feasible());
        assert!(!avcc_b.lcc_feasible());
    }

    #[test]
    fn byzantine_costs_twice_in_lcc_only() {
        let base = SchemeConfig::linear(20, 9, 1, 0).unwrap();
        let with_byzantine = SchemeConfig::linear(20, 9, 1, 2).unwrap();
        assert_eq!(
            with_byzantine.lcc_required_workers() - base.lcc_required_workers(),
            4
        );
        assert_eq!(
            with_byzantine.avcc_required_workers() - base.avcc_required_workers(),
            2
        );
    }

    #[test]
    fn recovery_threshold_matches_formula() {
        let config = SchemeConfig::new(30, 4, 2, 1, 3, 2).unwrap();
        assert_eq!(config.recovery_threshold(), (4 + 3 - 1) * 2 + 1);
    }

    #[test]
    fn linear_case_recovery_threshold_is_k() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        assert_eq!(config.recovery_threshold(), 9);
    }

    #[test]
    fn lcc_wait_count_is_n_minus_s() {
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        assert_eq!(config.lcc_wait_count(), 11);
    }

    #[test]
    fn infeasible_configurations_error_with_context() {
        let config = SchemeConfig::linear(10, 9, 1, 1).unwrap();
        let err = config.require_lcc_feasible().unwrap_err();
        assert!(matches!(err, SchemeError::Infeasible { bound: "LCC", .. }));
        assert!(err.to_string().contains("required"));
        // AVCC fits in 11 workers but not 10.
        assert!(config.require_avcc_feasible().is_err());
        let config = SchemeConfig::linear(11, 9, 1, 1).unwrap();
        assert!(config.require_avcc_feasible().is_ok());
    }

    #[test]
    fn invalid_structural_parameters_are_rejected() {
        assert!(SchemeConfig::linear(4, 0, 0, 0).is_err());
        assert!(SchemeConfig::new(4, 2, 0, 0, 0, 0).is_err());
        assert!(SchemeConfig::linear(3, 5, 0, 0).is_err());
    }

    #[test]
    fn slack_matches_eq_16() {
        // N=12, K=9, observed S_t=2, M_t=1, T=0: A_t = 12-1-2-9 = 0.
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        assert_eq!(config.slack(2, 1), 0);
        // Three stragglers and one Byzantine: A_t = 12-1-3-9 = -1.
        assert_eq!(config.slack(3, 1), -1);
    }

    #[test]
    fn display_is_informative() {
        let config = SchemeConfig::linear(12, 9, 1, 2).unwrap();
        let rendered = format!("{config}");
        assert!(rendered.contains("N=12"));
        assert!(rendered.contains("M=2"));
    }

    proptest! {
        #[test]
        fn prop_avcc_never_needs_more_workers_than_lcc(
            partitions in 1usize..20,
            stragglers in 0usize..5,
            byzantine in 0usize..5,
            colluding in 0usize..4,
            degree in 1usize..3,
        ) {
            let workers = (partitions + colluding) * degree + stragglers + 2 * byzantine + 2;
            let config = SchemeConfig::new(
                workers, partitions, stragglers, byzantine, colluding, degree,
            ).unwrap();
            prop_assert!(config.avcc_required_workers() <= config.lcc_required_workers());
            // The gap is exactly M (eq. 1 minus eq. 2).
            prop_assert_eq!(
                config.lcc_required_workers() - config.avcc_required_workers(),
                byzantine
            );
        }
    }
}
