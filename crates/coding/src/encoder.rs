//! The Lagrange / MDS encoder (paper §IV-B, step 1).
//!
//! Given the partitioned dataset `X = (X_1, …, X_K)` and `T` uniformly random
//! pad blocks `W_{K+1}, …, W_{K+T}`, the encoder forms the polynomial
//!
//! ```text
//! u(z) = Σ_{j≤K} X_j ℓ_j(z) + Σ_{K<j≤K+T} W_j ℓ_j(z)
//! ```
//!
//! and hands worker `i` the evaluation `X̃_i = u(α_i)`. Because `ℓ_j(α_i)` is
//! a scalar, each coded block is simply a linear combination of the data and
//! pad blocks; the matrix of those scalars (the *encoding matrix* `U`, with
//! `U_{j,i} = ℓ_j(α_i)`) is exposed for the privacy analysis and the
//! verification-key generation.

use avcc_field::{random_matrix, Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_poly::LagrangeBasis;
use rand::Rng;

use crate::points::EvaluationPoints;
use crate::scheme::SchemeConfig;

/// A coded data block assigned to one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedShare<M: PrimeModulus> {
    /// The worker index `i ∈ [N]` this share belongs to.
    pub worker: usize,
    /// The evaluation point `α_i` of this worker.
    pub alpha: Fp<M>,
    /// The coded block `X̃_i = u(α_i)`, same shape as a data block.
    pub block: Matrix<Fp<M>>,
}

/// The Lagrange encoder bound to a scheme configuration and its evaluation
/// points.
#[derive(Debug, Clone)]
pub struct LagrangeEncoder<M: PrimeModulus> {
    config: SchemeConfig,
    points: EvaluationPoints<M>,
    /// `encoding_matrix[j][i] = ℓ_j(α_i)` for `j ∈ [K+T]`, `i ∈ [N]`.
    encoding_matrix: Vec<Vec<Fp<M>>>,
}

impl<M: PrimeModulus> LagrangeEncoder<M> {
    /// Builds the encoder: selects evaluation points and precomputes the
    /// encoding matrix.
    pub fn new(config: SchemeConfig) -> Self {
        let points =
            EvaluationPoints::<M>::standard(config.partitions, config.colluding, config.workers);
        let basis = LagrangeBasis::new(points.beta().to_vec());
        // Column i of the encoding matrix is the basis evaluated at α_i.
        let mut encoding_matrix =
            vec![vec![Fp::<M>::ZERO; config.workers]; config.partitions + config.colluding];
        for (i, &alpha) in points.alpha().iter().enumerate() {
            let column = basis.evaluate_at(alpha);
            for (j, value) in column.into_iter().enumerate() {
                encoding_matrix[j][i] = value;
            }
        }
        LagrangeEncoder {
            config,
            points,
            encoding_matrix,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The evaluation points.
    pub fn points(&self) -> &EvaluationPoints<M> {
        &self.points
    }

    /// The `(K+T) × N` encoding matrix `U` with `U_{j,i} = ℓ_j(α_i)`.
    pub fn encoding_matrix(&self) -> &[Vec<Fp<M>>] {
        &self.encoding_matrix
    }

    /// Encodes the `K` data blocks into `N` coded shares, drawing the `T`
    /// privacy pads uniformly at random from `rng`.
    ///
    /// # Panics
    /// Panics if the number of blocks differs from `K` or the blocks disagree
    /// in shape.
    pub fn encode<R: Rng + ?Sized>(
        &self,
        blocks: &[Matrix<Fp<M>>],
        rng: &mut R,
    ) -> Vec<EncodedShare<M>> {
        assert_eq!(
            blocks.len(),
            self.config.partitions,
            "expected {} data blocks, got {}",
            self.config.partitions,
            blocks.len()
        );
        let rows = blocks[0].rows();
        let cols = blocks[0].cols();
        for block in blocks {
            assert_eq!(
                (block.rows(), block.cols()),
                (rows, cols),
                "all data blocks must have the same shape"
            );
        }
        // Draw the T privacy pads.
        let pads: Vec<Matrix<Fp<M>>> = (0..self.config.colluding)
            .map(|_| Matrix::from_vec(rows, cols, random_matrix(rng, rows, cols)))
            .collect();

        (0..self.config.workers)
            .map(|worker| {
                // Lazy reduction across all K+T blocks: the u128 lanes absorb
                // one product per block and reduce once per lane at the end
                // (see avcc_field::batch::WideAccumulator).
                let mut coded = avcc_field::WideAccumulator::<M>::new(rows * cols);
                for (j, block) in blocks.iter().chain(pads.iter()).enumerate() {
                    let coefficient = self.encoding_matrix[j][worker];
                    if coefficient == Fp::<M>::ZERO {
                        continue;
                    }
                    coded.axpy(coefficient, block.data());
                }
                EncodedShare {
                    worker,
                    alpha: self.points.alpha()[worker],
                    block: Matrix::from_vec(rows, cols, coded.finish()),
                }
            })
            .collect()
    }

    /// Encodes without privacy pads (valid only when `T = 0`); deterministic,
    /// used by tests and by the MDS convenience wrapper.
    pub fn encode_deterministic(&self, blocks: &[Matrix<Fp<M>>]) -> Vec<EncodedShare<M>> {
        assert_eq!(
            self.config.colluding, 0,
            "deterministic encoding requires T = 0 (no privacy pads)"
        );
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        self.encode(blocks, &mut rng)
    }

    /// The bottom `T × N` part of the encoding matrix (pad coefficients),
    /// used by the T-privacy check of Theorem 1.
    pub fn pad_submatrix(&self) -> Vec<Vec<Fp<M>>> {
        self.encoding_matrix[self.config.partitions..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_poly::{interpolate_eval, rank};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_blocks(k: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix<F25>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols)))
            .collect()
    }

    #[test]
    fn systematic_shares_equal_data_blocks() {
        // With T = 0 the code is systematic: worker i < K receives X_i itself.
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 4, 5, 1);
        let shares = encoder.encode_deterministic(&blocks);
        assert_eq!(shares.len(), 6);
        for (i, block) in blocks.iter().enumerate() {
            assert_eq!(&shares[i].block, block, "worker {i} should hold X_{i}");
        }
    }

    #[test]
    fn coded_share_is_polynomial_evaluation() {
        // Every coordinate of the coded blocks must lie on the degree-(K+T-1)
        // polynomial through the data/pad blocks: interpolating any K+T shares
        // at a β-point recovers the data block coordinate.
        let config = SchemeConfig::linear(7, 4, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(4, 2, 3, 2);
        let shares = encoder.encode_deterministic(&blocks);
        // Use shares 3..7 (any 4 = K shares suffice when T = 0).
        let subset: Vec<_> = shares[3..7].to_vec();
        let alphas: Vec<F25> = subset.iter().map(|s| s.alpha).collect();
        for (k, block) in blocks.iter().enumerate() {
            let beta = encoder.points().beta()[k];
            for coordinate in 0..block.len() {
                let values: Vec<F25> = subset.iter().map(|s| s.block.data()[coordinate]).collect();
                let recovered = interpolate_eval(&alphas, &values, beta);
                assert_eq!(recovered, block.data()[coordinate]);
            }
        }
    }

    #[test]
    fn linearity_commutes_with_encoding() {
        // f(X̃_i) for linear f equals the same linear combination of f(X_j):
        // encode-then-multiply equals multiply-then-encode.
        let config = SchemeConfig::linear(5, 3, 1, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 3, 4, 3);
        let shares = encoder.encode_deterministic(&blocks);
        let mut rng = StdRng::seed_from_u64(99);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 4);
        for share in &shares {
            let lhs = mat_vec(&share.block, &w);
            // Σ_j U[j][i] * (X_j w)
            let mut rhs = vec![F25::ZERO; 3];
            for (j, block) in blocks.iter().enumerate() {
                let coefficient = encoder.encoding_matrix()[j][share.worker];
                let term = mat_vec(block, &w);
                for (slot, value) in rhs.iter_mut().zip(term) {
                    *slot += coefficient * value;
                }
            }
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn private_encoding_pads_have_full_rank_submatrices() {
        // Lemma 2 of LCC (used by Theorem 1): every T×T submatrix of the
        // bottom T×N pad-coefficient matrix is invertible, which is what makes
        // the random mask uniform for any T colluding workers.
        let config = SchemeConfig::new(9, 3, 1, 1, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let pads = encoder.pad_submatrix();
        assert_eq!(pads.len(), 2);
        let n = config.workers;
        for a in 0..n {
            for b in (a + 1)..n {
                let submatrix = vec![pads[0][a], pads[0][b], pads[1][a], pads[1][b]];
                assert_eq!(rank(&submatrix, 2, 2), 2, "columns {a},{b} not invertible");
            }
        }
    }

    #[test]
    fn private_shares_differ_from_data_blocks() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 2, 2, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let shares = encoder.encode(&blocks, &mut rng);
        // No share should equal a raw data block (points are disjoint and the
        // pads are random).
        for share in &shares {
            for block in &blocks {
                assert_ne!(&share.block, block);
            }
        }
    }

    #[test]
    fn encoding_matrix_has_systematic_identity_part() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let matrix = encoder.encoding_matrix();
        for (j, row) in matrix.iter().enumerate().take(3) {
            for (i, &value) in row.iter().enumerate().take(3) {
                let expected = if i == j { F25::ONE } else { F25::ZERO };
                assert_eq!(value, expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 data blocks")]
    fn wrong_block_count_panics() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(2, 2, 2, 6);
        let _ = encoder.encode_deterministic(&blocks);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn mismatched_block_shapes_panic() {
        let config = SchemeConfig::linear(4, 2, 1, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = vec![Matrix::<F25>::zeros(2, 2), Matrix::<F25>::zeros(3, 2)];
        let _ = encoder.encode_deterministic(&blocks);
    }

    #[test]
    #[should_panic(expected = "requires T = 0")]
    fn deterministic_encoding_requires_no_privacy() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 2, 2, 7);
        let _ = encoder.encode_deterministic(&blocks);
    }
}
