//! The Lagrange / MDS encoder (paper §IV-B, step 1).
//!
//! Given the partitioned dataset `X = (X_1, …, X_K)` and `T` uniformly random
//! pad blocks `W_{K+1}, …, W_{K+T}`, the encoder forms the polynomial
//!
//! ```text
//! u(z) = Σ_{j≤K} X_j ℓ_j(z) + Σ_{K<j≤K+T} W_j ℓ_j(z)
//! ```
//!
//! and hands worker `i` the evaluation `X̃_i = u(α_i)`. Because `ℓ_j(α_i)` is
//! a scalar, each coded block is simply a linear combination of the data and
//! pad blocks; the matrix of those scalars (the *encoding matrix* `U`, with
//! `U_{j,i} = ℓ_j(α_i)`) is exposed for the privacy analysis and the
//! verification-key generation.
//!
//! # Encoding paths
//!
//! With the default ([`EvaluationPoints::standard`]) points every share is a
//! `(K+T)`-term linear combination — `O((K+T)·N)` multiply-reduces per
//! coordinate. When the points are in subgroup position
//! ([`EvaluationPoints::subgroup`], chosen automatically by
//! [`EvaluationPoints::auto`] on NTT-friendly fields) the encoder instead
//! interpolates `u` with one inverse NTT over the β-subgroup (size `K+T`) and
//! evaluates it at all worker points with one forward NTT over the α-coset
//! (size `next_pow2(N)`) — `O(N log N)` per coordinate, selected
//! automatically at construction. Both paths produce the evaluations of the
//! same degree-`< K+T` polynomial at the same points, so they are
//! interchangeable share-for-share.

use avcc_field::{random_matrix, Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_poly::{LagrangeBasis, NttPlan};
use rand::Rng;

use crate::points::EvaluationPoints;
use crate::scheme::SchemeConfig;

/// A coded data block assigned to one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedShare<M: PrimeModulus> {
    /// The worker index `i ∈ [N]` this share belongs to.
    pub worker: usize,
    /// The evaluation point `α_i` of this worker.
    pub alpha: Fp<M>,
    /// The coded block `X̃_i = u(α_i)`, same shape as a data block.
    pub block: Matrix<Fp<M>>,
}

/// The cached NTT plans of an encoder whose points are in subgroup position.
#[derive(Debug, Clone)]
struct EncoderNtt<M: PrimeModulus> {
    /// Inverse transform over the β-subgroup (size `K + T`): block values →
    /// coefficients of `u`.
    interpolate: NttPlan<M>,
    /// Forward transform over the α-coset subgroup (size `next_pow2(N)`):
    /// coefficients → evaluations at every worker point.
    evaluate: NttPlan<M>,
}

/// The Lagrange encoder bound to a scheme configuration and its evaluation
/// points.
#[derive(Debug, Clone)]
pub struct LagrangeEncoder<M: PrimeModulus> {
    config: SchemeConfig,
    points: EvaluationPoints<M>,
    /// `encoding_matrix[j][i] = ℓ_j(α_i)` for `j ∈ [K+T]`, `i ∈ [N]`,
    /// materialized on first use: the NTT fast path never evaluates it, and
    /// its `O((K+T)·N)` construction is exactly the cost that path avoids —
    /// only the matrix encode path and the analysis accessors
    /// ([`LagrangeEncoder::encoding_matrix`] / [`LagrangeEncoder::pad_submatrix`])
    /// force it.
    encoding_matrix: std::sync::OnceLock<Vec<Vec<Fp<M>>>>,
    /// Cached transforms for the NTT fast path (`None` → matrix path).
    ntt: Option<EncoderNtt<M>>,
}

impl<M: PrimeModulus> LagrangeEncoder<M> {
    /// Builds the encoder with automatically selected evaluation points
    /// ([`EvaluationPoints::auto`]: subgroup position on NTT-friendly fields
    /// when `K + T` is a power of two, the standard integer points otherwise)
    /// and precomputes the encoding matrix.
    pub fn new(config: SchemeConfig) -> Self {
        Self::with_points(
            config,
            EvaluationPoints::<M>::auto(config.partitions, config.colluding, config.workers),
        )
    }

    /// Builds the encoder on explicitly chosen evaluation points (the decoder
    /// must be built on the same points).
    ///
    /// # Panics
    /// Panics if the point counts disagree with the configuration.
    pub fn with_points(config: SchemeConfig, points: EvaluationPoints<M>) -> Self {
        assert_eq!(
            points.beta().len(),
            config.partitions + config.colluding,
            "need one β-point per data block and pad"
        );
        assert_eq!(
            points.alpha().len(),
            config.workers,
            "need one α-point per worker"
        );
        let ntt = points.ntt_layout().map(|layout| EncoderNtt {
            interpolate: NttPlan::new(layout.log_blocks),
            evaluate: NttPlan::new(layout.log_workers),
        });
        LagrangeEncoder {
            config,
            points,
            encoding_matrix: std::sync::OnceLock::new(),
            ntt,
        }
    }

    /// Builds the `(K+T) × N` matrix `U_{j,i} = ℓ_j(α_i)`.
    fn build_encoding_matrix(&self) -> Vec<Vec<Fp<M>>> {
        let basis = LagrangeBasis::new(self.points.beta().to_vec());
        // Column i of the encoding matrix is the basis evaluated at α_i; one
        // `evaluate_at_many` call shares a single batch inversion across all
        // N columns.
        let mut matrix = vec![
            vec![Fp::<M>::ZERO; self.config.workers];
            self.config.partitions + self.config.colluding
        ];
        let columns = basis.evaluate_at_many(self.points.alpha());
        for (i, column) in columns.into_iter().enumerate() {
            for (j, value) in column.into_iter().enumerate() {
                matrix[j][i] = value;
            }
        }
        matrix
    }

    /// `true` iff this encoder evaluates through the `O(N log N)` NTT path
    /// rather than the `O((K+T)·N)` encoding matrix.
    pub fn uses_ntt(&self) -> bool {
        self.ntt.is_some()
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The evaluation points.
    pub fn points(&self) -> &EvaluationPoints<M> {
        &self.points
    }

    /// The `(K+T) × N` encoding matrix `U` with `U_{j,i} = ℓ_j(α_i)`
    /// (materialized on first access).
    pub fn encoding_matrix(&self) -> &[Vec<Fp<M>>] {
        self.encoding_matrix
            .get_or_init(|| self.build_encoding_matrix())
    }

    /// Encodes the `K` data blocks into `N` coded shares, drawing the `T`
    /// privacy pads uniformly at random from `rng`.
    ///
    /// # Panics
    /// Panics if the number of blocks differs from `K` or the blocks disagree
    /// in shape.
    pub fn encode<R: Rng + ?Sized>(
        &self,
        blocks: &[Matrix<Fp<M>>],
        rng: &mut R,
    ) -> Vec<EncodedShare<M>> {
        assert_eq!(
            blocks.len(),
            self.config.partitions,
            "expected {} data blocks, got {}",
            self.config.partitions,
            blocks.len()
        );
        let rows = blocks[0].rows();
        let cols = blocks[0].cols();
        for block in blocks {
            assert_eq!(
                (block.rows(), block.cols()),
                (rows, cols),
                "all data blocks must have the same shape"
            );
        }
        // Draw the T privacy pads.
        let pads: Vec<Matrix<Fp<M>>> = (0..self.config.colluding)
            .map(|_| Matrix::from_vec(rows, cols, random_matrix(rng, rows, cols)))
            .collect();

        if self.ntt.is_some() {
            return self.encode_ntt(blocks, &pads, rows, cols);
        }

        let encoding_matrix = self.encoding_matrix();
        (0..self.config.workers)
            .map(|worker| {
                // Lazy reduction across all K+T blocks: the u128 lanes absorb
                // one product per block and reduce once per lane at the end
                // (see avcc_field::batch::WideAccumulator).
                let mut coded = avcc_field::WideAccumulator::<M>::new(rows * cols);
                for (j, block) in blocks.iter().chain(pads.iter()).enumerate() {
                    let coefficient = encoding_matrix[j][worker];
                    if coefficient == Fp::<M>::ZERO {
                        continue;
                    }
                    coded.axpy(coefficient, block.data());
                }
                EncodedShare {
                    worker,
                    alpha: self.points.alpha()[worker],
                    block: Matrix::from_vec(rows, cols, coded.finish()),
                }
            })
            .collect()
    }

    /// The `O(N log N)`-per-coordinate fast path for subgroup points.
    ///
    /// The `K + T` blocks are the values of `u` on the β-subgroup, so one
    /// inverse NTT yields the coefficients of `u` (degree `< K + T`, exactly
    /// as in the matrix path — the recovery threshold is unchanged). Scaling
    /// coefficient `k` by `g^k` and zero-padding to the coset size turns the
    /// forward NTT into the evaluation `u(g·ω_A^i)` at every worker point at
    /// once. All transforms run block-at-a-time over vector lanes, so every
    /// coordinate is carried through together with contiguous access.
    fn encode_ntt(
        &self,
        blocks: &[Matrix<Fp<M>>],
        pads: &[Matrix<Fp<M>>],
        rows: usize,
        cols: usize,
    ) -> Vec<EncodedShare<M>> {
        let ntt = self.ntt.as_ref().expect("caller checked the fast path");
        let layout = self
            .points
            .ntt_layout()
            .expect("NTT plans imply a subgroup layout");
        let mut lanes: Vec<Vec<Fp<M>>> = blocks
            .iter()
            .chain(pads.iter())
            .map(|block| block.data().to_vec())
            .collect();
        debug_assert_eq!(lanes.len(), ntt.interpolate.len());
        ntt.interpolate.inverse_vectors(&mut lanes);
        ntt.evaluate.coset_scale_vectors(&mut lanes, layout.shift);
        lanes.resize(ntt.evaluate.len(), vec![Fp::<M>::ZERO; rows * cols]);
        ntt.evaluate.forward_vectors(&mut lanes);
        lanes
            .into_iter()
            .take(self.config.workers)
            .enumerate()
            .map(|(worker, lane)| EncodedShare {
                worker,
                alpha: self.points.alpha()[worker],
                block: Matrix::from_vec(rows, cols, lane),
            })
            .collect()
    }

    /// Encodes without privacy pads (valid only when `T = 0`); deterministic,
    /// used by tests and by the MDS convenience wrapper.
    pub fn encode_deterministic(&self, blocks: &[Matrix<Fp<M>>]) -> Vec<EncodedShare<M>> {
        assert_eq!(
            self.config.colluding, 0,
            "deterministic encoding requires T = 0 (no privacy pads)"
        );
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        self.encode(blocks, &mut rng)
    }

    /// The bottom `T × N` part of the encoding matrix (pad coefficients),
    /// used by the T-privacy check of Theorem 1.
    pub fn pad_submatrix(&self) -> Vec<Vec<Fp<M>>> {
        self.encoding_matrix()[self.config.partitions..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_poly::{interpolate_eval, rank};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_blocks(k: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix<F25>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols)))
            .collect()
    }

    #[test]
    fn systematic_shares_equal_data_blocks() {
        // With T = 0 the code is systematic: worker i < K receives X_i itself.
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 4, 5, 1);
        let shares = encoder.encode_deterministic(&blocks);
        assert_eq!(shares.len(), 6);
        for (i, block) in blocks.iter().enumerate() {
            assert_eq!(&shares[i].block, block, "worker {i} should hold X_{i}");
        }
    }

    #[test]
    fn coded_share_is_polynomial_evaluation() {
        // Every coordinate of the coded blocks must lie on the degree-(K+T-1)
        // polynomial through the data/pad blocks: interpolating any K+T shares
        // at a β-point recovers the data block coordinate.
        let config = SchemeConfig::linear(7, 4, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(4, 2, 3, 2);
        let shares = encoder.encode_deterministic(&blocks);
        // Use shares 3..7 (any 4 = K shares suffice when T = 0).
        let subset: Vec<_> = shares[3..7].to_vec();
        let alphas: Vec<F25> = subset.iter().map(|s| s.alpha).collect();
        for (k, block) in blocks.iter().enumerate() {
            let beta = encoder.points().beta()[k];
            for coordinate in 0..block.len() {
                let values: Vec<F25> = subset.iter().map(|s| s.block.data()[coordinate]).collect();
                let recovered = interpolate_eval(&alphas, &values, beta);
                assert_eq!(recovered, block.data()[coordinate]);
            }
        }
    }

    #[test]
    fn linearity_commutes_with_encoding() {
        // f(X̃_i) for linear f equals the same linear combination of f(X_j):
        // encode-then-multiply equals multiply-then-encode.
        let config = SchemeConfig::linear(5, 3, 1, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 3, 4, 3);
        let shares = encoder.encode_deterministic(&blocks);
        let mut rng = StdRng::seed_from_u64(99);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 4);
        for share in &shares {
            let lhs = mat_vec(&share.block, &w);
            // Σ_j U[j][i] * (X_j w)
            let mut rhs = vec![F25::ZERO; 3];
            for (j, block) in blocks.iter().enumerate() {
                let coefficient = encoder.encoding_matrix()[j][share.worker];
                let term = mat_vec(block, &w);
                for (slot, value) in rhs.iter_mut().zip(term) {
                    *slot += coefficient * value;
                }
            }
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn private_encoding_pads_have_full_rank_submatrices() {
        // Lemma 2 of LCC (used by Theorem 1): every T×T submatrix of the
        // bottom T×N pad-coefficient matrix is invertible, which is what makes
        // the random mask uniform for any T colluding workers.
        let config = SchemeConfig::new(9, 3, 1, 1, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let pads = encoder.pad_submatrix();
        assert_eq!(pads.len(), 2);
        let n = config.workers;
        for a in 0..n {
            for b in (a + 1)..n {
                let submatrix = vec![pads[0][a], pads[0][b], pads[1][a], pads[1][b]];
                assert_eq!(rank(&submatrix, 2, 2), 2, "columns {a},{b} not invertible");
            }
        }
    }

    #[test]
    fn private_shares_differ_from_data_blocks() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 2, 2, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let shares = encoder.encode(&blocks, &mut rng);
        // No share should equal a raw data block (points are disjoint and the
        // pads are random).
        for share in &shares {
            for block in &blocks {
                assert_ne!(&share.block, block);
            }
        }
    }

    #[test]
    fn encoding_matrix_has_systematic_identity_part() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let matrix = encoder.encoding_matrix();
        for (j, row) in matrix.iter().enumerate().take(3) {
            for (i, &value) in row.iter().enumerate().take(3) {
                let expected = if i == j { F25::ONE } else { F25::ZERO };
                assert_eq!(value, expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 data blocks")]
    fn wrong_block_count_panics() {
        let config = SchemeConfig::linear(6, 3, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(2, 2, 2, 6);
        let _ = encoder.encode_deterministic(&blocks);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn mismatched_block_shapes_panic() {
        let config = SchemeConfig::linear(4, 2, 1, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = vec![Matrix::<F25>::zeros(2, 2), Matrix::<F25>::zeros(3, 2)];
        let _ = encoder.encode_deterministic(&blocks);
    }

    #[test]
    #[should_panic(expected = "requires T = 0")]
    fn deterministic_encoding_requires_no_privacy() {
        let config = SchemeConfig::new(8, 3, 1, 0, 2, 1).unwrap();
        let encoder = LagrangeEncoder::<P25>::new(config);
        let blocks = data_blocks(3, 2, 2, 7);
        let _ = encoder.encode_deterministic(&blocks);
    }

    mod ntt_path {
        use super::*;
        use crate::points::EvaluationPoints;
        use avcc_field::{F64, P64};

        fn f64_blocks(k: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix<F64>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..k)
                .map(|_| {
                    Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
                })
                .collect()
        }

        #[test]
        fn path_selection_follows_the_geometry() {
            // Power-of-two K on the Goldilocks field: NTT.
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            assert!(LagrangeEncoder::<P64>::new(config).uses_ntt());
            // Non-power-of-two K: matrix fallback.
            let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
            assert!(!LagrangeEncoder::<P64>::new(config).uses_ntt());
            // Power-of-two K on a field without declared NTT metadata: matrix.
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            assert!(!LagrangeEncoder::<P25>::new(config).uses_ntt());
        }

        #[test]
        fn ntt_shares_match_the_encoding_matrix() {
            // The two paths must agree share-for-share: the constructor still
            // precomputes the (K+T)×N matrix, so recompute every share as the
            // explicit linear combination Σ_j U[j][i]·X_j and compare.
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            let encoder = LagrangeEncoder::<P64>::new(config);
            assert!(encoder.uses_ntt());
            let blocks = f64_blocks(8, 3, 4, 11);
            let shares = encoder.encode_deterministic(&blocks);
            assert_eq!(shares.len(), 12);
            for share in &shares {
                let mut expected = [F64::ZERO; 12];
                for (j, block) in blocks.iter().enumerate() {
                    let coefficient = encoder.encoding_matrix()[j][share.worker];
                    for (slot, &value) in expected.iter_mut().zip(block.data()) {
                        *slot += coefficient * value;
                    }
                }
                assert_eq!(share.block.data(), &expected[..], "worker {}", share.worker);
            }
        }

        #[test]
        fn ntt_shares_are_polynomial_evaluations_at_alpha() {
            // Interpolating any K shares back to a β-point recovers the block,
            // exactly as in the matrix path — degree < K is preserved.
            let config = SchemeConfig::linear(11, 8, 2, 1).unwrap();
            let encoder = LagrangeEncoder::<P64>::new(config);
            assert!(encoder.uses_ntt());
            let blocks = f64_blocks(8, 2, 3, 12);
            let shares = encoder.encode_deterministic(&blocks);
            let subset: Vec<_> = shares[3..11].to_vec();
            let alphas: Vec<F64> = subset.iter().map(|s| s.alpha).collect();
            for (k, block) in blocks.iter().enumerate() {
                let beta = encoder.points().beta()[k];
                for coordinate in 0..block.len() {
                    let values: Vec<F64> =
                        subset.iter().map(|s| s.block.data()[coordinate]).collect();
                    let recovered = interpolate_eval(&alphas, &values, beta);
                    assert_eq!(recovered, block.data()[coordinate]);
                }
            }
        }

        #[test]
        fn private_ntt_encoding_stays_ntt_and_disjoint() {
            // T = 2 pads with K + T = 8: still subgroup position, and privacy
            // demands disjoint points.
            let config = SchemeConfig::new(12, 6, 1, 1, 2, 1).unwrap();
            let encoder = LagrangeEncoder::<P64>::new(config);
            assert!(encoder.uses_ntt());
            assert!(encoder.points().disjoint());
            let blocks = f64_blocks(6, 2, 2, 13);
            let mut rng = StdRng::seed_from_u64(5);
            let shares = encoder.encode(&blocks, &mut rng);
            for share in &shares {
                for block in &blocks {
                    assert_ne!(&share.block, block);
                }
            }
        }

        #[test]
        fn explicit_standard_points_force_the_matrix_path_on_f64() {
            let config = SchemeConfig::linear(12, 8, 2, 1).unwrap();
            let points = EvaluationPoints::<P64>::standard(8, 0, 12);
            let encoder = LagrangeEncoder::<P64>::with_points(config, points);
            assert!(!encoder.uses_ntt());
            // Systematic: the standard layout's defining property survives.
            let blocks = f64_blocks(8, 2, 2, 14);
            let shares = encoder.encode_deterministic(&blocks);
            for (i, block) in blocks.iter().enumerate() {
                assert_eq!(&shares[i].block, block);
            }
        }
    }
}
