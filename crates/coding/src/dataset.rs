//! A dataset encoded **once** and shared across many computations.
//!
//! The AVCC cost model is dominated by master-side encoding, yet every
//! engine used to re-encode `X` even when many matrix–vector products share
//! the same dataset (many models' weights against one `X`, or a multi-round
//! training loop). [`EncodedDataset`] owns the coded partitions of one matrix
//! — the shares shipped to the workers and the decoder that inverts the code
//! — so that any number of lightweight per-function *sessions* (the engines
//! in `avcc-core`) can dispatch against a single encode, typically through an
//! [`std::sync::Arc`].
//!
//! Sharing is more than skipping the encode: the decoder's per-survivor-set
//! basis cache ([`LagrangeDecoder::basis_cache_stats`]) lives inside the
//! dataset, so `m` functions decoded from the same survivor set pay one basis
//! construction and `m − 1` cache hits.
//!
//! Two layouts are supported, matching the engines that consume them:
//!
//! * [`EncodedDataset::encode`] — Lagrange/MDS coded shares for the AVCC and
//!   LCC engines, with the row padding the dynamic-coding controller needs
//!   (a row count not divisible by `K` is padded with zero rows; the decoded
//!   output is trimmed back to [`EncodedDataset::output_rows`]).
//! * [`EncodedDataset::partitioned`] — raw row blocks for the uncoded
//!   baseline: no redundancy, one block per participating worker.

use std::sync::Arc;

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use rand::Rng;

use crate::decoder::LagrangeDecoder;
use crate::encoder::LagrangeEncoder;
use crate::scheme::SchemeConfig;

/// Pads a matrix with zero rows so its row count is a multiple of `parts`.
fn pad_rows_to_multiple<M: PrimeModulus>(matrix: &Matrix<Fp<M>>, parts: usize) -> Matrix<Fp<M>> {
    let remainder = matrix.rows() % parts;
    if remainder == 0 {
        return matrix.clone();
    }
    let extra = parts - remainder;
    let mut data = matrix.data().to_vec();
    data.extend(std::iter::repeat_n(Fp::<M>::ZERO, extra * matrix.cols()));
    Matrix::from_vec(matrix.rows() + extra, matrix.cols(), data)
}

/// How the dataset's shares were produced.
#[derive(Debug, Clone)]
enum DatasetCoding<M: PrimeModulus> {
    /// Lagrange/MDS coded shares under a scheme configuration, with the
    /// decoder that inverts the code.
    Lagrange {
        config: SchemeConfig,
        decoder: Box<LagrangeDecoder<M>>,
    },
    /// Raw row blocks (the uncoded baseline): share `i` *is* partition `i`.
    Raw { partitions: usize },
}

/// One matrix, encoded (or partitioned) once, shared by many computations.
///
/// Cloning duplicates the handle's configuration but resets the decoder's
/// basis cache; to actually share the encode — and its cache — across
/// sessions, wrap the dataset in an [`Arc`] and hand clones of the `Arc` to
/// each engine.
#[derive(Debug, Clone)]
pub struct EncodedDataset<M: PrimeModulus> {
    shares: Vec<Arc<Matrix<Fp<M>>>>,
    block_rows: usize,
    output_rows: usize,
    coding: DatasetCoding<M>,
}

impl<M: PrimeModulus> EncodedDataset<M> {
    /// Lagrange/MDS encodes `matrix` for `config`: the one-time master-side
    /// preprocessing every session over this dataset amortizes.
    ///
    /// With `T = 0` the encoding is deterministic (no privacy pads, so no
    /// randomness is consumed from `rng`); with `T > 0` the pads are drawn
    /// from `rng`. Rows not divisible by `config.partitions` are padded with
    /// zero rows; decoded outputs must be trimmed back to
    /// [`EncodedDataset::output_rows`].
    pub fn encode<R: Rng + ?Sized>(
        matrix: &Matrix<Fp<M>>,
        config: SchemeConfig,
        rng: &mut R,
    ) -> Self {
        let output_rows = matrix.rows();
        let padded = pad_rows_to_multiple(matrix, config.partitions);
        let blocks = padded.split_rows(config.partitions);
        let block_rows = blocks[0].rows();
        let encoder = LagrangeEncoder::<M>::new(config);
        let shares = if config.colluding == 0 {
            encoder.encode_deterministic(&blocks)
        } else {
            encoder.encode(&blocks, rng)
        }
        .into_iter()
        .map(|s| Arc::new(s.block))
        .collect();
        EncodedDataset {
            shares,
            block_rows,
            output_rows,
            coding: DatasetCoding::Lagrange {
                config,
                decoder: Box::new(LagrangeDecoder::new(config)),
            },
        }
    }

    /// Splits `matrix` into `partitions` raw row blocks (the uncoded
    /// baseline's layout): share `i` is partition `i`, no redundancy.
    ///
    /// # Panics
    /// Panics if the row count is not divisible by `partitions`.
    pub fn partitioned(matrix: &Matrix<Fp<M>>, partitions: usize) -> Self {
        let shares: Vec<Arc<Matrix<Fp<M>>>> = matrix
            .split_rows(partitions)
            .into_iter()
            .map(Arc::new)
            .collect();
        let block_rows = shares[0].rows();
        EncodedDataset {
            block_rows,
            output_rows: matrix.rows(),
            shares,
            coding: DatasetCoding::Raw { partitions },
        }
    }

    /// The per-worker shares, in worker order.
    pub fn shares(&self) -> &[Arc<Matrix<Fp<M>>>] {
        &self.shares
    }

    /// Worker `worker`'s share.
    pub fn share(&self, worker: usize) -> &Arc<Matrix<Fp<M>>> {
        &self.shares[worker]
    }

    /// Number of workers the dataset is distributed across.
    pub fn workers(&self) -> usize {
        self.shares.len()
    }

    /// Number of data partitions `K`.
    pub fn partitions(&self) -> usize {
        match &self.coding {
            DatasetCoding::Lagrange { config, .. } => config.partitions,
            DatasetCoding::Raw { partitions } => *partitions,
        }
    }

    /// Rows per share/block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Rows of the original (unpadded) matrix; decoded outputs are trimmed
    /// back to this length.
    pub fn output_rows(&self) -> usize {
        self.output_rows
    }

    /// `true` iff the shares are Lagrange/MDS coded (as opposed to raw
    /// partitions).
    pub fn is_coded(&self) -> bool {
        matches!(self.coding, DatasetCoding::Lagrange { .. })
    }

    /// The scheme configuration, for coded datasets.
    pub fn scheme(&self) -> Option<&SchemeConfig> {
        match &self.coding {
            DatasetCoding::Lagrange { config, .. } => Some(config),
            DatasetCoding::Raw { .. } => None,
        }
    }

    /// The shared decoder, for coded datasets. Its per-survivor-set basis
    /// cache is shared by every session holding this dataset.
    pub fn decoder(&self) -> Option<&LagrangeDecoder<M>> {
        match &self.coding {
            DatasetCoding::Lagrange { decoder, .. } => Some(decoder),
            DatasetCoding::Raw { .. } => None,
        }
    }

    /// Results needed to reconstruct the product: the recovery threshold for
    /// coded datasets, every partition for raw ones.
    pub fn recovery_threshold(&self) -> usize {
        match &self.coding {
            DatasetCoding::Lagrange { config, .. } => config.recovery_threshold(),
            DatasetCoding::Raw { partitions } => *partitions,
        }
    }

    /// Total size of the shares shipped to the workers, in bytes (8 bytes per
    /// field element).
    pub fn encoded_bytes(&self) -> usize {
        self.shares.iter().map(|s| s.len() * 8).sum()
    }

    /// `(hits, misses)` of the shared decoder's per-survivor-set basis cache
    /// — `(0, 0)` for raw datasets, which have nothing to decode.
    pub fn basis_cache_stats(&self) -> (u64, u64) {
        match &self.coding {
            DatasetCoding::Lagrange { decoder, .. } => decoder.basis_cache_stats(),
            DatasetCoding::Raw { .. } => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix<F25> {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols))
    }

    #[test]
    fn encode_round_trips_through_the_shared_decoder() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let matrix = matrix(18, 5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let input = avcc_field::random_vector(&mut rng, 5);
        let dataset = EncodedDataset::<P25>::encode(&matrix, config, &mut rng);
        assert!(dataset.is_coded());
        assert_eq!(dataset.workers(), 12);
        assert_eq!(dataset.block_rows(), 2);
        assert_eq!(dataset.output_rows(), 18);
        assert_eq!(dataset.recovery_threshold(), 9);
        assert_eq!(dataset.encoded_bytes(), 12 * 2 * 5 * 8);

        let results: Vec<(usize, Vec<F25>)> = (0..dataset.recovery_threshold())
            .map(|worker| (worker, mat_vec(dataset.share(worker), &input)))
            .collect();
        let blocks = dataset.decoder().unwrap().decode_erasure(&results).unwrap();
        let mut output: Vec<F25> = blocks.into_iter().flatten().collect();
        output.truncate(dataset.output_rows());
        assert_eq!(output, mat_vec(&matrix, &input));
    }

    #[test]
    fn encode_pads_indivisible_rows_and_remembers_the_original_count() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let matrix = matrix(20, 4, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let dataset = EncodedDataset::<P25>::encode(&matrix, config, &mut rng);
        // 20 rows padded up to 27 (a multiple of 9): 3 rows per block.
        assert_eq!(dataset.block_rows(), 3);
        assert_eq!(dataset.output_rows(), 20);
        assert_eq!(dataset.partitions() * dataset.block_rows(), 27);
    }

    #[test]
    fn partitioned_dataset_is_the_raw_split() {
        let matrix = matrix(18, 5, 5);
        let dataset = EncodedDataset::<P25>::partitioned(&matrix, 9);
        assert!(!dataset.is_coded());
        assert_eq!(dataset.workers(), 9);
        assert_eq!(dataset.recovery_threshold(), 9);
        assert!(dataset.scheme().is_none());
        assert!(dataset.decoder().is_none());
        assert_eq!(dataset.basis_cache_stats(), (0, 0));
        for (k, share) in dataset.shares().iter().enumerate() {
            assert_eq!(share.data(), &matrix.data()[k * 2 * 5..(k + 1) * 2 * 5]);
        }
    }

    #[test]
    fn arc_shared_sessions_share_one_basis_cache() {
        let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
        let matrix = matrix(18, 5, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let input = avcc_field::random_vector(&mut rng, 5);
        let dataset = Arc::new(EncodedDataset::<P25>::encode(&matrix, config, &mut rng));
        let results: Vec<(usize, Vec<F25>)> = (0..9)
            .map(|worker| (worker, mat_vec(dataset.share(worker), &input)))
            .collect();

        // Two handles onto the same Arc: a decode through either advances the
        // same cache — the amortization a shared dataset buys.
        let session_a = Arc::clone(&dataset);
        let session_b = Arc::clone(&dataset);
        session_a
            .decoder()
            .unwrap()
            .decode_erasure(&results)
            .unwrap();
        assert_eq!(dataset.basis_cache_stats(), (0, 1));
        session_b
            .decoder()
            .unwrap()
            .decode_erasure(&results)
            .unwrap();
        assert_eq!(dataset.basis_cache_stats(), (1, 1));

        // A plain clone is a new dataset handle with a fresh cache.
        let cloned = (*dataset).clone();
        assert_eq!(cloned.basis_cache_stats(), (0, 0));
    }
}
