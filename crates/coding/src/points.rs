//! Selection of the Lagrange interpolation points `β` and the worker
//! evaluation points `α`.
//!
//! The encoder needs `K + T` distinct β-points (where the encoding polynomial
//! takes the data blocks and the random pads as values) and `N` distinct
//! α-points (where the workers evaluate). The paper requires `A ∩ B = ∅` when
//! `T > 0` — otherwise a worker whose α coincided with a β-point would hold a
//! raw data block, destroying privacy. When `T = 0` the code is made
//! *systematic* by letting `α_i = β_i` for `i ≤ K`, which is exactly the MDS
//! construction of Fig. 1 (worker `i ≤ K` stores `X_i` itself).

use avcc_field::{Fp, PrimeModulus};

/// The β (interpolation) and α (worker) evaluation points of a Lagrange code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationPoints<M: PrimeModulus> {
    beta: Vec<Fp<M>>,
    alpha: Vec<Fp<M>>,
}

impl<M: PrimeModulus> EvaluationPoints<M> {
    /// Chooses points for a code with `partitions = K` data blocks,
    /// `colluding = T` random pads and `workers = N` workers.
    ///
    /// * `T = 0`: systematic layout, `β_j = j` and `α_i = i` (1-based), so the
    ///   first `K` workers hold the raw blocks.
    /// * `T > 0`: `β_j = j` and `α_i = K + T + i`, guaranteeing `A ∩ B = ∅`.
    ///
    /// # Panics
    /// Panics if the field is too small to provide the required number of
    /// distinct points (never the case for the 25-bit field at realistic
    /// scales) or if `partitions == 0` / `workers == 0`.
    pub fn standard(partitions: usize, colluding: usize, workers: usize) -> Self {
        assert!(partitions > 0, "need at least one data partition");
        assert!(workers > 0, "need at least one worker");
        let needed = (partitions + colluding + workers) as u64;
        assert!(
            needed < M::MODULUS,
            "field with modulus {} cannot supply {} distinct evaluation points",
            M::MODULUS,
            needed
        );
        let beta: Vec<Fp<M>> = (1..=(partitions + colluding) as u64)
            .map(Fp::<M>::new)
            .collect();
        let alpha: Vec<Fp<M>> = if colluding == 0 {
            (1..=workers as u64).map(Fp::<M>::new).collect()
        } else {
            let offset = (partitions + colluding) as u64;
            (1..=workers as u64)
                .map(|i| Fp::<M>::new(offset + i))
                .collect()
        };
        EvaluationPoints { beta, alpha }
    }

    /// The β-points (length `K + T`).
    pub fn beta(&self) -> &[Fp<M>] {
        &self.beta
    }

    /// The α-points (length `N`).
    pub fn alpha(&self) -> &[Fp<M>] {
        &self.alpha
    }

    /// The β-points corresponding to the data blocks only (the first `K`).
    pub fn data_beta(&self, partitions: usize) -> &[Fp<M>] {
        &self.beta[..partitions]
    }

    /// `true` iff no worker point coincides with an interpolation point.
    pub fn disjoint(&self) -> bool {
        self.alpha.iter().all(|a| !self.beta.contains(a))
    }

    /// `true` iff the layout is systematic (`α_i = β_i` for the data blocks).
    pub fn is_systematic(&self, partitions: usize) -> bool {
        self.alpha.len() >= partitions
            && self.beta.len() >= partitions
            && self.alpha[..partitions] == self.beta[..partitions]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{P25, P251};

    #[test]
    fn systematic_layout_when_no_privacy() {
        let points = EvaluationPoints::<P25>::standard(9, 0, 12);
        assert_eq!(points.beta().len(), 9);
        assert_eq!(points.alpha().len(), 12);
        assert!(points.is_systematic(9));
        assert!(!points.disjoint());
    }

    #[test]
    fn disjoint_layout_when_private() {
        let points = EvaluationPoints::<P25>::standard(4, 2, 10);
        assert_eq!(points.beta().len(), 6);
        assert_eq!(points.alpha().len(), 10);
        assert!(points.disjoint());
        assert!(!points.is_systematic(4));
    }

    #[test]
    fn all_points_are_distinct() {
        let points = EvaluationPoints::<P25>::standard(5, 3, 20);
        let mut all: Vec<u64> = points
            .beta()
            .iter()
            .chain(points.alpha().iter())
            .map(|p| p.value())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5 + 3 + 20);
    }

    #[test]
    fn data_beta_returns_first_k_points() {
        let points = EvaluationPoints::<P25>::standard(3, 2, 8);
        assert_eq!(points.data_beta(3), &points.beta()[..3]);
    }

    #[test]
    #[should_panic(expected = "distinct evaluation points")]
    fn tiny_field_cannot_supply_enough_points() {
        let _ = EvaluationPoints::<P251>::standard(200, 30, 100);
    }

    #[test]
    #[should_panic(expected = "at least one data partition")]
    fn zero_partitions_panics() {
        let _ = EvaluationPoints::<P25>::standard(0, 0, 4);
    }
}
