//! Selection of the Lagrange interpolation points `β` and the worker
//! evaluation points `α`.
//!
//! The encoder needs `K + T` distinct β-points (where the encoding polynomial
//! takes the data blocks and the random pads as values) and `N` distinct
//! α-points (where the workers evaluate). The paper requires `A ∩ B = ∅` when
//! `T > 0` — otherwise a worker whose α coincided with a β-point would hold a
//! raw data block, destroying privacy. When `T = 0` the code is made
//! *systematic* by letting `α_i = β_i` for `i ≤ K`, which is exactly the MDS
//! construction of Fig. 1 (worker `i ≤ K` stores `X_i` itself).
//!
//! Two layouts are provided:
//!
//! * [`EvaluationPoints::standard`] — consecutive integers, works in every
//!   field, systematic when `T = 0`. Encoding/decoding go through the
//!   `O(N·K)`-per-coordinate Lagrange matrix.
//! * [`EvaluationPoints::subgroup`] — for NTT-friendly fields
//!   ([`avcc_field::NttModulus`]) with `K + T` a power of two: the β-points
//!   are the order-`K+T` subgroup `H = ⟨ω⟩` and the α-points are the first
//!   `N` elements of the coset `g·H'` (with `H' ⊇ H` the next power-of-two
//!   subgroup covering all workers and `g` a generator of the full
//!   multiplicative group). `g` has order `q − 1`, which no power-of-two
//!   subgroup order divides, so the coset never intersects `H'` — the layout
//!   is automatically disjoint (never systematic), and encoding/decoding
//!   collapse to `O(N log N)` NTTs (see `encoder`/`decoder`).

use avcc_field::{Fp, NttModulus, PrimeModulus};
use avcc_poly::root_of_unity;

/// The subgroup geometry of an NTT-ready point layout (see
/// [`EvaluationPoints::subgroup`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgroupLayout<M: PrimeModulus> {
    /// `log2` of the β-subgroup order `B = K + T`.
    pub log_blocks: u32,
    /// `log2` of the α-coset order `A = next_pow2(max(N, B))`.
    pub log_workers: u32,
    /// The coset shift `g` (a generator of the full multiplicative group):
    /// `α_i = g·ω_A^i`.
    pub shift: Fp<M>,
}

impl<M: PrimeModulus> SubgroupLayout<M> {
    /// The β-subgroup order `B = K + T`.
    pub fn blocks(&self) -> usize {
        1usize << self.log_blocks
    }

    /// The α-coset order `A` (the decoder's full-coset NTT path needs all `A`
    /// coset evaluations, i.e. `N = A` and no stragglers).
    pub fn workers(&self) -> usize {
        1usize << self.log_workers
    }
}

/// The β (interpolation) and α (worker) evaluation points of a Lagrange code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationPoints<M: PrimeModulus> {
    beta: Vec<Fp<M>>,
    alpha: Vec<Fp<M>>,
    subgroup: Option<SubgroupLayout<M>>,
}

impl<M: PrimeModulus> EvaluationPoints<M> {
    /// Chooses points for a code with `partitions = K` data blocks,
    /// `colluding = T` random pads and `workers = N` workers.
    ///
    /// * `T = 0`: systematic layout, `β_j = j` and `α_i = i` (1-based), so the
    ///   first `K` workers hold the raw blocks.
    /// * `T > 0`: `β_j = j` and `α_i = K + T + i`, guaranteeing `A ∩ B = ∅`.
    ///
    /// # Panics
    /// Panics if the field is too small to provide the required number of
    /// distinct points (never the case for the 25-bit field at realistic
    /// scales) or if `partitions == 0` / `workers == 0`.
    pub fn standard(partitions: usize, colluding: usize, workers: usize) -> Self {
        assert!(partitions > 0, "need at least one data partition");
        assert!(workers > 0, "need at least one worker");
        let needed = (partitions + colluding + workers) as u64;
        assert!(
            needed < M::MODULUS,
            "field with modulus {} cannot supply {} distinct evaluation points",
            M::MODULUS,
            needed
        );
        let beta: Vec<Fp<M>> = (1..=(partitions + colluding) as u64)
            .map(Fp::<M>::new)
            .collect();
        let alpha: Vec<Fp<M>> = if colluding == 0 {
            (1..=workers as u64).map(Fp::<M>::new).collect()
        } else {
            let offset = (partitions + colluding) as u64;
            (1..=workers as u64)
                .map(|i| Fp::<M>::new(offset + i))
                .collect()
        };
        EvaluationPoints {
            beta,
            alpha,
            subgroup: None,
        }
    }

    /// Places the points in NTT position: `β_j = ω_B^j` (the full order-`B`
    /// subgroup, `B = K + T`) and `α_i = g·ω_A^i` (a coset of the covering
    /// subgroup of order `A = next_pow2(max(N, B))`).
    ///
    /// Returns `None` when the geometry does not fit: `K + T` must be a power
    /// of two (the interpolation step must be a full-subgroup inverse NTT —
    /// padding the subgroup would raise the degree of the encoding polynomial
    /// and with it the recovery threshold) and `A` must divide the field's
    /// two-adic subgroup order.
    ///
    /// # Panics
    /// Panics if `partitions == 0` / `workers == 0`.
    pub fn subgroup(partitions: usize, colluding: usize, workers: usize) -> Option<Self>
    where
        M: NttModulus,
    {
        Self::subgroup_position(partitions, colluding, workers)
    }

    /// Chooses the subgroup layout when the modulus declares NTT support and
    /// the geometry fits, and the [`EvaluationPoints::standard`] layout
    /// otherwise. Deterministic for a given `(K, T, N, M)`, so encoders and
    /// decoders built independently from the same scheme configuration agree
    /// on the points.
    pub fn auto(partitions: usize, colluding: usize, workers: usize) -> Self {
        Self::subgroup_position(partitions, colluding, workers)
            .unwrap_or_else(|| Self::standard(partitions, colluding, workers))
    }

    /// The [`EvaluationPoints::subgroup`] construction without the
    /// [`NttModulus`] bound: generic callers (like [`EvaluationPoints::auto`])
    /// rely on the run-time metadata check instead of the marker trait.
    fn subgroup_position(partitions: usize, colluding: usize, workers: usize) -> Option<Self> {
        assert!(partitions > 0, "need at least one data partition");
        assert!(workers > 0, "need at least one worker");
        let blocks = partitions + colluding;
        if M::TWO_ADICITY == 0 || !blocks.is_power_of_two() {
            return None;
        }
        let log_blocks = blocks.trailing_zeros();
        let covering = workers.max(blocks).next_power_of_two();
        let log_workers = covering.trailing_zeros();
        if log_workers > M::TWO_ADICITY {
            return None;
        }
        let omega_blocks = root_of_unity::<M>(log_blocks);
        let omega_workers = root_of_unity::<M>(log_workers);
        let shift = Fp::<M>::new(M::GROUP_GENERATOR);
        let mut beta = Vec::with_capacity(blocks);
        let mut power = Fp::<M>::ONE;
        for _ in 0..blocks {
            beta.push(power);
            power *= omega_blocks;
        }
        let mut alpha = Vec::with_capacity(workers);
        let mut power = shift;
        for _ in 0..workers {
            alpha.push(power);
            power *= omega_workers;
        }
        Some(EvaluationPoints {
            beta,
            alpha,
            subgroup: Some(SubgroupLayout {
                log_blocks,
                log_workers,
                shift,
            }),
        })
    }

    /// The β-points (length `K + T`).
    pub fn beta(&self) -> &[Fp<M>] {
        &self.beta
    }

    /// The α-points (length `N`).
    pub fn alpha(&self) -> &[Fp<M>] {
        &self.alpha
    }

    /// The β-points corresponding to the data blocks only (the first `K`).
    pub fn data_beta(&self, partitions: usize) -> &[Fp<M>] {
        &self.beta[..partitions]
    }

    /// The subgroup geometry when the points are in NTT position, `None` for
    /// the standard layout. The encoder/decoder fast paths key off this.
    pub fn ntt_layout(&self) -> Option<&SubgroupLayout<M>> {
        self.subgroup.as_ref()
    }

    /// `true` iff no worker point coincides with an interpolation point.
    pub fn disjoint(&self) -> bool {
        self.alpha.iter().all(|a| !self.beta.contains(a))
    }

    /// `true` iff the layout is systematic (`α_i = β_i` for the data blocks).
    pub fn is_systematic(&self, partitions: usize) -> bool {
        self.alpha.len() >= partitions
            && self.beta.len() >= partitions
            && self.alpha[..partitions] == self.beta[..partitions]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{PrimeField, P25, P251, P64};
    use proptest::prelude::*;

    #[test]
    fn systematic_layout_when_no_privacy() {
        let points = EvaluationPoints::<P25>::standard(9, 0, 12);
        assert_eq!(points.beta().len(), 9);
        assert_eq!(points.alpha().len(), 12);
        assert!(points.is_systematic(9));
        assert!(!points.disjoint());
        assert!(points.ntt_layout().is_none());
    }

    #[test]
    fn disjoint_layout_when_private() {
        let points = EvaluationPoints::<P25>::standard(4, 2, 10);
        assert_eq!(points.beta().len(), 6);
        assert_eq!(points.alpha().len(), 10);
        assert!(points.disjoint());
        assert!(!points.is_systematic(4));
    }

    #[test]
    fn all_points_are_distinct() {
        let points = EvaluationPoints::<P25>::standard(5, 3, 20);
        let mut all: Vec<u64> = points
            .beta()
            .iter()
            .chain(points.alpha().iter())
            .map(|p| p.value())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5 + 3 + 20);
    }

    #[test]
    fn data_beta_returns_first_k_points() {
        let points = EvaluationPoints::<P25>::standard(3, 2, 8);
        assert_eq!(points.data_beta(3), &points.beta()[..3]);
    }

    #[test]
    #[should_panic(expected = "distinct evaluation points")]
    fn tiny_field_cannot_supply_enough_points() {
        let _ = EvaluationPoints::<P251>::standard(200, 30, 100);
    }

    #[test]
    #[should_panic(expected = "at least one data partition")]
    fn zero_partitions_panics() {
        let _ = EvaluationPoints::<P25>::standard(0, 0, 4);
    }

    #[test]
    fn subgroup_layout_places_beta_on_a_subgroup() {
        let points = EvaluationPoints::<P64>::subgroup(6, 2, 12).unwrap();
        let layout = *points.ntt_layout().unwrap();
        assert_eq!(layout.blocks(), 8);
        assert_eq!(layout.workers(), 16);
        // Every β is a B-th root of unity; the product of all of them is
        // (−1)^(B+1)... more simply: β_j^B = 1 for all j.
        for &beta in points.beta() {
            assert_eq!(beta.pow(8), Fp::<P64>::ONE);
        }
        // No α lies in any power-of-two subgroup: α^A ≠ 1.
        for &alpha in points.alpha() {
            assert_ne!(alpha.pow(16), Fp::<P64>::ONE);
        }
    }

    #[test]
    fn subgroup_layout_requires_power_of_two_blocks() {
        assert!(EvaluationPoints::<P64>::subgroup(9, 0, 12).is_none());
        assert!(EvaluationPoints::<P64>::subgroup(8, 1, 12).is_none());
        assert!(EvaluationPoints::<P64>::subgroup(8, 0, 12).is_some());
        assert!(EvaluationPoints::<P64>::subgroup(7, 1, 12).is_some());
    }

    #[test]
    fn auto_prefers_subgroup_only_on_ntt_fields() {
        // P64 with a power-of-two K+T: subgroup position.
        let on_ntt_field = EvaluationPoints::<P64>::auto(8, 0, 12);
        assert!(on_ntt_field.ntt_layout().is_some());
        // Same geometry on P25 (two-adicity undeclared): standard.
        let on_plain_field = EvaluationPoints::<P25>::auto(8, 0, 12);
        assert!(on_plain_field.ntt_layout().is_none());
        assert!(on_plain_field.is_systematic(8));
        // Non-power-of-two K+T on P64: standard fallback.
        let fallback = EvaluationPoints::<P64>::auto(9, 0, 12);
        assert!(fallback.ntt_layout().is_none());
        assert!(fallback.is_systematic(9));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_subgroup_points_are_disjoint_distinct_and_never_systematic(
            log_blocks in 0u32..7,
            colluding in 0usize..5,
            extra_workers in 0usize..20,
        ) {
            let blocks = 1usize << log_blocks;
            prop_assume!(blocks > colluding);
            let partitions = blocks - colluding;
            let workers = partitions.max(1) + extra_workers;
            let points = EvaluationPoints::<P64>::subgroup(partitions, colluding, workers)
                .expect("power-of-two geometry must fit the 2^32-adic field");
            // The paper's privacy requirement A ∩ B = ∅ holds for *every*
            // subgroup layout (the coset shift is a full-group generator).
            prop_assert!(points.disjoint());
            prop_assert!(!points.is_systematic(partitions));
            prop_assert_eq!(points.beta().len(), blocks);
            prop_assert_eq!(points.alpha().len(), workers);
            // All K+T+N points are pairwise distinct.
            let mut all: Vec<u64> = points
                .beta()
                .iter()
                .chain(points.alpha().iter())
                .map(|p| p.value())
                .collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), blocks + workers);
        }
    }
}
