//! Coded computing: MDS and Lagrange Coded Computing (LCC) encoders and
//! decoders, with the privacy padding and feasibility rules of the AVCC paper.
//!
//! The coding layer answers three questions:
//!
//! 1. **How is the dataset encoded?** [`encoder::LagrangeEncoder`] implements
//!    the paper's eq. (12)–(13): the `K` data blocks and `T` uniformly random
//!    pads are interpolated through the β-points and the encoder hands worker
//!    `i` the evaluation `X̃_i = u(α_i)`. With `T = 0` and systematic α-points
//!    this is exactly an `(N, K)` MDS / Reed–Solomon code
//!    ([`mds::MdsCode`], the illustration of Fig. 1).
//! 2. **How many workers are needed?** [`scheme::SchemeConfig`] captures
//!    `(N, K, S, M, T, deg f)` and checks the LCC bound
//!    `N ≥ (K+T−1)·deg f + S + 2M + 1` (eq. 1) and the AVCC bound
//!    `N ≥ (K+T−1)·deg f + S + M + 1` (eq. 2).
//! 3. **How are results decoded?** [`decoder::LagrangeDecoder`] interpolates
//!    `f(u(z))` from worker evaluations: erasure-only decoding (what AVCC
//!    needs, since Byzantine results have already been discarded by the
//!    verifier) and error-correcting decoding via Berlekamp–Welch on
//!    worker fingerprints (what the LCC baseline needs to identify Byzantine
//!    workers without verification).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod encoder;
pub mod mds;
pub mod points;
pub mod scheme;

pub use decoder::{DecodeError, LagrangeDecoder};
pub use encoder::{EncodedShare, LagrangeEncoder};
pub use mds::MdsCode;
pub use points::{EvaluationPoints, SubgroupLayout};
pub use scheme::{SchemeConfig, SchemeError};
