//! Coded computing: MDS and Lagrange Coded Computing (LCC) encoders and
//! decoders, with the privacy padding and feasibility rules of the AVCC paper.
//!
//! The coding layer answers three questions:
//!
//! 1. **How is the dataset encoded?** [`encoder::LagrangeEncoder`] implements
//!    the paper's eq. (12)–(13): the `K` data blocks and `T` uniformly random
//!    pads are interpolated through the β-points and the encoder hands worker
//!    `i` the evaluation `X̃_i = u(α_i)`. With `T = 0` and systematic α-points
//!    this is exactly an `(N, K)` MDS / Reed–Solomon code
//!    ([`mds::MdsCode`], the illustration of Fig. 1).
//! 2. **How many workers are needed?** [`scheme::SchemeConfig`] captures
//!    `(N, K, S, M, T, deg f)` and checks the LCC bound
//!    `N ≥ (K+T−1)·deg f + S + 2M + 1` (eq. 1) and the AVCC bound
//!    `N ≥ (K+T−1)·deg f + S + M + 1` (eq. 2).
//! 3. **How are results decoded?** [`decoder::LagrangeDecoder`] interpolates
//!    `f(u(z))` from worker evaluations: erasure-only decoding (what AVCC
//!    needs, since Byzantine results have already been discarded by the
//!    verifier) and error-correcting decoding via Berlekamp–Welch on
//!    worker fingerprints (what the LCC baseline needs to identify Byzantine
//!    workers without verification).
//!
//! A fourth question — **are the returned blocks even consistent?** — is
//! answered before any of the above runs: [`screen::DualCodeword`] checks all
//! responder blocks for RS-codeword membership at once with a SCRAPE-style
//! random dual-codeword inner product (`O(R·width)` per check, escape
//! probability `(1/q)^k`), and on failure localizes the corrupted workers by
//! syndrome power sums instead of full Berlekamp–Welch error decoding. The
//! AVCC engine runs it pre-decode so screened-out workers become plain
//! erasures.
//!
//! A fifth concern sits on top: **how often is the dataset encoded?**
//! [`dataset::EncodedDataset`] owns the coded partitions (and the shared
//! decoder with its basis cache) once, so many per-function engine sessions —
//! and the multi-function batched rounds built on them — amortize a single
//! encode instead of re-encoding per computation.
//!
//! # Encode/decode path selection
//!
//! Every encode and decode picks between algebraically identical
//! implementations, automatically, per call:
//!
//! | Path | Cost per coordinate | Requires | Chosen when |
//! |---|---|---|---|
//! | Lagrange matrix | `O((K+T)·N)` encode, `O(B·R)` decode (`R` responders, `B` output blocks) | nothing — any field, any points, any responder subset | fallback, always available (and the tests' correctness oracle, [`decoder::LagrangeDecoder::decode_erasure_lagrange`]) |
//! | NTT full coset (decode) / subgroup (encode) | `O(N log N)` | field with declared two-adicity ([`avcc_field::NttModulus`], e.g. `F64`), `K+T` a power of two, points in subgroup position ([`points::EvaluationPoints`] `subgroup`/`auto` constructors), and — for the decode — **every** coset worker responding | all conditions hold |
//! | Subproduct tree (decode) | `O(R log² R)` | subgroup position as above; works for **any** surviving subset of ≥ threshold workers | points in subgroup position but the full coset is incomplete (stragglers, evicted Byzantine workers, `N` not a power of two) |
//! | Dual-codeword screen (pre-decode) | `O(R·width)` per dual vector | strictly more than threshold responders; closed-form weights + NTT `Q`-evaluation on the full coset, `O(R²)` cached weights otherwise | always, before verify/decode, when the responder count leaves dual redundancy ([`screen::DualCodeword`]) |
//!
//! The β-points (interpolation) sit in an order-`(K+T)` multiplicative
//! subgroup and the α-points (workers) on a generator-shifted coset, so the
//! two sets never collide; encode is then an inverse NTT over the subgroup
//! followed by a coset-scaled forward NTT, and decode folds the full-coset
//! inverse transform mod `z^B − 1` back onto the subgroup. A missing
//! worker breaks the coset structure but not the subgroup position: the
//! decoder then interpolates `f(u)` from the surviving α-subset with a
//! cached subproduct tree ([`avcc_poly::TreeInterpolator`], keyed by the
//! survivor set — consecutive rounds usually straggle the same workers) and
//! still folds/forward-NTTs to the β-points. The dense Lagrange matrix only
//! runs on fields without NTT metadata — correctness never depends on a
//! fast path (`BENCH_PR2.json`: 4.3–8.3× at `K ∈ {64, 128}`;
//! `BENCH_PR5.json`: tree vs dense with 1–4 missing workers; both gated in
//! CI).
//!
//! Both paths share the same vectorized substrate: Lagrange linear
//! combinations run on [`avcc_field::WideAccumulator`] lanes with one
//! shared batch inversion per decode, and the NTT butterflies are
//! lane-unrolled with per-plan Montgomery twiddles (`avcc_poly::ntt`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod decoder;
pub mod encoder;
pub mod mds;
pub mod points;
pub mod scheme;
pub mod screen;

pub use dataset::EncodedDataset;
pub use decoder::{DecodeError, LagrangeDecoder};
pub use encoder::{EncodedShare, LagrangeEncoder};
pub use mds::MdsCode;
pub use points::{EvaluationPoints, SubgroupLayout};
pub use scheme::{SchemeConfig, SchemeError};
pub use screen::{DualCodeword, ScreenError, ScreenOutcome, ScreenReport};
