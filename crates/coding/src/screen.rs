//! SCRAPE-style dual-codeword Byzantine screening (pre-decode).
//!
//! Workers return `Ỹ_i = f(u(α_i))` — evaluations of a polynomial of degree
//! at most `threshold − 1` (the recovery threshold is `(K+T−1)·deg f + 1`).
//! Whenever strictly more than `threshold` workers respond, the received
//! vectors carry redundancy that can be checked *before* any Freivalds
//! verification or decoding: the evaluation code is an `[R, threshold]`
//! Reed–Solomon code over the responder points, and its dual is spanned by
//! the vectors `(u_i · Q(α_i))_i` for polynomials `Q` of degree
//! `< ν = R − threshold`, where `u_i = ∏_{j≠i} (α_i − α_j)^{-1}` are the
//! Lagrange-derivative weights over the responder set (the SCRAPE test of
//! Cascudo–David, used by Optrand-PVSS's `ensure_degree`; see SNIPPETS.md).
//!
//! **Membership** ([`DualCodeword::screen`]): sample a uniformly random `Q`
//! and form the width-wide syndrome `s = Σ_i u_i·Q(α_i)·Ỹ_i` in one
//! `O(R·width)` accumulator pass. Honest rounds give `s = 0` identically.
//! For any corruption of at most `R − threshold` responders the error vector
//! is *not* a codeword (the code is MDS with minimum distance
//! `R − threshold + 1`), so `s` vanishes with probability at most `1/q` over
//! the choice of `Q` — the Schwartz–Zippel bound; `k` independent dual
//! vectors push the escape probability to `(1/q)^k`. On the full α-coset
//! (subgroup layout, every worker responding) the weights collapse to the
//! closed form `u_i = α_i · (A·g^A)^{-1}` — one inversion — and `Q` is
//! evaluated at all coset points by a coset-scaled forward NTT; on general
//! responder subsets the weights cost `O(R²)` multiplies plus one shared
//! batch inversion and are cached per survivor set (straggler patterns
//! repeat, exactly as in the decoder's basis cache).
//!
//! **Localization**: when membership fails, the corrupted workers are found
//! without Berlekamp–Welch error decoding. Collapse each responder vector to
//! a scalar fingerprint `φ_i = ⟨Ỹ_i, ρ⟩` for a random `ρ`; the scalar
//! syndromes `S_m = Σ_i u_i·α_i^m·φ_i` for `m < ν` are blind to the honest
//! codeword (sum-of-residues: `Σ_i u_i·α_i^m·P(α_i) = 0` whenever
//! `m + deg P ≤ R − 2`) and equal the power sums `Σ_{i∈E} η_i·α_i^m` of the
//! corrupted positions. A Peterson–Gorenstein–Zierler solve on the Hankel
//! system of those power sums recovers the error-locator polynomial for up
//! to `⌊ν/2⌋` corrupted workers; its roots among the responder α-points name
//! the workers, and the location is *validated* by re-screening the
//! remaining responders (always possible: removing `t ≤ ν/2` workers leaves
//! `≥ threshold + t` of them). A fingerprint collision (`⟨error_i, ρ⟩ = 0`)
//! only costs a retry with a fresh `ρ`; after [`SCREEN_RETRIES`] failed
//! attempts the screen reports [`ScreenOutcome::Unlocalized`] and the caller
//! falls back to its existing verification path.
//!
//! **Soundness model**: the screen checks consistency *among responders*. It
//! is sound as long as the honest responders hold a majority of at least
//! `threshold` positions — guaranteed inside the AVCC bound
//! `N ≥ threshold + S + M`, since even after `S` stragglers the `R ≥
//! threshold + M` responders contain at most `M` Byzantine workers. Outside
//! that model (more corrupted responders than `R − threshold`) a coordinated
//! adversary could shift the round onto a *different* codeword; AVCC keeps
//! the Freivalds check downstream as the belt to this suspender, so a
//! screened round is still verified against the actual computation.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use avcc_field::{batch_inverse, dot, random_vector, Fp, PrimeField, PrimeModulus};
use avcc_poly::linear::{self, LinearSolveError};
use avcc_poly::NttPlan;
use rand::Rng;

use crate::points::EvaluationPoints;
use crate::scheme::SchemeConfig;

/// Fresh-fingerprint attempts before localization gives up and reports
/// [`ScreenOutcome::Unlocalized`]. Each retry fails only on a fingerprint
/// collision (probability ≤ `t/q` per attempt), so four attempts make a
/// spurious `Unlocalized` astronomically unlikely while bounding the work.
pub const SCREEN_RETRIES: usize = 4;

/// Distinct responder sets held before the weight cache resets (same policy
/// as the decoder's basis cache: repetitive straggler patterns hit, random
/// churn means caching is hopeless anyway).
const WEIGHT_CACHE_CAPACITY: usize = 32;

/// Errors raised by [`DualCodeword::screen`] — malformed rounds, mirroring
/// the decoder's validation so engines can treat both uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScreenError {
    /// Too few responders for the dual code to be nontrivial: screening
    /// needs strictly more than the recovery threshold.
    NotScreenable {
        /// Responders provided.
        responders: usize,
        /// Minimum responders required (`threshold + 1`).
        required: usize,
    },
    /// The same worker index appears twice.
    DuplicateWorker {
        /// The repeated worker index.
        worker: usize,
    },
    /// A worker index outside `[0, N)`.
    UnknownWorker {
        /// The offending index.
        worker: usize,
    },
    /// Result vectors disagree in length.
    ShapeMismatch,
    /// No results were supplied at all (the block width is undefined).
    EmptyRound,
}

impl std::fmt::Display for ScreenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScreenError::NotScreenable {
                responders,
                required,
            } => write!(
                f,
                "not screenable: {responders} responders, at least {required} required"
            ),
            ScreenError::DuplicateWorker { worker } => {
                write!(f, "worker {worker} supplied more than one result")
            }
            ScreenError::UnknownWorker { worker } => write!(f, "unknown worker index {worker}"),
            ScreenError::ShapeMismatch => write!(f, "result vectors disagree in length"),
            ScreenError::EmptyRound => write!(f, "no results supplied"),
        }
    }
}

impl std::error::Error for ScreenError {}

/// What the screen concluded about a round of responder blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScreenOutcome {
    /// Every dual-vector syndrome vanished: the blocks lie on one
    /// degree-`threshold − 1` polynomial (up to the documented `(1/q)^k`
    /// escape probability).
    Clean,
    /// Membership failed and the corrupted responders were localized and
    /// validated (worker indices, ascending).
    Corrupted {
        /// The localized corrupted workers.
        workers: Vec<usize>,
    },
    /// Membership failed but localization did not converge (more corrupted
    /// responders than `⌊ν/2⌋`, or repeated fingerprint collisions). The
    /// caller must fall back to its existing verification path.
    Unlocalized,
}

/// The result of one [`DualCodeword::screen`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenReport {
    /// The conclusion (see [`ScreenOutcome`]).
    pub outcome: ScreenOutcome,
    /// Independent dual vectors checked (the `k` in the `(1/q)^k` bound).
    pub vectors: usize,
    /// Field multiply–accumulate operations spent, for the engines' op
    /// accounting (deterministic given the inputs and rng stream).
    pub macs: u64,
}

/// Per-responder-set dual weights `u_i = ∏_{j≠i}(α_i − α_j)^{-1}`, cached
/// keyed by the sorted worker set with hit accounting.
#[derive(Debug)]
struct WeightCache<M: PrimeModulus> {
    entries: HashMap<Vec<usize>, Arc<Vec<Fp<M>>>>,
    hits: u64,
    misses: u64,
}

impl<M: PrimeModulus> Default for WeightCache<M> {
    fn default() -> Self {
        WeightCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

/// The dual-codeword screen bound to a scheme configuration and its
/// evaluation points (must match the encoder's, exactly like the decoder).
#[derive(Debug)]
pub struct DualCodeword<M: PrimeModulus> {
    config: SchemeConfig,
    points: EvaluationPoints<M>,
    /// Forward-NTT plan over the α-coset, present when the layout is in
    /// subgroup position **and** `N` fills the covering coset: evaluates the
    /// random dual polynomial `Q` at every worker point in `O(A log A)`.
    coset: Option<NttPlan<M>>,
    /// Per-responder-set weights (see [`WeightCache`]); interior mutability
    /// because screening takes `&self`.
    cache: Mutex<WeightCache<M>>,
}

impl<M: PrimeModulus> Clone for DualCodeword<M> {
    /// Clones the screen configuration; the weight cache starts empty (it is
    /// a pure accelerator, rebuilt on demand).
    fn clone(&self) -> Self {
        DualCodeword {
            config: self.config,
            points: self.points.clone(),
            coset: self.coset.clone(),
            cache: Mutex::new(WeightCache::default()),
        }
    }
}

impl<M: PrimeModulus> DualCodeword<M> {
    /// Creates a screen on the automatically selected evaluation points for
    /// `config` ([`EvaluationPoints::auto`] is deterministic, so this matches
    /// independently constructed encoders and decoders).
    pub fn new(config: SchemeConfig) -> Self {
        Self::with_points(
            config,
            EvaluationPoints::<M>::auto(config.partitions, config.colluding, config.workers),
        )
    }

    /// Creates a screen on explicitly chosen evaluation points (must match
    /// the encoder's).
    ///
    /// # Panics
    /// Panics if the point counts disagree with the configuration.
    pub fn with_points(config: SchemeConfig, points: EvaluationPoints<M>) -> Self {
        assert_eq!(
            points.alpha().len(),
            config.workers,
            "need one α-point per worker"
        );
        let coset = points
            .ntt_layout()
            .filter(|layout| layout.workers() == config.workers)
            .map(|layout| NttPlan::new(layout.log_workers));
        DualCodeword {
            config,
            points,
            coset,
            cache: Mutex::new(WeightCache::default()),
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// `true` iff a round with `responders` results carries enough
    /// redundancy to screen: the dual code is nontrivial only when
    /// `responders > threshold`.
    pub fn screenable(&self, responders: usize) -> bool {
        responders > self.config.recovery_threshold() && responders <= self.config.workers
    }

    /// The largest corrupted-worker set localization can name with
    /// `responders` results: `⌊(responders − threshold)/2⌋` (the PGZ locator
    /// needs two power sums per error). With exactly `threshold + 1`
    /// responders the screen still *detects* corruption but cannot localize.
    pub fn max_locatable(&self, responders: usize) -> usize {
        responders.saturating_sub(self.config.recovery_threshold()) / 2
    }

    /// Weight-cache accounting: `(hits, misses)` since construction. A
    /// repeated responder set must hit (tested).
    pub fn weight_cache_stats(&self) -> (u64, u64) {
        let cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (cache.hits, cache.misses)
    }

    /// Screens a round of responder blocks for RS-codeword membership with
    /// `vectors ≥ 1` independent dual vectors, localizing corrupted workers
    /// on failure. See the module docs for the algorithm and the
    /// `(1/q)^vectors` escape bound.
    ///
    /// `results` maps worker indices to their returned vectors `Ỹ_i`;
    /// strictly more than the recovery threshold of them must be present
    /// ([`ScreenError::NotScreenable`] otherwise — the caller should skip
    /// screening and keep its existing path).
    pub fn screen<R: Rng + ?Sized>(
        &self,
        results: &[(usize, Vec<Fp<M>>)],
        vectors: usize,
        rng: &mut R,
    ) -> Result<ScreenReport, ScreenError> {
        assert!(vectors >= 1, "need at least one dual vector");
        self.validate(results)?;
        let ordered = Self::sorted_by_worker(results);
        let alphas: Vec<Fp<M>> = ordered
            .iter()
            .map(|(worker, _)| self.points.alpha()[*worker])
            .collect();
        let weights = self.weights_for(&ordered);
        let mut macs = 0u64;

        let full_coset = self.coset.is_some() && ordered.len() == self.config.workers;
        let mut clean = true;
        for _ in 0..vectors {
            if !self.membership_pass(&ordered, &alphas, &weights, full_coset, rng, &mut macs) {
                clean = false;
                break;
            }
        }
        if clean {
            return Ok(ScreenReport {
                outcome: ScreenOutcome::Clean,
                vectors,
                macs,
            });
        }

        let outcome = match self.localize(&ordered, &alphas, &weights, rng, &mut macs) {
            Some(workers) => ScreenOutcome::Corrupted { workers },
            None => ScreenOutcome::Unlocalized,
        };
        Ok(ScreenReport {
            outcome,
            vectors,
            macs,
        })
    }

    /// One membership pass: sample a random dual polynomial `Q` (degree
    /// `< ν`), evaluate it at the responder α-points, and check that the
    /// syndrome `Σ_i u_i·Q(α_i)·Ỹ_i` vanishes in every coordinate.
    fn membership_pass<R: Rng + ?Sized>(
        &self,
        ordered: &[&(usize, Vec<Fp<M>>)],
        alphas: &[Fp<M>],
        weights: &[Fp<M>],
        full_coset: bool,
        rng: &mut R,
        macs: &mut u64,
    ) -> bool {
        let responders = ordered.len();
        let dual_dim = responders - self.config.recovery_threshold();
        let width = ordered[0].1.len();
        let coefficients: Vec<Fp<M>> = random_vector(rng, dual_dim);
        let q_values = self.evaluate_dual_poly(&coefficients, alphas, full_coset);
        let mut accumulator = avcc_field::WideAccumulator::<M>::new(width);
        for (((_, vector), &weight), &q) in ordered.iter().zip(weights).zip(&q_values) {
            accumulator.axpy(weight * q, vector);
        }
        *macs += (responders * width + responders * dual_dim) as u64;
        accumulator
            .finish()
            .into_iter()
            .all(|value| value == Fp::<M>::ZERO)
    }

    /// Evaluates the dual polynomial `Q` (coefficients ascending) at the
    /// responder α-points: a coset-scaled forward NTT when the responders
    /// fill the α-coset (the points are `g·ω_A^i` in worker order, which is
    /// sorted order), Horner per point otherwise.
    fn evaluate_dual_poly(
        &self,
        coefficients: &[Fp<M>],
        alphas: &[Fp<M>],
        full_coset: bool,
    ) -> Vec<Fp<M>> {
        if full_coset {
            let plan = self.coset.as_ref().expect("caller checked the coset plan");
            let layout = self
                .points
                .ntt_layout()
                .expect("a coset plan implies a subgroup layout");
            let mut values = vec![Fp::<M>::ZERO; plan.len()];
            values[..coefficients.len()].copy_from_slice(coefficients);
            // Evaluating at g·ω_A^i = NTT of the g^k-scaled coefficients.
            plan.coset_scale(&mut values, layout.shift);
            plan.forward(&mut values);
            values.truncate(alphas.len());
            return values;
        }
        alphas
            .iter()
            .map(|&alpha| {
                let mut value = Fp::<M>::ZERO;
                for &coefficient in coefficients.iter().rev() {
                    value = value * alpha + coefficient;
                }
                value
            })
            .collect()
    }

    /// Localizes the corrupted responders after a failed membership pass.
    /// Returns the worker indices (ascending) when a locator of `t ≤ ⌊ν/2⌋`
    /// roots is found *and* the remaining responders re-screen clean; `None`
    /// when localization does not converge within [`SCREEN_RETRIES`] fresh
    /// fingerprints.
    fn localize<R: Rng + ?Sized>(
        &self,
        ordered: &[&(usize, Vec<Fp<M>>)],
        alphas: &[Fp<M>],
        weights: &[Fp<M>],
        rng: &mut R,
        macs: &mut u64,
    ) -> Option<Vec<usize>> {
        let responders = ordered.len();
        let dual_dim = responders - self.config.recovery_threshold();
        let max_errors = dual_dim / 2;
        if max_errors == 0 {
            return None;
        }
        let width = ordered[0].1.len();
        for _ in 0..SCREEN_RETRIES {
            // Fingerprint the round: scalar syndromes of ⟨Ỹ_i, ρ⟩ are power
            // sums of the corrupted positions (module docs).
            let rho: Vec<Fp<M>> = random_vector(rng, width);
            let fingerprints: Vec<Fp<M>> = ordered
                .iter()
                .map(|(_, vector)| dot(vector, &rho))
                .collect();
            let mut syndromes = vec![Fp::<M>::ZERO; dual_dim];
            let mut powers = vec![Fp::<M>::ONE; responders];
            for syndrome in syndromes.iter_mut() {
                let mut sum = Fp::<M>::ZERO;
                for (position, (&weight, &phi)) in weights.iter().zip(&fingerprints).enumerate() {
                    sum += weight * phi * powers[position];
                    powers[position] *= alphas[position];
                }
                *syndrome = sum;
            }
            if syndromes.iter().all(|&s| s == Fp::<M>::ZERO) {
                // Every corrupted vector dotted to zero against ρ — retry.
                continue;
            }
            *macs += (responders * width + responders * dual_dim) as u64;
            if let Some(positions) = self.solve_locator(&syndromes, alphas, max_errors, macs) {
                // Validate: the remaining responders must screen clean
                // (always ≥ threshold + t of them after removing t ≤ ν/2).
                let remaining: Vec<&(usize, Vec<Fp<M>>)> = ordered
                    .iter()
                    .enumerate()
                    .filter(|(position, _)| !positions.contains(position))
                    .map(|(_, entry)| *entry)
                    .collect();
                let remaining_alphas: Vec<Fp<M>> = remaining
                    .iter()
                    .map(|(worker, _)| self.points.alpha()[*worker])
                    .collect();
                let remaining_weights = self.weights_for(&remaining);
                if self.membership_pass(
                    &remaining,
                    &remaining_alphas,
                    &remaining_weights,
                    false,
                    rng,
                    macs,
                ) {
                    let mut workers: Vec<usize> = positions.iter().map(|&p| ordered[p].0).collect();
                    workers.sort_unstable();
                    return Some(workers);
                }
            }
        }
        None
    }

    /// The Peterson–Gorenstein–Zierler step: from the `ν` scalar syndromes,
    /// solve the `t × t` Hankel system for the error-locator coefficients
    /// (largest `t ≤ max_errors` first, decrementing past singular systems)
    /// and accept a locator only when it has exactly `t` roots among the
    /// responder α-points. Returns responder *positions*.
    fn solve_locator(
        &self,
        syndromes: &[Fp<M>],
        alphas: &[Fp<M>],
        max_errors: usize,
        macs: &mut u64,
    ) -> Option<Vec<usize>> {
        for t in (1..=max_errors).rev() {
            let mut hankel = Vec::with_capacity(t * t);
            for row in 0..t {
                for column in 0..t {
                    hankel.push(syndromes[row + column]);
                }
            }
            let rhs: Vec<Fp<M>> = (0..t).map(|row| -syndromes[row + t]).collect();
            let lambda = match linear::solve(&hankel, &rhs, t) {
                Ok(solution) => solution,
                Err(LinearSolveError::Singular) => continue,
                Err(LinearSolveError::DimensionMismatch { .. }) => {
                    unreachable!("locator system dimensions are consistent by construction")
                }
            };
            *macs += (t * t * t + alphas.len() * t) as u64;
            // Λ(z) = z^t + λ_{t−1}·z^{t−1} + … + λ_0; its roots among the
            // responder points name the corrupted workers.
            let positions: Vec<usize> = alphas
                .iter()
                .enumerate()
                .filter(|(_, &alpha)| {
                    let mut value = Fp::<M>::ONE;
                    for &coefficient in lambda.iter().rev() {
                        value = value * alpha + coefficient;
                    }
                    // Horner over [λ_0 … λ_{t−1}, 1] descending: the seed ONE
                    // is the monic leading coefficient.
                    value == Fp::<M>::ZERO
                })
                .map(|(position, _)| position)
                .collect();
            if positions.len() == t {
                return Some(positions);
            }
        }
        None
    }

    /// Fetches (or builds and caches) the dual weights
    /// `u_i = ∏_{j≠i}(α_i − α_j)^{-1}` for a canonically ordered responder
    /// set. On the full α-coset the product telescopes to the closed form
    /// `u_i = α_i·(A·g^A)^{-1}` (`α_i^A = g^A` for every coset point), which
    /// is cheap enough to skip the cache entirely.
    fn weights_for(&self, ordered: &[&(usize, Vec<Fp<M>>)]) -> Vec<Fp<M>> {
        if self.coset.is_some() && ordered.len() == self.config.workers {
            let layout = self
                .points
                .ntt_layout()
                .expect("a coset plan implies a subgroup layout");
            let coset_order = layout.workers() as u64;
            let scale = (Fp::<M>::new(coset_order) * layout.shift.pow(coset_order)).inverse();
            return ordered
                .iter()
                .map(|(worker, _)| self.points.alpha()[*worker] * scale)
                .collect();
        }
        let workers: Vec<usize> = ordered.iter().map(|(worker, _)| *worker).collect();
        {
            let mut cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = cache.entries.get(&workers) {
                let hit = Arc::clone(hit);
                cache.hits += 1;
                return hit.as_ref().clone();
            }
            cache.misses += 1;
        }
        // Build outside the lock, same policy as the decoder's basis cache.
        let alphas: Vec<Fp<M>> = workers.iter().map(|&w| self.points.alpha()[w]).collect();
        let mut products = vec![Fp::<M>::ONE; alphas.len()];
        for (i, &alpha_i) in alphas.iter().enumerate() {
            for (j, &alpha_j) in alphas.iter().enumerate() {
                if i != j {
                    products[i] *= alpha_i - alpha_j;
                }
            }
        }
        let built = Arc::new(batch_inverse(&products));
        let mut cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.entries.len() >= WEIGHT_CACHE_CAPACITY {
            cache.entries.clear();
        }
        cache.entries.insert(workers, Arc::clone(&built));
        built.as_ref().clone()
    }

    /// Sorts results by worker index — the canonical order shared with the
    /// weight cache key (arrival order must not matter).
    fn sorted_by_worker(results: &[(usize, Vec<Fp<M>>)]) -> Vec<&(usize, Vec<Fp<M>>)> {
        let mut ordered: Vec<&(usize, Vec<Fp<M>>)> = results.iter().collect();
        ordered.sort_unstable_by_key(|(worker, _)| *worker);
        ordered
    }

    /// Structural validation, mirroring the decoder's.
    fn validate(&self, results: &[(usize, Vec<Fp<M>>)]) -> Result<(), ScreenError> {
        if results.is_empty() {
            return Err(ScreenError::EmptyRound);
        }
        let mut seen = vec![false; self.config.workers];
        let width = results[0].1.len();
        for (worker, vector) in results {
            if *worker >= self.config.workers {
                return Err(ScreenError::UnknownWorker { worker: *worker });
            }
            if seen[*worker] {
                return Err(ScreenError::DuplicateWorker { worker: *worker });
            }
            seen[*worker] = true;
            if vector.len() != width {
                return Err(ScreenError::ShapeMismatch);
            }
        }
        if !self.screenable(results.len()) {
            return Err(ScreenError::NotScreenable {
                responders: results.len(),
                required: self.config.recovery_threshold() + 1,
            });
        }
        Ok(())
    }
}
