//! Payload layouts for every [`FrameKind`].
//!
//! Each message type knows how to `encode` itself into payload bytes and
//! `decode` itself back, and has a `frame(...)` helper producing the full
//! [`Frame`]. Counts are explicit (`u32`) and validated against the payload
//! length on decode; every decoder finishes with `expect_end`, so trailing
//! bytes are a protocol violation rather than silently ignored padding.
//! Byte-level layouts are specified in `docs/WIRE_FORMAT.md`.

use crate::codec::{take_u64_elements, WireReader, WireWriter};
use crate::error::WireError;
use crate::frame::{Frame, FrameKind, PROTOCOL_VERSION};

/// Worker → master handshake opener.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the worker speaks.
    pub version: u16,
    /// The worker index it was launched as.
    pub worker: u32,
}

impl Hello {
    /// A hello for this build's protocol version.
    pub fn new(worker: u32) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            worker,
        }
    }

    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(6);
        w.put_u16(self.version);
        w.put_u32(self.worker);
        w.into_bytes()
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.take_u16("HELLO version")?;
        let worker = r.take_u32("HELLO worker")?;
        r.expect_end("trailing bytes after HELLO")?;
        Ok(Self { version, worker })
    }

    /// The full frame (job/round are 0: connection-scoped).
    pub fn frame(&self) -> Frame {
        Frame::new(FrameKind::Hello, 0, 0, self.encode())
    }
}

/// Master → worker handshake acceptance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The index the master registered this connection under.
    pub worker: u32,
    /// Total fleet width, for the worker's own logging.
    pub workers: u32,
}

impl HelloAck {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(8);
        w.put_u32(self.worker);
        w.put_u32(self.workers);
        w.into_bytes()
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let worker = r.take_u32("HELLO_ACK worker")?;
        let workers = r.take_u32("HELLO_ACK workers")?;
        r.expect_end("trailing bytes after HELLO_ACK")?;
        Ok(Self { worker, workers })
    }

    /// The full frame.
    pub fn frame(&self) -> Frame {
        Frame::new(FrameKind::HelloAck, 0, 0, self.encode())
    }
}

/// Master → worker: a coded matrix block, installed once per job.
///
/// Elements are raw canonical residues; the modulus word lets the worker
/// select its typed kernel (and reject moduli it does not support) without
/// any out-of-band configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The prime modulus the elements live under.
    pub modulus: u64,
    /// Row count.
    pub rows: u32,
    /// Column count.
    pub cols: u32,
    /// `rows * cols` elements, row-major.
    pub elements: Vec<u64>,
}

impl Block {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(16 + self.elements.len() * 8);
        w.put_u64(self.modulus);
        w.put_u32(self.rows);
        w.put_u32(self.cols);
        w.put_u64_bulk(&self.elements);
        w.into_bytes()
    }

    /// Parses payload bytes, validating `rows * cols` against the actual
    /// element count.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let modulus = r.take_u64("BLOCK modulus")?;
        let rows = r.take_u32("BLOCK rows")?;
        let cols = r.take_u32("BLOCK cols")?;
        let count = (rows as usize)
            .checked_mul(cols as usize)
            .ok_or(WireError::Malformed {
                context: "BLOCK rows*cols overflows",
            })?;
        let elements = take_u64_elements(&mut r, count, "BLOCK elements")?;
        r.expect_end("trailing bytes after BLOCK elements")?;
        Ok(Self {
            modulus,
            rows,
            cols,
            elements,
        })
    }

    /// The full `LOAD_BLOCK` frame for `job`.
    pub fn frame(&self, job: u64) -> Frame {
        Frame::new(FrameKind::LoadBlock, job, 0, self.encode())
    }
}

/// Master → worker: one round's inputs (the block is already resident).
///
/// `inputs` is rectangular: `functions` vectors of `input_len` elements each
/// — one per function when a job batches several functions over the same
/// encoded dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Injected straggler delay the worker must sleep before replying
    /// (micro­seconds; 0 for an honest fast worker).
    pub sleep_micros: u64,
    /// The function inputs, each of the same length.
    pub inputs: Vec<Vec<u64>>,
}

impl Task {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let input_len = self.inputs.first().map_or(0, Vec::len);
        debug_assert!(self.inputs.iter().all(|i| i.len() == input_len));
        let mut w = WireWriter::with_capacity(16 + self.inputs.len() * input_len * 8);
        w.put_u64(self.sleep_micros);
        w.put_u32(self.inputs.len() as u32);
        w.put_u32(input_len as u32);
        for input in &self.inputs {
            w.put_u64_bulk(input);
        }
        w.into_bytes()
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let sleep_micros = r.take_u64("TASK sleep")?;
        let functions = r.take_u32("TASK functions")? as usize;
        let input_len = r.take_u32("TASK input_len")? as usize;
        let mut inputs = Vec::with_capacity(functions);
        for _ in 0..functions {
            inputs.push(take_u64_elements(&mut r, input_len, "TASK inputs")?);
        }
        r.expect_end("trailing bytes after TASK inputs")?;
        Ok(Self {
            sleep_micros,
            inputs,
        })
    }

    /// The full frame for `(job, round)`.
    pub fn frame(&self, job: u64, round: u64) -> Frame {
        Frame::new(FrameKind::Task, job, round, self.encode())
    }
}

/// Worker → master: the outputs for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// The worker's index (redundant with the connection, kept for
    /// self-describing frames in captures).
    pub worker: u32,
    /// Wall-clock compute time at the worker (includes any injected
    /// straggler sleep), as an IEEE-754 bit pattern on the wire.
    pub compute_seconds: f64,
    /// One output vector per function, all the same length.
    pub outputs: Vec<Vec<u64>>,
}

impl TaskResult {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let output_len = self.outputs.first().map_or(0, Vec::len);
        debug_assert!(self.outputs.iter().all(|o| o.len() == output_len));
        let mut w = WireWriter::with_capacity(20 + self.outputs.len() * output_len * 8);
        w.put_u32(self.worker);
        w.put_f64(self.compute_seconds);
        w.put_u32(self.outputs.len() as u32);
        w.put_u32(output_len as u32);
        for output in &self.outputs {
            w.put_u64_bulk(output);
        }
        w.into_bytes()
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let worker = r.take_u32("RESULT worker")?;
        let compute_seconds = r.take_f64("RESULT compute_seconds")?;
        let functions = r.take_u32("RESULT functions")? as usize;
        let output_len = r.take_u32("RESULT output_len")? as usize;
        let mut outputs = Vec::with_capacity(functions);
        for _ in 0..functions {
            outputs.push(take_u64_elements(&mut r, output_len, "RESULT outputs")?);
        }
        r.expect_end("trailing bytes after RESULT outputs")?;
        Ok(Self {
            worker,
            compute_seconds,
            outputs,
        })
    }

    /// The full frame for `(job, round)`.
    pub fn frame(&self, job: u64, round: u64) -> Frame {
        Frame::new(FrameKind::TaskResult, job, round, self.encode())
    }
}

/// The injectable one-shot faults a worker can be armed with (test harness
/// only — a production worker simply never receives `FAULT` frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultKind {
    /// Flip a payload byte after the checksum is computed → the master sees
    /// a checksum mismatch.
    CorruptPayload = 1,
    /// Flip a byte of the checksum itself.
    BadCrc = 2,
    /// Write only the first half of the result frame, then drop the
    /// connection.
    Truncate = 3,
    /// Send the result with protocol version `0xFFFF` (checksum valid).
    WrongVersion = 4,
    /// Compute the result, then drop the connection without sending it.
    Disconnect = 5,
}

impl FaultKind {
    /// Parses the discriminant byte.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            1 => Self::CorruptPayload,
            2 => Self::BadCrc,
            3 => Self::Truncate,
            4 => Self::WrongVersion,
            5 => Self::Disconnect,
            _ => {
                return Err(WireError::Malformed {
                    context: "unknown FAULT kind",
                })
            }
        })
    }
}

/// Master → worker: arm `kind` for the worker's next result send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fault to inject.
    pub kind: FaultKind,
}

impl Fault {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        vec![self.kind as u8]
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let kind = FaultKind::from_code(r.take_u8("FAULT kind")?)?;
        r.expect_end("trailing bytes after FAULT")?;
        Ok(Self { kind })
    }

    /// The full frame.
    pub fn frame(&self) -> Frame {
        Frame::new(FrameKind::Fault, 0, 0, self.encode())
    }
}

/// Worker → master: a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorMsg {
    /// Human-readable reason (UTF-8).
    pub message: String,
}

impl ErrorMsg {
    /// Payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.message.as_bytes().to_vec()
    }

    /// Parses payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let message = String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            context: "ERROR message is not UTF-8",
        })?;
        Ok(Self { message })
    }

    /// The full frame for `(job, round)`.
    pub fn frame(&self, job: u64, round: u64) -> Frame {
        Frame::new(FrameKind::Error, job, round, self.encode())
    }
}

/// On-the-wire size of a `TASK_RESULT` frame carrying `functions` output
/// vectors of `output_len` elements — used by the in-process executors so
/// their modeled network cost matches what the socket runtime actually
/// ships.
pub fn result_frame_bytes(functions: usize, output_len: usize) -> usize {
    crate::frame::HEADER_LEN + 20 + functions * output_len * 8 + crate::frame::TRAILER_LEN
}

/// On-the-wire size of a `TASK` frame carrying `functions` input vectors of
/// `input_len` elements.
pub fn task_frame_bytes(functions: usize, input_len: usize) -> usize {
    crate::frame::HEADER_LEN + 16 + functions * input_len * 8 + crate::frame::TRAILER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let msg = Hello::new(3);
        let back = Hello::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.version, PROTOCOL_VERSION);
        assert_eq!(msg.frame().kind, FrameKind::Hello);
    }

    #[test]
    fn hello_ack_roundtrip() {
        let msg = HelloAck {
            worker: 2,
            workers: 12,
        };
        assert_eq!(HelloAck::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn block_roundtrip() {
        let msg = Block {
            modulus: (1 << 25) - 39,
            rows: 3,
            cols: 4,
            elements: (0..12).collect(),
        };
        let frame = msg.frame(9);
        assert_eq!(frame.kind, FrameKind::LoadBlock);
        assert_eq!(frame.job, 9);
        assert_eq!(Block::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn block_element_count_must_match_dims() {
        let msg = Block {
            modulus: 251,
            rows: 3,
            cols: 4,
            elements: (0..12).collect(),
        };
        let mut bytes = msg.encode();
        bytes.extend_from_slice(&0u64.to_le_bytes()); // 13th element
        assert!(Block::decode(&bytes).is_err());
        bytes.truncate(bytes.len() - 16); // 11 elements
        assert!(matches!(
            Block::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn task_roundtrip() {
        let msg = Task {
            sleep_micros: 1500,
            inputs: vec![vec![1, 2, 3], vec![4, 5, 6]],
        };
        assert_eq!(Task::decode(&msg.encode()).unwrap(), msg);
        assert_eq!(msg.encode().len() + 32, task_frame_bytes(2, 3));
    }

    #[test]
    fn task_result_roundtrip() {
        let msg = TaskResult {
            worker: 5,
            compute_seconds: 0.001_234,
            outputs: vec![vec![10, 20], vec![30, 40], vec![50, 60]],
        };
        assert_eq!(TaskResult::decode(&msg.encode()).unwrap(), msg);
        assert_eq!(msg.encode().len() + 32, result_frame_bytes(3, 2));
    }

    #[test]
    fn empty_task_result_roundtrip() {
        let msg = TaskResult {
            worker: 0,
            compute_seconds: 0.0,
            outputs: Vec::new(),
        };
        assert_eq!(TaskResult::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn fault_roundtrip() {
        for kind in [
            FaultKind::CorruptPayload,
            FaultKind::BadCrc,
            FaultKind::Truncate,
            FaultKind::WrongVersion,
            FaultKind::Disconnect,
        ] {
            let msg = Fault { kind };
            assert_eq!(Fault::decode(&msg.encode()).unwrap(), msg);
        }
        assert!(Fault::decode(&[99]).is_err());
    }

    #[test]
    fn error_msg_roundtrip() {
        let msg = ErrorMsg {
            message: "no block loaded for job 7".to_string(),
        };
        assert_eq!(ErrorMsg::decode(&msg.encode()).unwrap(), msg);
        assert!(ErrorMsg::decode(&[0xFF, 0xFE]).is_err());
    }
}
