//! The frame layer: every byte on a socket is part of exactly one frame.
//!
//! Layout (all integers little-endian; full spec in `docs/WIRE_FORMAT.md`):
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"AVCC"
//!      4     2  version          u16, currently 1
//!      6     1  kind             FrameKind discriminant
//!      7     1  flags            reserved — senders write 0, receivers ignore
//!      8     8  job id           u64
//!     16     8  round serial     u64
//!     24     4  payload length   u32 (bytes)
//!     28     n  payload          kind-specific message (see `message`)
//!   28+n     4  checksum         CRC-32C over bytes [0, 28+n)
//! ```
//!
//! Validation order on receive is deliberate: magic → version → length bound
//! → checksum → kind. Version is checked *before* the checksum so a future
//! protocol revision may change the checksum algorithm; the kind byte is
//! checked *after* so an unknown kind is only reported for frames proven
//! intact (a corrupted kind byte surfaces as the checksum failure it is).

use std::io::{ErrorKind, Read, Write};

use crate::crc::Crc32c;
use crate::error::WireError;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"AVCC";
/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Fixed header size in bytes (magic through payload length).
pub const HEADER_LEN: usize = 28;
/// Trailing checksum size in bytes.
pub const TRAILER_LEN: usize = 4;
/// Default cap on payload size (256 MiB): bounds allocation from a
/// corrupted or hostile length field.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 28;

/// What a frame carries; the `kind` byte at offset 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → master: first frame on a connection, carries the worker's
    /// protocol version and claimed index.
    Hello = 0x01,
    /// Master → worker: accepts the handshake.
    HelloAck = 0x02,
    /// Master → worker: install a coded block for a job (sticky across
    /// rounds — blocks ship once per job, not once per round).
    LoadBlock = 0x10,
    /// Master → worker: compute one round over previously loaded blocks.
    Task = 0x11,
    /// Worker → master: the outputs for one task.
    TaskResult = 0x12,
    /// Master → worker (test harness): arm a one-shot injected fault.
    Fault = 0x20,
    /// Master → worker: drain and exit.
    Shutdown = 0x30,
    /// Worker → master: acknowledges shutdown; connection closes next.
    Bye = 0x31,
    /// Worker → master: a request could not be served (carries a message).
    Error = 0x3F,
}

impl FrameKind {
    /// The wire discriminant.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a kind byte.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0x01 => Self::Hello,
            0x02 => Self::HelloAck,
            0x10 => Self::LoadBlock,
            0x11 => Self::Task,
            0x12 => Self::TaskResult,
            0x20 => Self::Fault,
            0x30 => Self::Shutdown,
            0x31 => Self::Bye,
            0x3F => Self::Error,
            _ => return Err(WireError::UnknownFrameKind { code }),
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Job the frame belongs to (0 for connection-level frames).
    pub job: u64,
    /// Round serial within the job (0 when not round-scoped).
    pub round: u64,
    /// Kind-specific message bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, job: u64, round: u64, payload: Vec<u8>) -> Self {
        Self {
            kind,
            job,
            round,
            payload,
        }
    }

    /// Total on-the-wire size of this frame in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + TRAILER_LEN
    }

    /// Encodes header + payload + CRC-32C trailer.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_version(PROTOCOL_VERSION)
    }

    /// Encodes with an explicit version word. The checksum is computed over
    /// the bytes actually written, so a non-standard version yields a frame
    /// whose *only* defect is its version — this is how the `WrongVersion`
    /// fault injection isolates version-mismatch handling from checksum
    /// handling.
    pub fn encode_with_version(&self, version: u16) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.push(self.kind.code());
        buf.push(0); // flags: reserved
        buf.extend_from_slice(&self.job.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
        let mut crc = Crc32c::new();
        crc.update(&buf);
        buf.extend_from_slice(&crc.finalize().to_le_bytes());
        buf
    }
}

/// Encodes and writes one frame; returns the bytes written.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<usize, WireError> {
    let bytes = frame.encode();
    writer
        .write_all(&bytes)
        .map_err(|e| WireError::io(e, "writing frame"))?;
    writer
        .flush()
        .map_err(|e| WireError::io(e, "flushing frame"))?;
    Ok(bytes.len())
}

/// Reads and validates one frame; returns it with the bytes consumed.
///
/// EOF exactly at a frame boundary is [`WireError::Closed`] (orderly
/// shutdown); EOF anywhere inside a frame is [`WireError::Truncated`] (a
/// partial write reached us before the peer died).
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_payload: usize,
) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or_closed(reader, &mut header, "frame header")?;

    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let kind_code = header[6];
    // header[7] is the reserved flags byte: receivers ignore it.
    let job = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let round = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(header[24..28].try_into().expect("4 bytes")) as usize;
    if payload_len > max_payload {
        return Err(WireError::FrameTooLarge {
            len: payload_len,
            max: max_payload,
        });
    }

    let mut body = vec![0u8; payload_len + TRAILER_LEN];
    read_exact_mid_frame(reader, &mut body, "frame payload")?;
    let found = u32::from_le_bytes(body[payload_len..].try_into().expect("4 bytes"));
    let mut crc = Crc32c::new();
    crc.update(&header).update(&body[..payload_len]);
    let computed = crc.finalize();
    if computed != found {
        return Err(WireError::ChecksumMismatch { computed, found });
    }

    let kind = FrameKind::from_code(kind_code)?;
    body.truncate(payload_len);
    Ok((
        Frame {
            kind,
            job,
            round,
            payload: body,
        },
        HEADER_LEN + payload_len + TRAILER_LEN,
    ))
}

/// `read_exact` that maps EOF-before-any-byte to `Closed` and EOF-mid-buffer
/// to `Truncated`.
fn read_exact_or_closed<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed { context }
                } else {
                    WireError::Truncated { context }
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::io(e, context)),
        }
    }
    Ok(())
}

/// `read_exact` inside a frame: any EOF is truncation.
fn read_exact_mid_frame<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Truncated { context }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::io(e, context)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(FrameKind::Task, 7, 42, vec![1, 2, 3, 4, 5])
    }

    #[test]
    fn roundtrip() {
        let frame = sample();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), frame.wire_len());
        let (back, consumed) = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let frame = Frame::new(FrameKind::Shutdown, 0, 0, Vec::new());
        let bytes = frame.encode();
        assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
        let (back, _) = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn eof_at_boundary_is_closed_but_mid_frame_is_truncated() {
        let bytes = sample().encode();
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Closed { .. })
        ));
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let mut partial = &bytes[..cut];
            assert!(
                matches!(
                    read_frame(&mut partial, DEFAULT_MAX_PAYLOAD),
                    Err(WireError::Truncated { .. })
                ),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_checked_before_checksum() {
        // A frame with a wrong version *and* a CRC valid for its bytes must
        // report the version, proving the check order.
        let bytes = sample().encode_with_version(999);
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnsupportedVersion {
                ours: PROTOCOL_VERSION,
                theirs: 999
            })
        ));
    }

    #[test]
    fn every_corrupted_byte_is_caught() {
        // Flip each byte of the frame in turn: every single-byte corruption
        // must surface as *some* WireError (usually ChecksumMismatch; magic/
        // version/length corruptions may be caught earlier), never Ok.
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xA5;
            assert!(
                read_frame(&mut corrupted.as_slice(), DEFAULT_MAX_PAYLOAD).is_err(),
                "byte {i} corruption went undetected"
            );
        }
    }

    #[test]
    fn unknown_kind_reported_only_when_intact() {
        let frame = Frame {
            kind: FrameKind::Task,
            job: 0,
            round: 0,
            payload: Vec::new(),
        };
        let mut bytes = frame.encode();
        // Overwrite the kind byte and fix up the checksum so the frame is
        // intact-but-unknown.
        bytes[6] = 0x7E;
        let crc_at = bytes.len() - TRAILER_LEN;
        let mut crc = Crc32c::new();
        crc.update(&bytes[..crc_at]);
        let fixed = crc.finalize().to_le_bytes();
        bytes[crc_at..].copy_from_slice(&fixed);
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnknownFrameKind { code: 0x7E })
        ));
    }

    #[test]
    fn oversized_payload_rejected_without_allocation() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        header.push(FrameKind::Task.code());
        header.push(0);
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut header.as_slice(), 1024),
            Err(WireError::FrameTooLarge {
                len,
                max: 1024
            }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = sample();
        let b = Frame::new(FrameKind::Bye, 1, 2, vec![9]);
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut cursor = stream.as_slice();
        let (fa, _) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        let (fb, _) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(fa, a);
        assert_eq!(fb, b);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Closed { .. })
        ));
    }
}
