//! The worker protocol loop, shared by the `avcc-worker` binary (process
//! backend) and the in-process thread backend of `SocketExecutor`.
//!
//! A worker is a pure request/response state machine over one stream:
//!
//! 1. send `HELLO{version, worker}` — the first bytes on any connection;
//! 2. wait for `HELLO_ACK` (anything else, or a version the master already
//!    rejected by closing, terminates the worker);
//! 3. loop: `LOAD_BLOCK` installs a typed block per job; `TASK` computes
//!    over the resident block and replies `TASK_RESULT` (or `ERROR` if no
//!    block / bad inputs); `FAULT` arms a one-shot injected fault for the
//!    next result send; `SHUTDOWN` replies `BYE` and exits cleanly.
//!
//! Being generic over `Read + Write` keeps the loop transport-agnostic: the
//! binary hands it a `TcpStream` or `UnixStream`, tests can hand it an
//! in-memory duplex pipe.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::thread;
use std::time::{Duration, Instant};

use crate::compute::TypedBlock;
use crate::error::WireError;
use crate::frame::{read_frame, write_frame, Frame, FrameKind, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use crate::message::{Block, ErrorMsg, Fault, FaultKind, Hello, HelloAck, Task, TaskResult};

/// Knobs for the worker loop.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Largest payload the worker will accept.
    pub max_payload: usize,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Runs the worker protocol over `stream` until shutdown (Ok) or a fatal
/// wire error (Err — the caller drops the stream, which is what the master's
/// eviction machinery observes).
pub fn serve_connection<S: Read + Write>(
    mut stream: S,
    worker: u32,
    options: &WorkerOptions,
) -> Result<(), WireError> {
    write_frame(&mut stream, &Hello::new(worker).frame())?;
    let (ack, _) = read_frame(&mut stream, options.max_payload)?;
    if ack.kind != FrameKind::HelloAck {
        return Err(WireError::UnexpectedFrame {
            context: "waiting for HELLO_ACK",
            code: ack.kind.code(),
        });
    }
    HelloAck::decode(&ack.payload)?;

    let mut blocks: HashMap<u64, TypedBlock> = HashMap::new();
    let mut armed: Option<FaultKind> = None;
    loop {
        let (frame, _) = read_frame(&mut stream, options.max_payload)?;
        match frame.kind {
            FrameKind::LoadBlock => {
                let block = Block::decode(&frame.payload)?;
                blocks.insert(frame.job, TypedBlock::from_block(&block)?);
            }
            FrameKind::Task => {
                let task = Task::decode(&frame.payload)?;
                let started = Instant::now();
                let response = match blocks.get(&frame.job) {
                    None => ErrorMsg {
                        message: format!("no block loaded for job {}", frame.job),
                    }
                    .frame(frame.job, frame.round),
                    Some(block) => match block.execute(&task.inputs) {
                        Err(err) => ErrorMsg {
                            message: err.to_string(),
                        }
                        .frame(frame.job, frame.round),
                        Ok(outputs) => {
                            if task.sleep_micros > 0 {
                                thread::sleep(Duration::from_micros(task.sleep_micros));
                            }
                            TaskResult {
                                worker,
                                compute_seconds: started.elapsed().as_secs_f64(),
                                outputs,
                            }
                            .frame(frame.job, frame.round)
                        }
                    },
                };
                send_with_fault(&mut stream, &response, armed.take())?;
            }
            FrameKind::Fault => {
                armed = Some(Fault::decode(&frame.payload)?.kind);
            }
            FrameKind::Shutdown => {
                // Best-effort BYE: the master may already have gone away.
                let _ = write_frame(&mut stream, &Frame::new(FrameKind::Bye, 0, 0, Vec::new()));
                return Ok(());
            }
            other => {
                return Err(WireError::UnexpectedFrame {
                    context: "in the worker task loop",
                    code: other.code(),
                })
            }
        }
    }
}

/// Sends `frame`, applying an armed injected fault if present. Faults that
/// sabotage the connection return `Err` so the caller tears the stream down
/// exactly as a real crash would.
fn send_with_fault<S: Write>(
    stream: &mut S,
    frame: &Frame,
    fault: Option<FaultKind>,
) -> Result<(), WireError> {
    let Some(fault) = fault else {
        write_frame(stream, frame)?;
        return Ok(());
    };
    match fault {
        FaultKind::CorruptPayload => {
            let mut bytes = frame.encode();
            // Flip a payload byte *after* the checksum was computed; if the
            // payload is empty, flip the kind byte instead. Either way the
            // CRC no longer matches the bytes.
            let target = if frame.payload.is_empty() {
                6
            } else {
                HEADER_LEN
            };
            bytes[target] ^= 0xFF;
            write_raw(stream, &bytes)
        }
        FaultKind::BadCrc => {
            let mut bytes = frame.encode();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            write_raw(stream, &bytes)
        }
        FaultKind::WrongVersion => {
            // encode_with_version recomputes the CRC over the altered
            // header, so the version word is the frame's only defect.
            write_raw(stream, &frame.encode_with_version(0xFFFF))
        }
        FaultKind::Truncate => {
            let bytes = frame.encode();
            write_raw(stream, &bytes[..bytes.len() / 2])?;
            Err(WireError::Malformed {
                context: "injected truncation: half a frame written, closing",
            })
        }
        FaultKind::Disconnect => Err(WireError::Malformed {
            context: "injected disconnect: result computed but never sent",
        }),
    }
}

fn write_raw<S: Write>(stream: &mut S, bytes: &[u8]) -> Result<(), WireError> {
    stream
        .write_all(bytes)
        .map_err(|e| WireError::io(e, "writing injected-fault frame"))?;
    stream
        .flush()
        .map_err(|e| WireError::io(e, "flushing injected-fault frame"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PROTOCOL_VERSION;
    use std::io;
    use std::sync::mpsc;

    /// Minimal in-memory duplex: reads pull from one channel, writes push to
    /// another. Enough to drive the worker loop without sockets.
    struct Pipe {
        rx: mpsc::Receiver<Vec<u8>>,
        tx: mpsc::Sender<Vec<u8>>,
        pending: Vec<u8>,
    }

    fn duplex() -> (Pipe, Pipe) {
        let (a_tx, a_rx) = mpsc::channel();
        let (b_tx, b_rx) = mpsc::channel();
        (
            Pipe {
                rx: a_rx,
                tx: b_tx,
                pending: Vec::new(),
            },
            Pipe {
                rx: b_rx,
                tx: a_tx,
                pending: Vec::new(),
            },
        )
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending.is_empty() {
                match self.rx.recv() {
                    Ok(bytes) => self.pending = bytes,
                    Err(_) => return Ok(0), // peer hung up
                }
            }
            let n = self.pending.len().min(buf.len());
            buf[..n].copy_from_slice(&self.pending[..n]);
            self.pending.drain(..n);
            Ok(n)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx
                .send(buf.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))?;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn spawn_worker(worker: u32) -> (Pipe, thread::JoinHandle<Result<(), WireError>>) {
        let (master_side, worker_side) = duplex();
        let handle =
            thread::spawn(move || serve_connection(worker_side, worker, &WorkerOptions::default()));
        (master_side, handle)
    }

    fn read_one(master: &mut Pipe) -> Frame {
        read_frame(master, DEFAULT_MAX_PAYLOAD).unwrap().0
    }

    #[test]
    fn handshake_load_task_shutdown() {
        let (mut master, handle) = spawn_worker(4);

        let hello = read_one(&mut master);
        assert_eq!(hello.kind, FrameKind::Hello);
        let hello = Hello::decode(&hello.payload).unwrap();
        assert_eq!(hello.worker, 4);
        assert_eq!(hello.version, PROTOCOL_VERSION);

        write_frame(
            &mut master,
            &HelloAck {
                worker: 4,
                workers: 5,
            }
            .frame(),
        )
        .unwrap();

        let block = Block {
            modulus: 251,
            rows: 2,
            cols: 2,
            elements: vec![1, 2, 3, 4],
        };
        write_frame(&mut master, &block.frame(11)).unwrap();
        write_frame(
            &mut master,
            &Task {
                sleep_micros: 0,
                inputs: vec![vec![5, 6]],
            }
            .frame(11, 1),
        )
        .unwrap();

        let result = read_one(&mut master);
        assert_eq!(result.kind, FrameKind::TaskResult);
        assert_eq!((result.job, result.round), (11, 1));
        let result = TaskResult::decode(&result.payload).unwrap();
        // [1 2; 3 4] * [5, 6] = [17, 39] mod 251
        assert_eq!(result.outputs, vec![vec![17, 39]]);
        assert_eq!(result.worker, 4);
        assert!(result.compute_seconds >= 0.0);

        write_frame(&mut master, &Frame::new(FrameKind::Shutdown, 0, 0, vec![])).unwrap();
        assert_eq!(read_one(&mut master).kind, FrameKind::Bye);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn task_without_block_yields_error_frame() {
        let (mut master, handle) = spawn_worker(0);
        assert_eq!(read_one(&mut master).kind, FrameKind::Hello);
        write_frame(
            &mut master,
            &HelloAck {
                worker: 0,
                workers: 1,
            }
            .frame(),
        )
        .unwrap();
        write_frame(
            &mut master,
            &Task {
                sleep_micros: 0,
                inputs: vec![],
            }
            .frame(99, 1),
        )
        .unwrap();
        let reply = read_one(&mut master);
        assert_eq!(reply.kind, FrameKind::Error);
        let msg = ErrorMsg::decode(&reply.payload).unwrap();
        assert!(msg.message.contains("job 99"), "{}", msg.message);
        write_frame(&mut master, &Frame::new(FrameKind::Shutdown, 0, 0, vec![])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn injected_faults_produce_the_advertised_defects() {
        use FaultKind::*;
        for kind in [CorruptPayload, BadCrc, WrongVersion, Truncate, Disconnect] {
            let (mut master, handle) = spawn_worker(1);
            assert_eq!(read_one(&mut master).kind, FrameKind::Hello);
            write_frame(
                &mut master,
                &HelloAck {
                    worker: 1,
                    workers: 2,
                }
                .frame(),
            )
            .unwrap();
            let block = Block {
                modulus: 251,
                rows: 1,
                cols: 1,
                elements: vec![2],
            };
            write_frame(&mut master, &block.frame(1)).unwrap();
            write_frame(&mut master, &Fault { kind }.frame()).unwrap();
            write_frame(
                &mut master,
                &Task {
                    sleep_micros: 0,
                    inputs: vec![vec![3]],
                }
                .frame(1, 1),
            )
            .unwrap();

            let observed = read_frame(&mut master, DEFAULT_MAX_PAYLOAD);
            match kind {
                CorruptPayload | BadCrc => assert!(
                    matches!(observed, Err(WireError::ChecksumMismatch { .. })),
                    "{kind:?} -> {observed:?}"
                ),
                WrongVersion => assert!(
                    matches!(
                        observed,
                        Err(WireError::UnsupportedVersion { theirs: 0xFFFF, .. })
                    ),
                    "{kind:?} -> {observed:?}"
                ),
                Truncate => assert!(
                    matches!(observed, Err(WireError::Truncated { .. })),
                    "{kind:?} -> {observed:?}"
                ),
                Disconnect => assert!(
                    matches!(observed, Err(WireError::Closed { .. })),
                    "{kind:?} -> {observed:?}"
                ),
            }
            // The worker loop itself exits with the injection error for the
            // connection-sabotaging faults, Ok-continues otherwise.
            match kind {
                Truncate | Disconnect => assert!(handle.join().unwrap().is_err()),
                WrongVersion => {
                    // read_frame stopped at the header, so the rest of the
                    // faulted frame is still buffered: the master side of a
                    // real runtime evicts (stops reading) here. Just shut
                    // the worker down without reading further.
                    write_frame(&mut master, &Frame::new(FrameKind::Shutdown, 0, 0, vec![]))
                        .unwrap();
                    handle.join().unwrap().unwrap();
                }
                CorruptPayload | BadCrc => {
                    // The corrupted frame had an intact length field, so the
                    // stream stays frame-aligned: a clean round must follow.
                    write_frame(
                        &mut master,
                        &Task {
                            sleep_micros: 0,
                            inputs: vec![vec![3]],
                        }
                        .frame(1, 2),
                    )
                    .unwrap();
                    let next = read_one(&mut master);
                    assert_eq!(next.kind, FrameKind::TaskResult);
                    assert_eq!(
                        TaskResult::decode(&next.payload).unwrap().outputs,
                        vec![vec![6]]
                    );
                    write_frame(&mut master, &Frame::new(FrameKind::Shutdown, 0, 0, vec![]))
                        .unwrap();
                    handle.join().unwrap().unwrap();
                }
            }
        }
    }
}
