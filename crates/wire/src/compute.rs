//! Worker-side typed compute: from a modulus-tagged [`Block`] to the same
//! `mat_vec` kernel the in-process executors run.
//!
//! The wire layer is modulus-erased (`u64` residues); this module is where a
//! worker re-types a block once at `LOAD_BLOCK` time — validating every
//! element against the canonical-residue invariant — and then executes tasks
//! with the identical register-blocked [`avcc_linalg::mat_vec`] kernel the
//! threaded executor uses. Same kernel, same canonical residues in and out:
//! this is what makes socket results bit-identical to in-process results.

use avcc_field::{Fp, PrimeField, PrimeModulus, P25, P251, P61, P64};
use avcc_linalg::{mat_vec, Matrix};

use crate::error::WireError;
use crate::message::Block;

/// The four moduli this build can compute under.
pub const SUPPORTED_MODULI: [u64; 4] = [P25::MODULUS, P61::MODULUS, P251::MODULUS, P64::MODULUS];

/// A block re-typed under its modulus, ready to multiply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedBlock {
    /// `q = 2^25 − 39` (the paper's field).
    P25(Matrix<Fp<P25>>),
    /// `q = 2^61 − 1`.
    P61(Matrix<Fp<P61>>),
    /// `q = 251` (exhaustive-test field).
    P251(Matrix<Fp<P251>>),
    /// Goldilocks `q = 2^64 − 2^32 + 1` (NTT field).
    P64(Matrix<Fp<P64>>),
}

fn typed_matrix<M: PrimeModulus>(block: &Block) -> Result<Matrix<Fp<M>>, WireError> {
    let mut data = Vec::with_capacity(block.elements.len());
    for (index, &raw) in block.elements.iter().enumerate() {
        if raw >= M::MODULUS {
            return Err(WireError::NonCanonical {
                index,
                value: raw,
                modulus: M::MODULUS,
            });
        }
        data.push(<Fp<M> as PrimeField>::from_u64(raw));
    }
    Ok(Matrix::from_vec(
        block.rows as usize,
        block.cols as usize,
        data,
    ))
}

fn execute_typed<M: PrimeModulus>(
    matrix: &Matrix<Fp<M>>,
    inputs: &[Vec<u64>],
) -> Result<Vec<Vec<u64>>, WireError> {
    let mut outputs = Vec::with_capacity(inputs.len());
    for input in inputs {
        if input.len() != matrix.cols() {
            return Err(WireError::Malformed {
                context: "TASK input length does not match block columns",
            });
        }
        let mut typed = Vec::with_capacity(input.len());
        for (index, &raw) in input.iter().enumerate() {
            if raw >= M::MODULUS {
                return Err(WireError::NonCanonical {
                    index,
                    value: raw,
                    modulus: M::MODULUS,
                });
            }
            typed.push(<Fp<M> as PrimeField>::from_u64(raw));
        }
        let product = mat_vec(matrix, &typed);
        outputs.push(product.into_iter().map(PrimeField::to_u64).collect());
    }
    Ok(outputs)
}

impl TypedBlock {
    /// Re-types a wire block, rejecting unknown moduli and non-canonical
    /// elements.
    pub fn from_block(block: &Block) -> Result<Self, WireError> {
        match block.modulus {
            m if m == P25::MODULUS => Ok(Self::P25(typed_matrix::<P25>(block)?)),
            m if m == P61::MODULUS => Ok(Self::P61(typed_matrix::<P61>(block)?)),
            m if m == P251::MODULUS => Ok(Self::P251(typed_matrix::<P251>(block)?)),
            m if m == P64::MODULUS => Ok(Self::P64(typed_matrix::<P64>(block)?)),
            other => Err(WireError::UnknownModulus { modulus: other }),
        }
    }

    /// Row count of the block.
    pub fn rows(&self) -> usize {
        match self {
            Self::P25(m) => m.rows(),
            Self::P61(m) => m.rows(),
            Self::P251(m) => m.rows(),
            Self::P64(m) => m.rows(),
        }
    }

    /// Column count of the block.
    pub fn cols(&self) -> usize {
        match self {
            Self::P25(m) => m.cols(),
            Self::P61(m) => m.cols(),
            Self::P251(m) => m.cols(),
            Self::P64(m) => m.cols(),
        }
    }

    /// The modulus the block is typed under.
    pub fn modulus(&self) -> u64 {
        match self {
            Self::P25(_) => P25::MODULUS,
            Self::P61(_) => P61::MODULUS,
            Self::P251(_) => P251::MODULUS,
            Self::P64(_) => P64::MODULUS,
        }
    }

    /// Multiplies the block against each input vector, returning canonical
    /// residues.
    pub fn execute(&self, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, WireError> {
        match self {
            Self::P25(m) => execute_typed(m, inputs),
            Self::P61(m) => execute_typed(m, inputs),
            Self::P251(m) => execute_typed(m, inputs),
            Self::P64(m) => execute_typed(m, inputs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F251;

    fn block_251() -> Block {
        Block {
            modulus: 251,
            rows: 2,
            cols: 3,
            elements: vec![1, 2, 3, 4, 5, 6],
        }
    }

    #[test]
    fn execute_matches_serial_mat_vec() {
        let typed = TypedBlock::from_block(&block_251()).unwrap();
        let outputs = typed.execute(&[vec![7, 8, 9]]).unwrap();
        let matrix = Matrix::from_vec(2, 3, (1..=6u64).map(F251::new).collect());
        let expected: Vec<u64> = mat_vec(&matrix, &[F251::new(7), F251::new(8), F251::new(9)])
            .into_iter()
            .map(PrimeField::to_u64)
            .collect();
        assert_eq!(outputs, vec![expected]);
    }

    #[test]
    fn unknown_modulus_rejected() {
        let mut block = block_251();
        block.modulus = 97;
        assert_eq!(
            TypedBlock::from_block(&block).unwrap_err(),
            WireError::UnknownModulus { modulus: 97 }
        );
    }

    #[test]
    fn non_canonical_block_element_rejected() {
        let mut block = block_251();
        block.elements[4] = 251;
        assert!(matches!(
            TypedBlock::from_block(&block).unwrap_err(),
            WireError::NonCanonical { index: 4, .. }
        ));
    }

    #[test]
    fn non_canonical_input_rejected() {
        let typed = TypedBlock::from_block(&block_251()).unwrap();
        assert!(matches!(
            typed.execute(&[vec![7, 252, 9]]).unwrap_err(),
            WireError::NonCanonical { index: 1, .. }
        ));
    }

    #[test]
    fn wrong_input_length_rejected() {
        let typed = TypedBlock::from_block(&block_251()).unwrap();
        assert!(typed.execute(&[vec![7, 8]]).is_err());
    }

    #[test]
    fn all_supported_moduli_type_check() {
        for modulus in SUPPORTED_MODULI {
            let block = Block {
                modulus,
                rows: 1,
                cols: 2,
                elements: vec![0, 1],
            };
            let typed = TypedBlock::from_block(&block).unwrap();
            assert_eq!(typed.modulus(), modulus);
            assert_eq!((typed.rows(), typed.cols()), (1, 2));
        }
    }
}
