//! Little-endian primitive codec, and the *real* implementations of the
//! workspace's serde-shaped traits.
//!
//! Every multi-byte integer on the wire is little-endian. [`WireWriter`] and
//! [`WireReader`] are the only places bytes are produced or consumed;
//! everything above them (messages, frames) is layout, not byte twiddling.
//!
//! `&mut WireWriter` implements [`serde::Serializer`] and `&mut WireReader`
//! implements [`serde::Deserializer`], so any type with a hand-written
//! `Serialize`/`Deserialize` impl — notably `Fp<M>`, which writes its
//! canonical `u64` residue — serializes onto the wire through the exact trait
//! surface the rest of the workspace already annotates. The no-op *derived*
//! impls (which emit `serialize_unit`) are rejected loudly rather than
//! silently writing nothing.

use avcc_field::{Fp, PrimeField, PrimeModulus};

use crate::error::WireError;

/// Append-only little-endian byte sink.
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as the little-endian bytes of its IEEE-754 bit
    /// pattern (exact round-trip, no text formatting).
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` slice in one pre-reserved pass — the bulk path used
    /// for element arrays (benched against the per-element serde path by
    /// `wire_encode`, gated not-worse).
    ///
    /// Values are staged through a stack buffer 16 at a time so the vector
    /// pays one capacity check per 128 bytes instead of one per element.
    pub fn put_u64_bulk(&mut self, values: &[u64]) {
        self.buf.reserve(values.len() * 8);
        let mut staged = [0u8; 128];
        let mut chunks = values.chunks_exact(16);
        for chunk in &mut chunks {
            for (slot, &value) in staged.chunks_exact_mut(8).zip(chunk) {
                slot.copy_from_slice(&value.to_le_bytes());
            }
            self.buf.extend_from_slice(&staged);
        }
        for &value in chunks.remainder() {
            self.buf.extend_from_slice(&value.to_le_bytes());
        }
    }
}

impl serde::Serializer for &mut WireWriter {
    type Ok = ();
    type Error = WireError;

    fn serialize_u64(self, value: u64) -> Result<(), WireError> {
        self.put_u64(value);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        // `serialize_unit` is what the *no-op derived* impls emit. Writing
        // nothing would silently drop data on the wire, so refuse.
        Err(WireError::Malformed {
            context: "refusing to wire-serialize a no-op derived impl (unit)",
        })
    }
}

/// Cursor over a received byte buffer.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    pub fn take_f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    /// Reads `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, context)
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// message payload is a protocol violation, not padding.
    pub fn expect_end(&self, context: &'static str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed { context });
        }
        Ok(())
    }
}

impl<'de> serde::Deserializer<'de> for &mut WireReader<'de> {
    type Error = WireError;

    fn deserialize_u64(self) -> Result<u64, WireError> {
        self.take_u64("u64 via serde")
    }
}

/// Serializes a field-element slice through the serde trait surface
/// (`Fp::serialize` → `serialize_u64`): one canonical `u64` residue per
/// element, no length prefix (the caller's message layout carries counts).
pub fn put_field_elements<M: PrimeModulus>(
    writer: &mut WireWriter,
    values: &[Fp<M>],
) -> Result<(), WireError> {
    for value in values {
        serde::Serialize::serialize(value, &mut *writer)?;
    }
    Ok(())
}

/// Reads `count` field elements, enforcing the canonical-residue invariant:
/// a raw value `>= M::MODULUS` is a protocol violation (never silently
/// reduced — that would let a corrupted frame masquerade as valid data).
pub fn take_field_elements<M: PrimeModulus>(
    reader: &mut WireReader<'_>,
    count: usize,
) -> Result<Vec<Fp<M>>, WireError> {
    let mut values = Vec::with_capacity(count);
    for index in 0..count {
        let raw: u64 = serde::Deserialize::deserialize(&mut *reader)?;
        if raw >= M::MODULUS {
            return Err(WireError::NonCanonical {
                index,
                value: raw,
                modulus: M::MODULUS,
            });
        }
        values.push(<Fp<M> as PrimeField>::from_u64(raw));
    }
    Ok(values)
}

/// Reads `count` raw `u64`s (the modulus-erased executor path; canonicity is
/// checked later, when the modulus is known).
pub fn take_u64_elements(
    reader: &mut WireReader<'_>,
    count: usize,
    context: &'static str,
) -> Result<Vec<u64>, WireError> {
    if reader.remaining() < count.saturating_mul(8) {
        return Err(WireError::Truncated { context });
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(reader.take_u64(context)?);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F251, F61, P251, P61};

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-1234.5678);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8 + 8);

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_u8("t").unwrap(), 0xAB);
        assert_eq!(r.take_u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.take_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("t").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_f64("t").unwrap(), -1234.5678);
        r.expect_end("t").unwrap();
    }

    #[test]
    fn little_endian_layout() {
        let mut w = WireWriter::new();
        w.put_u32(0x0403_0201);
        assert_eq!(w.as_slice(), &[0x01, 0x02, 0x03, 0x04]);
    }

    #[test]
    fn field_elements_roundtrip_via_serde_traits() {
        let values: Vec<F61> = (0..17u64).map(|i| F61::new(i * 1_000_003)).collect();
        let mut w = WireWriter::new();
        put_field_elements(&mut w, &values).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 17 * 8);

        let mut r = WireReader::new(&bytes);
        let back: Vec<F61> = take_field_elements::<P61>(&mut r, 17).unwrap();
        r.expect_end("t").unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn non_canonical_element_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(251); // == P251::MODULUS, so not canonical
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let err = take_field_elements::<P251>(&mut r, 1).unwrap_err();
        assert_eq!(
            err,
            WireError::NonCanonical {
                index: 0,
                value: 251,
                modulus: 251,
            }
        );
        let _: Vec<F251> = Vec::new();
    }

    #[test]
    fn truncated_read_is_an_error_not_a_panic() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(matches!(r.take_u64("t"), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bulk_u64_matches_element_path() {
        let values: Vec<u64> = (0..100).map(|i| i * 0x9E37_79B9).collect();
        let mut element = WireWriter::new();
        for &v in &values {
            element.put_u64(v);
        }
        let mut bulk = WireWriter::new();
        bulk.put_u64_bulk(&values);
        assert_eq!(element.as_slice(), bulk.as_slice());
    }

    #[test]
    fn derived_noop_serialize_is_rejected() {
        let mut w = WireWriter::new();
        let err = serde::Serializer::serialize_unit(&mut w).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }));
    }
}
