//! The one error type every wire-level operation returns.
//!
//! The variants are deliberately fine-grained because the socket runtime's
//! *eviction* machinery keys on them: a [`WireError::ChecksumMismatch`] from a
//! worker's result frame is evidence of corruption (counted like a Byzantine
//! worker), while [`WireError::Closed`] mid-round is a straggler-style
//! disconnect. `std::io::Error` is captured as its [`std::io::ErrorKind`]
//! plus a static context string so the error stays `Clone + PartialEq`
//! (testable) without holding the non-comparable `io::Error` itself.

use core::fmt;

/// Any failure while encoding, decoding, reading or writing wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An OS-level I/O failure (connection reset, write timeout, ...).
    Io {
        /// The kind of the underlying `std::io::Error`.
        kind: std::io::ErrorKind,
        /// What the peer was doing when it failed.
        context: &'static str,
    },
    /// The peer closed the connection cleanly *between* frames (EOF at a
    /// frame boundary).
    Closed {
        /// What the reader was waiting for.
        context: &'static str,
    },
    /// The stream ended (or the buffer ran out) in the *middle* of a frame
    /// or message — a partial write reached us.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
    },
    /// The first four bytes of a frame were not `b"AVCC"`.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The peer speaks a protocol version we do not.
    UnsupportedVersion {
        /// Our protocol version.
        ours: u16,
        /// The version in the received frame.
        theirs: u16,
    },
    /// The trailing CRC-32C did not match the header + payload bytes.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        computed: u32,
        /// Checksum carried by the frame trailer.
        found: u32,
    },
    /// The frame declared a payload longer than the receiver's limit.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The receiver's configured maximum.
        max: usize,
    },
    /// The frame-kind byte is not one this version defines.
    UnknownFrameKind {
        /// The kind byte found.
        code: u8,
    },
    /// A structurally valid frame arrived where the protocol state machine
    /// does not allow it (e.g. a `TASK` before the handshake finished).
    UnexpectedFrame {
        /// What the receiver was expecting.
        context: &'static str,
        /// The kind byte of the offending frame.
        code: u8,
    },
    /// A `LOAD_BLOCK` named a field modulus this build does not support.
    UnknownModulus {
        /// The modulus from the block header.
        modulus: u64,
    },
    /// A field element was `>= modulus`. Canonical residues are a protocol
    /// invariant; silently reducing would mask corruption.
    NonCanonical {
        /// Index of the offending element within its array.
        index: usize,
        /// The raw value found.
        value: u64,
        /// The modulus it should be below.
        modulus: u64,
    },
    /// A message payload violated its documented layout.
    Malformed {
        /// What was wrong.
        context: &'static str,
    },
    /// Free-form error built through `serde`'s `Error::custom`.
    Custom(String),
}

impl WireError {
    /// Wraps a `std::io::Error`, keeping only its (comparable) kind.
    pub fn io(err: std::io::Error, context: &'static str) -> Self {
        Self::Io {
            kind: err.kind(),
            context,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { kind, context } => write!(f, "i/o error ({kind:?}) while {context}"),
            Self::Closed { context } => write!(f, "connection closed while {context}"),
            Self::Truncated { context } => write!(f, "truncated data while reading {context}"),
            Self::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            Self::UnsupportedVersion { ours, theirs } => {
                write!(f, "unsupported protocol version {theirs} (ours is {ours})")
            }
            Self::ChecksumMismatch { computed, found } => write!(
                f,
                "frame checksum mismatch (computed {computed:#010x}, frame says {found:#010x})"
            ),
            Self::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds limit of {max}")
            }
            Self::UnknownFrameKind { code } => write!(f, "unknown frame kind {code:#04x}"),
            Self::UnexpectedFrame { context, code } => {
                write!(f, "unexpected frame kind {code:#04x} while {context}")
            }
            Self::UnknownModulus { modulus } => write!(f, "unsupported field modulus {modulus}"),
            Self::NonCanonical {
                index,
                value,
                modulus,
            } => write!(
                f,
                "non-canonical field element {value} at index {index} (modulus {modulus})"
            ),
            Self::Malformed { context } => write!(f, "malformed message: {context}"),
            Self::Custom(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::Error for WireError {
    fn custom<T: fmt::Display>(message: T) -> Self {
        Self::Custom(message.to_string())
    }
}
