//! The AVCC wire format: versioned, length-prefixed, CRC-32C-checksummed
//! frames for shipping coded blocks, round inputs and worker results between
//! real processes.
//!
//! Everything below `crates/sim`'s `SocketExecutor` and the `avcc-worker`
//! binary lives here, in dependency order:
//!
//! * [`crc`] — CRC-32C (Castagnoli), bytewise reference + slice-by-8.
//! * [`error`] — [`WireError`], the one error type; its variants are what
//!   the master's eviction machinery keys on.
//! * [`codec`] — little-endian primitives, and the *real* implementations
//!   of the workspace's serde-shaped `Serializer`/`Deserializer` traits
//!   (so `Fp<M>`'s hand-written impls serialize canonical residues onto the
//!   wire through the exact trait surface the types already carry).
//! * [`frame`] — the 28-byte header + payload + checksum framing, with the
//!   magic/version/length/CRC/kind validation pipeline.
//! * [`message`] — per-[`FrameKind`] payload layouts (handshake, blocks,
//!   tasks, results, fault injection, errors).
//! * [`compute`] — worker-side typed blocks: the same `mat_vec` kernel the
//!   in-process executors run, which is what makes socket results
//!   bit-identical to threaded results.
//! * [`worker`] — the request/response protocol loop shared by the
//!   `avcc-worker` binary and the in-process thread backend.
//!
//! The byte-level layout of every frame, the handshake sequence and the
//! eviction semantics are specified in `docs/WIRE_FORMAT.md`; a test in this
//! crate pins the spec's worked example to the implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod compute;
pub mod crc;
pub mod error;
pub mod frame;
pub mod message;
pub mod worker;

pub use codec::{
    put_field_elements, take_field_elements, take_u64_elements, WireReader, WireWriter,
};
pub use compute::{TypedBlock, SUPPORTED_MODULI};
pub use crc::{crc32c, crc32c_bytewise, Crc32c};
pub use error::WireError;
pub use frame::{
    read_frame, write_frame, Frame, FrameKind, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC,
    PROTOCOL_VERSION, TRAILER_LEN,
};
pub use message::{
    result_frame_bytes, task_frame_bytes, Block, ErrorMsg, Fault, FaultKind, Hello, HelloAck, Task,
    TaskResult,
};
pub use worker::{serve_connection, WorkerOptions};
