//! CRC-32C (Castagnoli) — the checksum trailing every wire frame.
//!
//! The Castagnoli polynomial is the iSCSI/ext4 choice: measurably better
//! error-detection properties than CRC-32 (IEEE) for short frames, and the
//! same table-driven software implementation cost. Two implementations live
//! here:
//!
//! * [`crc32c_bytewise`] — the classic one-table-lookup-per-byte loop. It is
//!   the *reference*: trivially auditable against published test vectors.
//! * [`crc32c`] — slice-by-8: eight tables, one iteration per 8 input bytes.
//!   This is the implementation the frame codec actually uses; the
//!   `wire_crc` bench gates it not-worse than the bytewise reference.
//!
//! Both are pure safe Rust with `const`-built tables (no runtime init, no
//! `lazy_static`).

/// Reflected form of the Castagnoli polynomial `0x1EDC6F41`.
const POLY: u32 = 0x82F6_3B78;

/// Eight lookup tables: `TABLES[0]` is the classic bytewise table, and
/// `TABLES[t][b]` advances a CRC by one byte `b` followed by `t` zero bytes,
/// which is what lets slice-by-8 fold eight input bytes per iteration.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Streaming CRC-32C state, for checksumming a frame header and payload
/// without first concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Fresh state (`0xFFFF_FFFF` pre-inversion, per the CRC-32C spec).
    pub fn new() -> Self {
        Self { state: !0u32 }
    }

    /// Folds `bytes` into the running checksum (slice-by-8 inner loop).
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
        self
    }

    /// Final (inverted) checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32C of `bytes` via the slice-by-8 path (the production path).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = Crc32c::new();
    crc.update(bytes);
    crc.finalize()
}

/// CRC-32C of `bytes` via the one-table-per-byte reference loop.
pub fn crc32c_bytewise(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3720 appendix / published CRC-32C check value.
    #[test]
    fn known_vector() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_bytewise(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c_bytewise(b""), 0);
    }

    #[test]
    fn all_zero_32_bytes() {
        // iSCSI test vector: 32 bytes of 0x00.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn all_ones_32_bytes() {
        // iSCSI test vector: 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn sliced_matches_bytewise_on_varied_lengths() {
        // Deterministic pseudo-random bytes; every length 0..=257 exercises
        // all chunk remainders.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut bytes = Vec::new();
        for len in 0..=257usize {
            bytes.clear();
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                bytes.push(state as u8);
            }
            assert_eq!(crc32c(&bytes), crc32c_bytewise(&bytes), "len={len}");
        }
    }

    #[test]
    fn streaming_split_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let mut crc = Crc32c::new();
            crc.update(&data[..split]).update(&data[split..]);
            assert_eq!(crc.finalize(), crc32c(&data), "split={split}");
        }
    }
}
