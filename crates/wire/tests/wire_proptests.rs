//! Property tests for the wire layer: round-trips under random data, and the
//! central robustness claim — *no* byte input makes the decoder panic; it
//! either yields a valid frame or a typed [`WireError`].

use avcc_wire::{
    crc32c, crc32c_bytewise, read_frame, Block, Frame, FrameKind, Task, TaskResult, TypedBlock,
    DEFAULT_MAX_PAYLOAD,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc_sliced_matches_bytewise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(crc32c(&bytes), crc32c_bytewise(&bytes));
    }

    #[test]
    fn frame_roundtrip(job in any::<u64>(), round in any::<u64>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = Frame::new(FrameKind::Task, job, round, payload);
        let bytes = frame.encode();
        let (back, consumed) = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn single_byte_corruption_never_decodes(seed in any::<u64>(),
                                            payload in proptest::collection::vec(any::<u8>(), 1..128)) {
        let frame = Frame::new(FrameKind::TaskResult, 1, 2, payload);
        let mut bytes = frame.encode();
        let pos = (seed as usize) % bytes.len();
        let flip = 1u8 << (seed % 8) as u8;
        bytes[pos] ^= flip.max(1);
        let decoded = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD);
        prop_assert!(decoded.is_err(), "corruption at byte {} undetected", pos);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Cap payload so a random length field cannot request a huge buffer.
        let _ = read_frame(&mut bytes.as_slice(), 1 << 16);
    }

    #[test]
    fn arbitrary_bytes_never_panic_message_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let _ = Block::decode(&bytes);
        let _ = Task::decode(&bytes);
        let _ = TaskResult::decode(&bytes);
        let _ = avcc_wire::Hello::decode(&bytes);
        let _ = avcc_wire::HelloAck::decode(&bytes);
        let _ = avcc_wire::Fault::decode(&bytes);
        let _ = avcc_wire::ErrorMsg::decode(&bytes);
    }

    #[test]
    fn task_roundtrip_rectangular(functions in 0usize..4, len in 0usize..32, sleep in any::<u64>()) {
        let inputs: Vec<Vec<u64>> = (0..functions)
            .map(|f| (0..len).map(|i| (f * 1000 + i) as u64).collect())
            .collect();
        let task = Task { sleep_micros: sleep, inputs };
        prop_assert_eq!(Task::decode(&task.encode()).unwrap(), task);
    }

    #[test]
    fn block_roundtrip_and_typed_compute(rows in 1u32..8, cols in 1u32..8, seed in any::<u64>()) {
        // Elements canonical under the exhaustive-test field q = 251.
        let elements: Vec<u64> = (0..rows as u64 * cols as u64)
            .map(|i| (seed.wrapping_mul(i + 1).wrapping_add(i)) % 251)
            .collect();
        let block = Block { modulus: 251, rows, cols, elements };
        let decoded = Block::decode(&block.encode()).unwrap();
        prop_assert_eq!(&decoded, &block);
        let typed = TypedBlock::from_block(&decoded).unwrap();
        let input: Vec<u64> = (0..cols as u64).map(|i| (seed.wrapping_add(i * 7)) % 251).collect();
        let outputs = typed.execute(std::slice::from_ref(&input)).unwrap();
        prop_assert_eq!(outputs.len(), 1);
        prop_assert_eq!(outputs[0].len(), rows as usize);
        prop_assert!(outputs[0].iter().all(|&v| v < 251));
    }
}
