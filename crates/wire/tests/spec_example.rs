//! Pins the worked example in `docs/WIRE_FORMAT.md` to the implementation:
//! if the encoding of the documented TASK frame ever changes, this test
//! fails and the spec must be revised in the same commit.

use avcc_wire::{read_frame, FrameKind, Task, DEFAULT_MAX_PAYLOAD};

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The exact frame walked through byte-by-byte in docs/WIRE_FORMAT.md §7:
/// a TASK for job 7, round 2, no injected sleep, one function with inputs
/// [1, 2, 3].
#[test]
fn wire_format_doc_example_is_accurate() {
    let task = Task {
        sleep_micros: 0,
        inputs: vec![vec![1, 2, 3]],
    };
    let wire = task.frame(7, 2).encode();

    let documented = "\
41 56 43 43 01 00 11 00 07 00 00 00 00 00 00 00 \
02 00 00 00 00 00 00 00 28 00 00 00 00 00 00 00 \
00 00 00 00 01 00 00 00 03 00 00 00 01 00 00 00 \
00 00 00 00 02 00 00 00 00 00 00 00 03 00 00 00 \
00 00 00 00 0b a5 76 6f";
    assert_eq!(hex(&wire), documented, "docs/WIRE_FORMAT.md §7 is stale");

    // And the documented bytes really decode back to the documented frame.
    let (frame, consumed) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(consumed, 72);
    assert_eq!(frame.kind, FrameKind::Task);
    assert_eq!(frame.job, 7);
    assert_eq!(frame.round, 2);
    assert_eq!(Task::decode(&frame.payload).unwrap(), task);
}
