//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand 0.8` API that the AVCC workspace actually
//! uses, with the same module paths and trait names:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   and float ranges) and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a SplitMix64 generator: deterministic, uniform,
//!   and passes the workspace's empirical-uniformity tests; it is *not*
//!   cryptographic, which matches how the workspace uses it (seeded,
//!   reproducible simulation and test randomness),
//! * [`rngs::mock::StepRng`].
//!
//! Sampling an integer range uses 128-bit multiply-shift reduction
//! (Lemire-style), so the modulo bias for an `n`-value range is below
//! `n / 2^64` — far below anything the statistical tests can observe.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to sample one of its values uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift reduction of a 64-bit word onto `[0, n)`.
#[inline]
fn bounded(word: u64, n: u64) -> u64 {
    ((word as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, u16, u8, usize, i64, i32, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic and uniform; not cryptographic (the real `StdRng` is a
    /// ChaCha stream cipher — nothing in this workspace relies on that).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Mock generators for deterministic tests.
    pub mod mock {
        use super::super::RngCore;

        /// A generator that counts up from `initial` in steps of `increment`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a step generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
    }

    #[test]
    fn step_rng_counts_up() {
        let mut rng = StepRng::new(3, 2);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!(rng.next_u64(), 5);
    }

    #[test]
    fn small_range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut histogram = [0u32; 16];
        for _ in 0..160_000 {
            histogram[rng.gen_range(0usize..16)] += 1;
        }
        for &count in &histogram {
            assert!((count as f64 - 10_000.0).abs() < 600.0, "count {count}");
        }
    }
}
