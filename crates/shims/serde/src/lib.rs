//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io. This crate provides the
//! trait skeletons and a derive that emits structurally trivial impls, so
//! `#[derive(Serialize, Deserialize)]` annotations compile without the real
//! dependency. Since PR8 the workspace *does* serialize data for real: the
//! wire format in `avcc-wire` moves every master/worker frame as explicit
//! little-endian bytes (spec in `docs/WIRE_FORMAT.md`), and its `WireWriter`
//! implements this crate's [`Serializer`] trait (the no-op `serialize_unit`
//! path is rejected there, so a derived no-op impl can never silently drop
//! data on the wire). Reports still print as tab-separated text and
//! `BENCH_*.json` files are written by the bench harness directly. Swapping
//! the real `serde` back in is a `Cargo.toml` change plus widening
//! `WireWriter`'s `Serializer` impl in `crates/wire/src/codec.rs` to the full
//! trait surface.

#![forbid(unsafe_code)]

use core::fmt::Display;

/// Error construction for (de)serializers, mirroring `serde::de::Error` /
/// `serde::ser::Error`.
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: Display>(message: T) -> Self;
}

/// A data-format serializer (primitive subset).
pub trait Serializer: Sized {
    /// Output on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes a `u64`.
    fn serialize_u64(self, value: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value (what the no-op derives emit).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserializer (primitive subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

/// Mirrors `serde::de` far enough for `D::Error: de::Error` bounds.
pub mod de {
    pub use crate::{Deserialize, Deserializer, Error};
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize, Serializer};
}

pub use serde_derive::{Deserialize, Serialize};
