//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the proptest API the AVCC workspace uses: the [`proptest!`]
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! range and [`collection::vec`] strategies, [`prelude::any`] and
//! [`prelude::ProptestConfig`].
//!
//! Semantics: each property runs `cases` times against values drawn from a
//! deterministic per-test generator (seeded from the test's name, so failures
//! reproduce across runs). There is no shrinking — a failing case panics with
//! the assertion message directly, which is enough for CI; shrink support
//! returns when the real crate is available.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The per-test random source.
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u64, u32, u16, u8, usize, i64, i32, isize, f64);

    /// A strategy producing any value of a type (uniform over the type's
    /// domain for integers; finite uniform `[-1, 1]` scaled values for
    /// floats are not needed by this workspace).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    /// Types usable with [`crate::prelude::any`].
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// A length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(size: usize) -> Self {
            SizeRange {
                start: size,
                end: size + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` of values drawn from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-execution configuration.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::default()
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Derives a deterministic per-test seed from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate sibling tests.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Runs a block of property tests. See the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = <$crate::strategy::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !($condition) {
            continue;
        }
    };
    ($condition:expr, $($fmt:tt)*) => {
        if !($condition) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn generated_values_respect_ranges(a in 3u64..10, b in -2i64..=2) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn mapped_strategies_apply_function(v in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
