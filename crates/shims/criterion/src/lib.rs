//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the criterion API the AVCC benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros (benches therefore set
//! `harness = false` exactly as they would with the real crate).
//!
//! Measurement model: each benchmark is warmed up for [`WARMUP`], then timed
//! over adaptively sized batches until [`MEASURE`] of samples accumulate; the
//! reported figure is the median batch mean in ns/iter, printed as
//!
//! ```text
//! bench: <id> ... median <ns> ns/iter (<iters> iters)
//! ```
//!
//! which the repo's `BENCH_*.json` capture scripts parse. Set
//! `AVCC_BENCH_FAST=1` to cut both budgets 10× for smoke runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Warm-up budget per benchmark.
pub const WARMUP: Duration = Duration::from_millis(300);
/// Measurement budget per benchmark.
pub const MEASURE: Duration = Duration::from_millis(1200);

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

fn budgets() -> (Duration, Duration) {
    if std::env::var("AVCC_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        (WARMUP / 10, MEASURE / 10)
    } else {
        (WARMUP, MEASURE)
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id of the form `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive through [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (warmup, measure) = budgets();
        // Warm-up: also calibrates the batch size so each timed batch runs
        // for roughly 1/50 of the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((measure.as_secs_f64() / 50.0) / per_iter.max(1e-9)).ceil() as u64;
        let batch = batch.clamp(1, 1 << 24);

        let run_start = Instant::now();
        while run_start.elapsed() < measure {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = batch_start.elapsed().as_secs_f64();
            self.samples.push(elapsed / batch as f64 * 1e9);
            self.total_iters += batch;
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("bench: {label} ... no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = self.samples[self.samples.len() / 2];
        println!(
            "bench: {label} ... median {median:.1} ns/iter ({} iters)",
            self.total_iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dot", 512).label, "dot/512");
        assert_eq!(BenchmarkId::from_parameter("p61").label, "p61");
    }

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("AVCC_BENCH_FAST", "1");
        let mut bencher = Bencher::default();
        bencher.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(!bencher.samples.is_empty());
        assert!(bencher.total_iters > 0);
    }
}
