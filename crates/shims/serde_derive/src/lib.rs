//! No-op `Serialize` / `Deserialize` derives for the offline serde stand-in.
//!
//! The emitted impls are structurally trivial (`serialize_unit` /
//! `Error::custom`): they exist so that `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace type-check without crates.io access. The
//! derive intentionally supports only non-generic types — every annotated type
//! in this workspace is concrete — and fails loudly otherwise, so a future
//! switch to real serde cannot silently change behavior.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following `struct` or `enum`, skipping attributes,
/// doc comments and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde_derive shim: expected type name, found {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            panic!(
                                "serde_derive shim: generic type `{name}` is not supported; \
                                 write the impl by hand (see avcc_field::Fp)"
                            );
                        }
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no `struct` or `enum` found in derive input");
}

/// Derives a no-op `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl failed to parse")
}

/// Derives a no-op `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"deserialization is not supported by the offline serde stand-in\",\n\
                 ))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl failed to parse")
}
