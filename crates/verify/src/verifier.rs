//! Per-worker and per-cluster verifiers — the objects the AVCC master holds.
//!
//! A [`WorkerVerifier`] owns the two round keys of one worker and checks that
//! worker's round-1 and round-2 results. A [`VerifierSet`] owns one verifier
//! per worker, which is exactly the state the AVCC master keeps after the
//! one-time key-generation phase; it also tracks aggregate accept/reject
//! statistics ([`VerdictStats`]) used by the adaptive controller to estimate
//! the Byzantine population.

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use rand::Rng;

use crate::freivalds::{check_mat_vec, FreivaldsCheck};
use crate::keys::{KeyGenConfig, RoundKeys};

/// The verifier for a single worker: both round keys plus the worker index.
#[derive(Debug, Clone)]
pub struct WorkerVerifier<M: PrimeModulus> {
    worker: usize,
    keys: RoundKeys<M>,
}

impl<M: PrimeModulus> WorkerVerifier<M> {
    /// Generates the verifier for `worker`, whose coded block is `coded_block`.
    pub fn generate<R: Rng + ?Sized>(
        worker: usize,
        coded_block: &Matrix<Fp<M>>,
        config: KeyGenConfig,
        rng: &mut R,
    ) -> Self {
        WorkerVerifier {
            worker,
            keys: RoundKeys::generate(coded_block, config, rng),
        }
    }

    /// The worker index this verifier is bound to.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Verifies a round-1 result `z̃ = X̃ w` (eq. 8).
    pub fn verify_round1(&self, w: &[Fp<M>], claimed_z: &[Fp<M>]) -> FreivaldsCheck {
        check_mat_vec(&self.keys.round1, w, claimed_z)
    }

    /// Verifies a round-2 result `g̃ = X̃ᵀ e` (eq. 9).
    pub fn verify_round2(&self, e: &[Fp<M>], claimed_g: &[Fp<M>]) -> FreivaldsCheck {
        check_mat_vec(&self.keys.round2, e, claimed_g)
    }

    /// The round keys (exposed for cost accounting and tests).
    pub fn keys(&self) -> &RoundKeys<M> {
        &self.keys
    }
}

/// Aggregate accept/reject statistics across verifications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictStats {
    /// Number of results that passed verification.
    pub accepted: usize,
    /// Number of results that failed verification.
    pub rejected: usize,
}

impl VerdictStats {
    /// Records one verification outcome.
    pub fn record(&mut self, accepted: bool) {
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
    }

    /// Total number of verifications recorded.
    pub fn total(&self) -> usize {
        self.accepted + self.rejected
    }
}

/// One verifier per worker — the master's verification state.
#[derive(Debug, Clone)]
pub struct VerifierSet<M: PrimeModulus> {
    verifiers: Vec<WorkerVerifier<M>>,
    stats: VerdictStats,
}

impl<M: PrimeModulus> VerifierSet<M> {
    /// Generates a verifier for every worker's coded block (blocks are indexed
    /// by worker).
    pub fn generate<R: Rng + ?Sized>(
        coded_blocks: &[Matrix<Fp<M>>],
        config: KeyGenConfig,
        rng: &mut R,
    ) -> Self {
        let verifiers = coded_blocks
            .iter()
            .enumerate()
            .map(|(worker, block)| WorkerVerifier::generate(worker, block, config, rng))
            .collect();
        VerifierSet {
            verifiers,
            stats: VerdictStats::default(),
        }
    }

    /// Number of workers covered.
    pub fn len(&self) -> usize {
        self.verifiers.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.verifiers.is_empty()
    }

    /// The verifier for a given worker.
    ///
    /// # Panics
    /// Panics if the worker index is out of range.
    pub fn worker(&self, worker: usize) -> &WorkerVerifier<M> {
        &self.verifiers[worker]
    }

    /// Verifies a round-1 result for `worker` and records the verdict.
    pub fn verify_round1(
        &mut self,
        worker: usize,
        w: &[Fp<M>],
        claimed_z: &[Fp<M>],
    ) -> FreivaldsCheck {
        let check = self.verifiers[worker].verify_round1(w, claimed_z);
        self.stats.record(check.accepted);
        check
    }

    /// Verifies a round-2 result for `worker` and records the verdict.
    pub fn verify_round2(
        &mut self,
        worker: usize,
        e: &[Fp<M>],
        claimed_g: &[Fp<M>],
    ) -> FreivaldsCheck {
        let check = self.verifiers[worker].verify_round2(e, claimed_g);
        self.stats.record(check.accepted);
        check
    }

    /// Aggregate accept/reject statistics.
    pub fn stats(&self) -> VerdictStats {
        self.stats
    }

    /// Resets the aggregate statistics (e.g. at the start of an iteration).
    pub fn reset_stats(&mut self) {
        self.stats = VerdictStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{PrimeField, F25};
    use avcc_linalg::{mat_vec, matt_vec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coded_blocks(n: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix<F25>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols)))
            .collect()
    }

    #[test]
    fn worker_verifier_accepts_honest_rounds() {
        let blocks = coded_blocks(1, 6, 4, 1);
        let mut rng = StdRng::seed_from_u64(10);
        let verifier = WorkerVerifier::generate(0, &blocks[0], KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 4);
        let e: Vec<F25> = avcc_field::random_vector(&mut rng, 6);
        assert!(
            verifier
                .verify_round1(&w, &mat_vec(&blocks[0], &w))
                .accepted
        );
        assert!(
            verifier
                .verify_round2(&e, &matt_vec(&blocks[0], &e))
                .accepted
        );
        assert_eq!(verifier.worker(), 0);
    }

    #[test]
    fn worker_verifier_rejects_byzantine_rounds() {
        let blocks = coded_blocks(1, 6, 4, 2);
        let mut rng = StdRng::seed_from_u64(20);
        let verifier = WorkerVerifier::generate(0, &blocks[0], KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 4);
        let e: Vec<F25> = avcc_field::random_vector(&mut rng, 6);
        let reversed: Vec<F25> = mat_vec(&blocks[0], &w).iter().map(|&v| -v).collect();
        assert!(!verifier.verify_round1(&w, &reversed).accepted);
        let constant = vec![F25::from_u64(9); 4];
        assert!(!verifier.verify_round2(&e, &constant).accepted);
    }

    #[test]
    fn verifier_set_covers_every_worker_and_tracks_stats() {
        let blocks = coded_blocks(5, 4, 3, 3);
        let mut rng = StdRng::seed_from_u64(30);
        let mut set = VerifierSet::generate(&blocks, KeyGenConfig::default(), &mut rng);
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 3);
        for (worker, block) in blocks.iter().enumerate() {
            let honest = mat_vec(block, &w);
            assert!(set.verify_round1(worker, &w, &honest).accepted);
        }
        // One Byzantine result.
        let corrupted = vec![F25::ONE; 4];
        assert!(!set.verify_round1(2, &w, &corrupted).accepted);
        assert_eq!(
            set.stats(),
            VerdictStats {
                accepted: 5,
                rejected: 1
            }
        );
        assert_eq!(set.stats().total(), 6);
        set.reset_stats();
        assert_eq!(set.stats().total(), 0);
    }

    #[test]
    fn verification_is_independent_per_worker() {
        // A result computed with worker 1's block must not verify under worker
        // 0's key (the keys are bound to the coded data).
        let blocks = coded_blocks(2, 5, 5, 4);
        let mut rng = StdRng::seed_from_u64(40);
        let mut set = VerifierSet::generate(&blocks, KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 5);
        let z_of_worker1 = mat_vec(&blocks[1], &w);
        assert!(!set.verify_round1(0, &w, &z_of_worker1).accepted);
    }
}
