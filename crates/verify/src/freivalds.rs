//! The Freivalds integrity check (paper §IV-A, step 3) and its soundness
//! accounting.
//!
//! The check itself is one dot product on each side of eq. (8) / eq. (9):
//! `s⁽¹⁾·w = r⁽¹⁾·z̃` for round 1 and `s⁽²⁾·e = r⁽²⁾·g̃` for round 2. A worker
//! that returns the correct product always passes; a worker that returns
//! anything else passes with probability at most `1/q` per key repetition
//! (eq. 10/11), because the difference vector is nonzero and a uniformly
//! random `r` is orthogonal to a fixed nonzero vector with probability `1/q`.
//!
//! A *power-structured* variant is also provided
//! ([`check_with_power_key`]): the secret vector is the power series
//! `r = (1, ρ, ρ², …)` of a single field element, cutting per-repetition key
//! storage from `rows(A)` elements to one. Expanding the series is a long
//! dependent product chain — exactly the shape the Montgomery backend
//! ([`avcc_field::MontgomeryModulus`]) accelerates — and the soundness error
//! grows only to `(rows − 1)/q` (Schwartz–Zippel on the degree-`< rows`
//! difference polynomial `Σ_i Δ_i ρ^i`).

use avcc_field::{dot, power_series, Fp, PrimeModulus};

use crate::keys::MatVecKey;

/// The outcome of a verification together with its cost, so the simulator can
/// charge verification time per worker exactly as Fig. 4 does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreivaldsCheck {
    /// `true` iff every repetition of the check passed.
    pub accepted: bool,
    /// Number of field multiply-accumulate operations performed.
    pub operations: usize,
}

/// Verifies a claimed matrix–vector product against a key. Equivalent to
/// [`MatVecKey::verify`] but also reports the operation count.
pub fn check_mat_vec<M: PrimeModulus>(
    key: &MatVecKey<M>,
    input: &[Fp<M>],
    claimed: &[Fp<M>],
) -> FreivaldsCheck {
    let accepted = key.verify(input, claimed);
    FreivaldsCheck {
        accepted,
        operations: key.verification_cost(),
    }
}

/// Verifies a claimed product with explicit `(r, s)` vectors — the raw form of
/// eq. (8): accepts iff `s·input = r·claimed`.
pub fn check_with_key_pair<M: PrimeModulus>(
    r: &[Fp<M>],
    s: &[Fp<M>],
    input: &[Fp<M>],
    claimed: &[Fp<M>],
) -> bool {
    dot(s, input) == dot(r, claimed)
}

/// Upper bound on the probability that a *wrong* result is accepted:
/// `q^{-repetitions}` (eq. 10/11 generalized to repeated keys).
pub fn soundness_error(modulus: u64, repetitions: u32) -> f64 {
    (1.0 / modulus as f64).powi(repetitions as i32)
}

/// Expands the power-structured secret `ρ` into the verification vector
/// `r = (1, ρ, ρ², …, ρ^{length−1})`.
///
/// This is one dependent product chain of `length − 1` multiplies; on
/// chain-routed moduli it runs through the Montgomery hybrid multiply (the
/// base is lifted once, every step's output is already canonical).
pub fn expand_power_key<M: PrimeModulus>(rho: Fp<M>, length: usize) -> Vec<Fp<M>> {
    power_series(rho, length)
}

/// Verifies a claimed product with a power-structured key: accepts iff
/// `s·input = r·claimed` for `r = (1, ρ, …)` expanded on the fly, where
/// `s = rᵀ·A` was precomputed at key-generation time from the same `ρ`.
///
/// Completeness is exact; the soundness error per repetition is at most
/// `(claimed.len() − 1)/q` (see [`power_key_soundness_error`]).
pub fn check_with_power_key<M: PrimeModulus>(
    rho: Fp<M>,
    s: &[Fp<M>],
    input: &[Fp<M>],
    claimed: &[Fp<M>],
) -> bool {
    let r = expand_power_key(rho, claimed.len());
    dot(s, input) == dot(&r, claimed)
}

/// Upper bound on the probability that a *wrong* result passes the
/// power-structured check: `((length − 1)/q)^repetitions` — the Schwartz–
/// Zippel bound for a nonzero polynomial of degree below `length` evaluated
/// at a uniformly random point.
pub fn power_key_soundness_error(modulus: u64, length: usize, repetitions: u32) -> f64 {
    ((length.saturating_sub(1)) as f64 / modulus as f64).powi(repetitions as i32)
}

/// Folds `m` same-length vectors into the random linear combination
/// `Σ_j σ^j · v_j` — the master-side half of the *batched* Freivalds check.
///
/// To verify `m` claimed products `y_j ≐ Ã·x_j` against one key, the master
/// draws a single scalar `σ`, combines the inputs into `x_c = Σ σ^j x_j`
/// (once, shared by every worker) and each worker's claims into
/// `y_c = Σ σ^j y_j`, and runs **one** check `verify(x_c, y_c)` — linearity
/// makes the combined claim correct whenever every individual claim is.
/// If any individual claim is wrong, the combined check still catches it
/// except with probability `(m − 1)/q` (Schwartz–Zippel on the degree-`< m`
/// polynomial `σ ↦ Σ_j Δ_j σ^j` per coordinate), on top of the key's own
/// soundness error — see [`batch_soundness_error`]. A failed combined check
/// is then localized by falling back to the `m` per-function checks.
///
/// # Panics
/// Panics if `vectors` is empty or the lengths disagree.
pub fn combine_with_powers<M: PrimeModulus>(sigma: Fp<M>, vectors: &[Vec<Fp<M>>]) -> Vec<Fp<M>> {
    assert!(!vectors.is_empty(), "cannot combine an empty batch");
    let length = vectors[0].len();
    let powers = power_series(sigma, vectors.len());
    let mut combined = vec![Fp::<M>::ZERO; length];
    for (power, vector) in powers.iter().zip(vectors) {
        assert_eq!(vector.len(), length, "batch vectors must share one length");
        for (acc, &value) in combined.iter_mut().zip(vector) {
            *acc += *power * value;
        }
    }
    combined
}

/// Upper bound on the probability that a batch of `functions` claimed
/// products containing at least one wrong result passes the batched check:
/// the `(functions − 1)/q` failure of the random power combination (the
/// wrong results may cancel in `Σ σ^j Δ_j`) plus the underlying key's own
/// soundness error at `repetitions` repetitions.
pub fn batch_soundness_error(modulus: u64, functions: usize, repetitions: u32) -> f64 {
    (functions.saturating_sub(1) as f64 / modulus as f64) + soundness_error(modulus, repetitions)
}

/// The paper's comparison of verification cost against recomputation: a
/// Freivalds check needs about `rows + cols` multiply-accumulates while
/// recomputing the product needs `rows · cols`; the ratio is the speedup of
/// verification over recomputation.
pub fn verification_speedup(rows: usize, cols: usize) -> f64 {
    (rows * cols) as f64 / (rows + cols) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenConfig;
    use avcc_field::{PrimeField, F25, F251, P251};
    use avcc_linalg::{mat_vec, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn check_reports_cost_and_acceptance() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = Matrix::from_vec(8, 5, avcc_field::random_matrix(&mut rng, 8, 5));
        let key = MatVecKey::generate(&block, KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 5);
        let z = mat_vec(&block, &w);
        let check = check_mat_vec(&key, &w, &z);
        assert!(check.accepted);
        assert_eq!(check.operations, 13);
        let mut corrupted = z;
        corrupted[0] += F25::ONE;
        assert!(!check_mat_vec(&key, &w, &corrupted).accepted);
    }

    #[test]
    fn raw_key_pair_check_matches_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        let block = Matrix::from_vec(3, 3, avcc_field::random_matrix(&mut rng, 3, 3));
        let r: Vec<F25> = avcc_field::random_vector(&mut rng, 3);
        let s = avcc_linalg::matt_vec(&block, &r);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 3);
        let z = mat_vec(&block, &w);
        assert!(check_with_key_pair(&r, &s, &w, &z));
        let wrong: Vec<F25> = z.iter().map(|&v| v + F25::ONE).collect();
        assert!(!check_with_key_pair(&r, &s, &w, &wrong));
    }

    #[test]
    fn soundness_error_matches_field_size() {
        assert!((soundness_error(33_554_393, 1) - 2.98e-8).abs() < 1e-9);
        let double = soundness_error(33_554_393, 2);
        assert!(double < 1e-15);
        assert_eq!(soundness_error(251, 1), 1.0 / 251.0);
    }

    #[test]
    fn power_key_accepts_correct_and_rejects_corrupted_results() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = Matrix::from_vec(9, 5, avcc_field::random_matrix(&mut rng, 9, 5));
        let rho: F25 = avcc_field::random_element(&mut rng);
        // s = rᵀA for r = (1, ρ, ρ², …, ρ^{rows−1}).
        let r = expand_power_key(rho, block.rows());
        let s = avcc_linalg::matt_vec(&block, &r);
        for _ in 0..10 {
            let w: Vec<F25> = avcc_field::random_vector(&mut rng, 5);
            let z = mat_vec(&block, &w);
            assert!(check_with_power_key(rho, &s, &w, &z));
            let mut corrupted = z;
            corrupted[4] += F25::ONE;
            assert!(!check_with_power_key(rho, &s, &w, &corrupted));
        }
    }

    #[test]
    fn power_key_expansion_is_the_power_series() {
        let rho = F25::from_u64(7);
        let r = expand_power_key(rho, 5);
        assert_eq!(
            r,
            vec![
                F25::ONE,
                rho,
                rho * rho,
                rho * rho * rho,
                rho * rho * rho * rho
            ]
        );
    }

    #[test]
    fn power_key_soundness_error_is_schwartz_zippel() {
        assert_eq!(power_key_soundness_error(251, 1, 1), 0.0);
        assert_eq!(power_key_soundness_error(251, 252, 1), 1.0);
        let single = power_key_soundness_error(33_554_393, 667, 1);
        assert!((single - 666.0 / 33_554_393.0).abs() < 1e-12);
        assert!(power_key_soundness_error(33_554_393, 667, 2) < single * single * 1.01);
    }

    /// Wrong answers against a power-structured key in the tiny field pass at
    /// a rate bounded by (rows−1)/q — the degraded but still negligible
    /// Schwartz–Zippel bound.
    #[test]
    fn empirical_power_key_soundness_in_tiny_field() {
        let mut rng = StdRng::seed_from_u64(5);
        let block = Matrix::from_vec(4, 4, avcc_field::random_matrix(&mut rng, 4, 4));
        let trials = 20_000;
        let mut accepted_wrong = 0u32;
        for _ in 0..trials {
            let rho: F251 = avcc_field::random_element(&mut rng);
            let r = expand_power_key(rho, 4);
            let s = avcc_linalg::matt_vec(&block, &r);
            let w: Vec<F251> = avcc_field::random_vector(&mut rng, 4);
            let mut z = mat_vec(&block, &w);
            let index = rng.gen_range(0..4usize);
            z[index] += F251::from_u64(rng.gen_range(1..251));
            if check_with_power_key(rho, &s, &w, &z) {
                accepted_wrong += 1;
            }
        }
        let rate = accepted_wrong as f64 / trials as f64;
        let bound = power_key_soundness_error(251, 4, 1);
        assert!(
            rate < 3.0 * bound + 1e-3,
            "false-acceptance rate {rate} too far above (m-1)/q = {bound}"
        );
    }

    #[test]
    fn power_combination_is_the_explicit_sum() {
        let sigma = F25::from_u64(3);
        let batch = vec![
            vec![F25::from_u64(1), F25::from_u64(2)],
            vec![F25::from_u64(4), F25::from_u64(5)],
            vec![F25::from_u64(6), F25::from_u64(0)],
        ];
        let combined = combine_with_powers(sigma, &batch);
        let sigma2 = sigma * sigma;
        assert_eq!(
            combined,
            vec![
                batch[0][0] + sigma * batch[1][0] + sigma2 * batch[2][0],
                batch[0][1] + sigma * batch[1][1] + sigma2 * batch[2][1],
            ]
        );
    }

    /// The batched check accepts iff all `m` individual checks accept
    /// (completeness side — exactly, by linearity), and a corrupted batch is
    /// rejected w.h.p. (soundness side, exercised statistically over σ).
    #[test]
    fn batched_check_matches_individual_checks() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = Matrix::from_vec(8, 5, avcc_field::random_matrix(&mut rng, 8, 5));
        let key = MatVecKey::<avcc_field::P25>::generate(&block, KeyGenConfig::default(), &mut rng);
        let inputs: Vec<Vec<F25>> = (0..4)
            .map(|_| avcc_field::random_vector(&mut rng, 5))
            .collect();
        let claims: Vec<Vec<F25>> = inputs.iter().map(|w| mat_vec(&block, w)).collect();
        for _ in 0..10 {
            let sigma: F25 = avcc_field::random_element(&mut rng);
            let x_c = combine_with_powers(sigma, &inputs);
            let y_c = combine_with_powers(sigma, &claims);
            assert!(key.verify(&x_c, &y_c), "honest batch must always pass");
            assert!(inputs.iter().zip(&claims).all(|(w, z)| key.verify(w, z)));

            let mut corrupted = claims.clone();
            corrupted[2][0] += F25::ONE;
            let y_bad = combine_with_powers(sigma, &corrupted);
            assert!(!key.verify(&x_c, &y_bad), "corrupted batch must be caught");
            // The per-function fallback localizes function 2.
            let failing: Vec<usize> = corrupted
                .iter()
                .enumerate()
                .filter(|(j, z)| !key.verify(&inputs[*j], z))
                .map(|(j, _)| j)
                .collect();
            assert_eq!(failing, vec![2]);
        }
    }

    #[test]
    fn batch_soundness_adds_the_combination_term() {
        assert_eq!(batch_soundness_error(251, 1, 1), soundness_error(251, 1));
        let m8 = batch_soundness_error(33_554_393, 8, 1);
        assert!((m8 - (7.0 + 1.0) / 33_554_393.0).abs() < 1e-12);
    }

    #[test]
    fn verification_speedup_is_large_for_paper_dimensions() {
        // GISETTE block: m/K = 667 rows, d = 5000 columns.
        let speedup = verification_speedup(667, 5000);
        assert!(speedup > 500.0, "speedup {speedup} unexpectedly small");
    }

    /// Empirically measures the acceptance rate of *random wrong answers* in a
    /// tiny field: it must be close to the theoretical 1/q (here 1/251), which
    /// demonstrates eq. (10) — and that the bound is tight, not just an upper
    /// bound.
    #[test]
    fn empirical_soundness_in_tiny_field() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = Matrix::from_vec(4, 4, avcc_field::random_matrix(&mut rng, 4, 4));
        let key = MatVecKey::<P251>::generate(&block, KeyGenConfig::default(), &mut rng);
        let trials = 20_000;
        let mut accepted_wrong = 0u32;
        for _ in 0..trials {
            let w: Vec<F251> = avcc_field::random_vector(&mut rng, 4);
            let mut z = mat_vec(&block, &w);
            // Corrupt one coordinate by a random nonzero delta.
            let index = rng.gen_range(0..4usize);
            z[index] += F251::from_u64(rng.gen_range(1..251));
            if key.verify(&w, &z) {
                accepted_wrong += 1;
            }
        }
        let rate = accepted_wrong as f64 / trials as f64;
        let theoretical = 1.0 / 251.0;
        assert!(
            rate < 3.0 * theoretical + 1e-3,
            "false-acceptance rate {rate} too far above 1/q = {theoretical}"
        );
    }
}
