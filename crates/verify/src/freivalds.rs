//! The Freivalds integrity check (paper §IV-A, step 3) and its soundness
//! accounting.
//!
//! The check itself is one dot product on each side of eq. (8) / eq. (9):
//! `s⁽¹⁾·w = r⁽¹⁾·z̃` for round 1 and `s⁽²⁾·e = r⁽²⁾·g̃` for round 2. A worker
//! that returns the correct product always passes; a worker that returns
//! anything else passes with probability at most `1/q` per key repetition
//! (eq. 10/11), because the difference vector is nonzero and a uniformly
//! random `r` is orthogonal to a fixed nonzero vector with probability `1/q`.

use avcc_field::{dot, Fp, PrimeModulus};

use crate::keys::MatVecKey;

/// The outcome of a verification together with its cost, so the simulator can
/// charge verification time per worker exactly as Fig. 4 does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreivaldsCheck {
    /// `true` iff every repetition of the check passed.
    pub accepted: bool,
    /// Number of field multiply-accumulate operations performed.
    pub operations: usize,
}

/// Verifies a claimed matrix–vector product against a key. Equivalent to
/// [`MatVecKey::verify`] but also reports the operation count.
pub fn check_mat_vec<M: PrimeModulus>(
    key: &MatVecKey<M>,
    input: &[Fp<M>],
    claimed: &[Fp<M>],
) -> FreivaldsCheck {
    let accepted = key.verify(input, claimed);
    FreivaldsCheck {
        accepted,
        operations: key.verification_cost(),
    }
}

/// Verifies a claimed product with explicit `(r, s)` vectors — the raw form of
/// eq. (8): accepts iff `s·input = r·claimed`.
pub fn check_with_key_pair<M: PrimeModulus>(
    r: &[Fp<M>],
    s: &[Fp<M>],
    input: &[Fp<M>],
    claimed: &[Fp<M>],
) -> bool {
    dot(s, input) == dot(r, claimed)
}

/// Upper bound on the probability that a *wrong* result is accepted:
/// `q^{-repetitions}` (eq. 10/11 generalized to repeated keys).
pub fn soundness_error(modulus: u64, repetitions: u32) -> f64 {
    (1.0 / modulus as f64).powi(repetitions as i32)
}

/// The paper's comparison of verification cost against recomputation: a
/// Freivalds check needs about `rows + cols` multiply-accumulates while
/// recomputing the product needs `rows · cols`; the ratio is the speedup of
/// verification over recomputation.
pub fn verification_speedup(rows: usize, cols: usize) -> f64 {
    (rows * cols) as f64 / (rows + cols) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenConfig;
    use avcc_field::{PrimeField, F25, F251, P251};
    use avcc_linalg::{mat_vec, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn check_reports_cost_and_acceptance() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = Matrix::from_vec(8, 5, avcc_field::random_matrix(&mut rng, 8, 5));
        let key = MatVecKey::generate(&block, KeyGenConfig::default(), &mut rng);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 5);
        let z = mat_vec(&block, &w);
        let check = check_mat_vec(&key, &w, &z);
        assert!(check.accepted);
        assert_eq!(check.operations, 13);
        let mut corrupted = z;
        corrupted[0] += F25::ONE;
        assert!(!check_mat_vec(&key, &w, &corrupted).accepted);
    }

    #[test]
    fn raw_key_pair_check_matches_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        let block = Matrix::from_vec(3, 3, avcc_field::random_matrix(&mut rng, 3, 3));
        let r: Vec<F25> = avcc_field::random_vector(&mut rng, 3);
        let s = avcc_linalg::matt_vec(&block, &r);
        let w: Vec<F25> = avcc_field::random_vector(&mut rng, 3);
        let z = mat_vec(&block, &w);
        assert!(check_with_key_pair(&r, &s, &w, &z));
        let wrong: Vec<F25> = z.iter().map(|&v| v + F25::ONE).collect();
        assert!(!check_with_key_pair(&r, &s, &w, &wrong));
    }

    #[test]
    fn soundness_error_matches_field_size() {
        assert!((soundness_error(33_554_393, 1) - 2.98e-8).abs() < 1e-9);
        let double = soundness_error(33_554_393, 2);
        assert!(double < 1e-15);
        assert_eq!(soundness_error(251, 1), 1.0 / 251.0);
    }

    #[test]
    fn verification_speedup_is_large_for_paper_dimensions() {
        // GISETTE block: m/K = 667 rows, d = 5000 columns.
        let speedup = verification_speedup(667, 5000);
        assert!(speedup > 500.0, "speedup {speedup} unexpectedly small");
    }

    /// Empirically measures the acceptance rate of *random wrong answers* in a
    /// tiny field: it must be close to the theoretical 1/q (here 1/251), which
    /// demonstrates eq. (10) — and that the bound is tight, not just an upper
    /// bound.
    #[test]
    fn empirical_soundness_in_tiny_field() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = Matrix::from_vec(4, 4, avcc_field::random_matrix(&mut rng, 4, 4));
        let key = MatVecKey::<P251>::generate(&block, KeyGenConfig::default(), &mut rng);
        let trials = 20_000;
        let mut accepted_wrong = 0u32;
        for _ in 0..trials {
            let w: Vec<F251> = avcc_field::random_vector(&mut rng, 4);
            let mut z = mat_vec(&block, &w);
            // Corrupt one coordinate by a random nonzero delta.
            let index = rng.gen_range(0..4usize);
            z[index] += F251::from_u64(rng.gen_range(1..251));
            if key.verify(&w, &z) {
                accepted_wrong += 1;
            }
        }
        let rate = accepted_wrong as f64 / trials as f64;
        let theoretical = 1.0 / 251.0;
        assert!(
            rate < 3.0 * theoretical + 1e-3,
            "false-acceptance rate {rate} too far above 1/q = {theoretical}"
        );
    }
}
