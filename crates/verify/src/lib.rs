//! Information-theoretic verifiable computing for matrix operations —
//! Freivalds' algorithm, as used by AVCC to detect Byzantine workers.
//!
//! The paper's key observation (§IV) is that for matrix–vector workloads the
//! master can check a worker's result *individually and cheaply*: with a
//! one-time secret key `r` (a uniformly random vector) and the precomputed
//! product `s = r·X̃`, the claimed result `ẑ = X̃w` is accepted iff
//! `s·w = r·ẑ`. The check costs `O(m + d)` arithmetic operations versus
//! `O(m·d/K)` for recomputing, and a wrong result slips through with
//! probability at most `1/q` (about `3·10⁻⁸` in the paper's 25-bit field).
//! Repeating the check with `t` independent keys drives the soundness error
//! to `q⁻ᵗ`.
//!
//! * [`keys`] — verification-key generation: per-worker round-1 keys
//!   (`s⁽¹⁾ = r⁽¹⁾·X̃`, eq. 6) and round-2 keys (`s⁽²⁾ = r⁽²⁾·X̃ᵀ`, eq. 7).
//! * [`freivalds`] — the integrity checks themselves (eq. 8 / eq. 9), plus a
//!   multi-key variant and the soundness-error bookkeeping.
//! * [`verifier`] — the per-worker [`verifier::WorkerVerifier`] bundling both
//!   rounds, and a [`verifier::VerifierSet`] for a whole cluster, which is
//!   what the AVCC master holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod freivalds;
pub mod keys;
pub mod verifier;

pub use freivalds::{
    batch_soundness_error, check_mat_vec, check_with_power_key, combine_with_powers,
    expand_power_key, power_key_soundness_error, soundness_error, FreivaldsCheck,
};
pub use keys::{KeyGenConfig, MatVecKey, RoundKeys};
pub use verifier::{VerdictStats, VerifierSet, WorkerVerifier};
