//! The socket runtime's contract tests: the TCP/UDS master must produce
//! bit-identical results to the in-process executors, and every wire-level
//! defect — corrupted frame, version mismatch, truncation, disconnect,
//! deadline — must end in a clean eviction (never a panic or a hang)
//! followed by a successful respawn.

use std::time::Duration;

use avcc_sim::cluster::ClusterProfile;
use avcc_sim::executor::{EvictionReason, Executor, ThreadedExecutor};
use avcc_sim::socket::{SocketConfig, SocketExecutor, Transport};
use avcc_sim::wire::{Block, FaultKind};
use proptest::prelude::*;

const Q: u64 = 2_305_843_009_213_693_951; // P61, the largest supported modulus

/// Deterministic pseudo-random canonical elements.
fn elements(count: usize, seed: u64) -> Vec<u64> {
    (0..count as u64)
        .map(|i| {
            seed.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i.wrapping_mul(1_442_695_040_888_963_407))
                % Q
        })
        .collect()
}

fn blocks(workers: usize, rows: usize, cols: usize, seed: u64) -> Vec<Block> {
    (0..workers)
        .map(|w| Block {
            modulus: Q,
            rows: rows as u32,
            cols: cols as u32,
            elements: elements(rows * cols, seed.wrapping_add(w as u64)),
        })
        .collect()
}

fn inputs(workers: usize, functions: usize, cols: usize, seed: u64) -> Vec<Vec<Vec<u64>>> {
    (0..workers)
        .map(|w| {
            (0..functions)
                .map(|f| elements(cols, seed ^ ((w * 31 + f + 7) as u64)))
                .collect()
        })
        .collect()
}

/// Worker-sorted payloads: the value contract, independent of arrival order.
fn payloads(outcomes: Vec<avcc_sim::WorkerOutcome<Vec<Vec<u64>>>>) -> Vec<(usize, Vec<Vec<u64>>)> {
    let mut sorted: Vec<_> = outcomes
        .into_iter()
        .map(|o| (o.worker, o.payload))
        .collect();
    sorted.sort_by_key(|(w, _)| *w);
    sorted
}

fn quick_config(transport: Transport) -> SocketConfig {
    SocketConfig {
        transport,
        connect_timeout: Duration::from_secs(20),
        round_timeout: Duration::from_secs(20),
        ..SocketConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The equivalence gate: for random blocks and inputs, the threaded
    /// executor, the TCP socket executor and the UDS socket executor return
    /// bit-for-bit identical payloads — same kernel, same canonical wire
    /// values, different runtimes.
    #[test]
    fn socket_results_match_threaded_bit_for_bit(
        workers in 2usize..5,
        rows in 1usize..6,
        cols in 1usize..6,
        functions in 1usize..3,
        seed in any::<u64>(),
    ) {
        let blocks = blocks(workers, rows, cols, seed);
        let inputs = inputs(workers, functions, cols, seed);

        let mut threaded = ThreadedExecutor::new(ClusterProfile::uniform(workers));
        threaded.install_blocks(7, &blocks).unwrap();
        let expected = payloads(threaded.execute_round(7, 0, &inputs).unwrap());
        prop_assert_eq!(expected.len(), workers);

        for transport in [Transport::Tcp, Transport::Uds] {
            let mut socket = SocketExecutor::with_config(
                ClusterProfile::uniform(workers),
                quick_config(transport),
            )
            .unwrap();
            socket.install_blocks(7, &blocks).unwrap();
            let got = payloads(socket.execute_round(7, 0, &inputs).unwrap());
            prop_assert_eq!(&got, &expected, "{:?} diverged from threaded", transport);
            prop_assert!(socket.round_evictions().is_empty());
        }
    }
}

/// Every injected wire fault must map to the advertised eviction reason, and
/// the following round must recover the worker via respawn + block re-send.
#[test]
fn every_fault_kind_evicts_cleanly_and_recovers() {
    let cases = [
        (FaultKind::CorruptPayload, EvictionReason::CorruptFrame),
        (FaultKind::BadCrc, EvictionReason::CorruptFrame),
        (FaultKind::WrongVersion, EvictionReason::VersionMismatch),
        (FaultKind::Truncate, EvictionReason::Disconnected),
        (FaultKind::Disconnect, EvictionReason::Disconnected),
    ];
    for (fault, expected_reason) in cases {
        let workers = 3;
        let blocks = blocks(workers, 3, 2, 99);
        let inputs = inputs(workers, 1, 2, 99);
        let mut socket = SocketExecutor::with_config(
            ClusterProfile::uniform(workers),
            quick_config(Transport::Tcp),
        )
        .unwrap();
        socket.install_blocks(1, &blocks).unwrap();

        // Round 0: clean baseline.
        let clean = payloads(socket.execute_round(1, 0, &inputs).unwrap());
        assert_eq!(clean.len(), workers, "{fault:?}: baseline incomplete");

        // Round 1: worker 1's result send exhibits the fault.
        socket.inject_fault(1, fault).unwrap();
        let faulted = socket.execute_round(1, 1, &inputs).unwrap();
        let survivors: Vec<usize> = faulted.iter().map(|o| o.worker).collect();
        assert!(
            !survivors.contains(&1),
            "{fault:?}: the faulted worker's result must not survive"
        );
        assert_eq!(faulted.len(), workers - 1, "{fault:?}: honest results lost");
        let evictions = socket.round_evictions();
        assert_eq!(evictions.len(), 1, "{fault:?}: exactly one eviction");
        assert_eq!(evictions[0].worker, 1);
        assert_eq!(evictions[0].round, 1);
        assert_eq!(
            evictions[0].reason, expected_reason,
            "{fault:?}: wrong eviction reason"
        );

        // Round 2: the worker is respawned, re-sent its block and computes
        // the same values as the clean baseline.
        let recovered = payloads(socket.execute_round(1, 2, &inputs).unwrap());
        assert_eq!(recovered, clean, "{fault:?}: recovery round diverged");
        assert!(socket.round_evictions().is_empty());
        assert!(
            socket.metrics().respawns >= 1,
            "{fault:?}: no respawn counted"
        );
    }
}

/// A worker killed between rounds is revived before the next dispatch; a
/// disabled respawn leaves it evicted instead.
#[test]
fn killed_worker_is_respawned_or_stays_evicted() {
    let workers = 3;
    let blocks = blocks(workers, 2, 2, 5);
    let inputs = inputs(workers, 1, 2, 5);

    let mut socket = SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        quick_config(Transport::Uds),
    )
    .unwrap();
    socket.install_blocks(4, &blocks).unwrap();
    let clean = payloads(socket.execute_round(4, 0, &inputs).unwrap());
    socket.kill_worker(2);
    let after = payloads(socket.execute_round(4, 1, &inputs).unwrap());
    assert_eq!(after, clean, "respawned worker must rejoin seamlessly");
    assert!(socket.metrics().respawns >= 1);

    let mut no_respawn = SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        SocketConfig {
            respawn: false,
            ..quick_config(Transport::Tcp)
        },
    )
    .unwrap();
    no_respawn.install_blocks(4, &blocks).unwrap();
    no_respawn.kill_worker(0);
    let outcomes = no_respawn.execute_round(4, 0, &inputs).unwrap();
    assert_eq!(outcomes.len(), workers - 1);
    let evictions = no_respawn.round_evictions();
    assert_eq!(evictions.len(), 1);
    assert_eq!(evictions[0].worker, 0);
    assert_eq!(evictions[0].reason, EvictionReason::Disconnected);
}

/// A worker that blows the round deadline is evicted as a timed-out
/// straggler — the master never hangs on a silent worker.
#[test]
fn deadline_evicts_silent_stragglers() {
    let workers = 2;
    let blocks = blocks(workers, 2, 2, 13);
    let inputs = inputs(workers, 1, 2, 13);
    // Worker 1 sleeps ~1.2 s (slowdown 13 × 0.1 s/unit); the round allows 0.3 s.
    let profile = ClusterProfile::uniform(workers).with_stragglers(&[1], 13.0);
    let mut socket = SocketExecutor::with_config(
        profile,
        SocketConfig {
            round_timeout: Duration::from_millis(300),
            sleep_per_slowdown_unit: 0.1,
            ..quick_config(Transport::Tcp)
        },
    )
    .unwrap();
    socket.install_blocks(9, &blocks).unwrap();
    let outcomes = socket.execute_round(9, 0, &inputs).unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].worker, 0);
    let evictions = socket.round_evictions();
    assert_eq!(evictions.len(), 1);
    assert_eq!(evictions[0].worker, 1);
    assert_eq!(evictions[0].reason, EvictionReason::TimedOut);
}

/// Measured costs flow through: compute and network seconds are real,
/// non-negative, and arrival = compute + network.
#[test]
fn socket_outcomes_carry_measured_timings() {
    let workers = 2;
    let blocks = blocks(workers, 4, 4, 21);
    let inputs = inputs(workers, 2, 4, 21);
    let mut socket = SocketExecutor::tcp(ClusterProfile::uniform(workers)).unwrap();
    socket.install_blocks(0, &blocks).unwrap();
    let outcomes = socket.execute_round(0, 0, &inputs).unwrap();
    assert_eq!(outcomes.len(), workers);
    for outcome in &outcomes {
        assert!(outcome.compute_seconds >= 0.0);
        assert!(outcome.network_seconds >= 0.0);
        assert!(outcome.arrival_seconds >= outcome.compute_seconds);
        assert!(!outcome.corrupted);
    }
    let metrics = socket.metrics();
    assert!(metrics.frames_sent >= (workers * 2) as u64); // hellos acks + blocks + tasks
    assert!(metrics.bytes_received > 0);
}

/// Respawn attempts are counted per worker, and the backoff delay function
/// is deterministic, capped and jittered.
#[test]
fn respawn_attempts_are_counted_and_backoff_is_deterministic() {
    use avcc_sim::socket::backoff_delay;

    let workers = 3;
    let blocks = blocks(workers, 2, 2, 5);
    let inputs = inputs(workers, 1, 2, 5);
    let mut socket = SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        quick_config(Transport::Tcp),
    )
    .unwrap();
    socket.install_blocks(4, &blocks).unwrap();
    let _ = socket.execute_round(4, 0, &inputs).unwrap();
    assert_eq!(socket.metrics().respawn_attempts, vec![0, 0, 0]);
    socket.kill_worker(2);
    let _ = socket.execute_round(4, 1, &inputs).unwrap();
    let metrics = socket.metrics();
    assert_eq!(
        metrics.respawn_attempts,
        vec![0, 0, 1],
        "exactly the killed worker burns one (successful) respawn attempt"
    );
    assert_eq!(metrics.respawns, 1);

    // The pure backoff schedule: deterministic, growing, capped, jittered.
    let base = Duration::from_millis(50);
    let cap = Duration::from_secs(2);
    for worker in 0..4 {
        for attempt in 0..10 {
            let d = backoff_delay(attempt, worker, base, cap);
            assert_eq!(d, backoff_delay(attempt, worker, base, cap));
            assert!(d <= cap, "delay {d:?} beyond cap");
            assert!(d >= base / 2, "delay {d:?} below half the base");
        }
        // Exponential growth dominates jitter across 4 doublings.
        let early = backoff_delay(0, worker, base, cap);
        let late = backoff_delay(4, worker, base, cap);
        assert!(late > early, "backoff must grow: {early:?} vs {late:?}");
    }
    // Jitter de-synchronizes workers at the same attempt number.
    let delays: Vec<Duration> = (0..6).map(|w| backoff_delay(3, w, base, cap)).collect();
    assert!(delays.windows(2).any(|p| p[0] != p[1]));
}

/// A scripted churn schedule drives the real socket fleet: a flap takes the
/// worker's connection down for two rounds (respawn suppressed), then
/// re-admission replays its cached blocks and the fleet heals bit-for-bit.
#[test]
fn churn_flap_suppresses_respawn_then_readmits_with_cached_blocks() {
    use avcc_sim::churn::{ChaosSchedule, ChurnEventKind};

    let workers = 3;
    let blocks = blocks(workers, 2, 2, 11);
    let inputs = inputs(workers, 1, 2, 11);
    let mut socket = SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        quick_config(Transport::Tcp),
    )
    .unwrap();
    socket.set_churn(ChaosSchedule::flap(&[1], 1, 2));
    socket.install_blocks(0, &blocks).unwrap();

    let clean = payloads(socket.execute_round(0, 0, &inputs).unwrap());
    assert_eq!(clean.len(), workers);

    // Rounds 1 and 2: worker 1 is down; no respawn attempts may be burned.
    for round in [1, 2] {
        let outcomes = socket.execute_round(0, round, &inputs).unwrap();
        let survivors: Vec<usize> = outcomes.iter().map(|o| o.worker).collect();
        assert!(!survivors.contains(&1), "round {round}: worker 1 is down");
        assert_eq!(outcomes.len(), workers - 1);
        assert_eq!(socket.live_workers(), workers - 1);
    }
    assert_eq!(socket.metrics().respawn_attempts[1], 0);

    // Round 3: re-admission — respawn, handshake, cached block replay.
    let healed = payloads(socket.execute_round(0, 3, &inputs).unwrap());
    assert_eq!(healed, clean, "re-admitted worker must compute identically");
    let metrics = socket.metrics();
    assert_eq!(metrics.respawn_attempts[1], 1);
    assert!(metrics.respawns >= 1);
    let kinds: Vec<ChurnEventKind> = socket.churn_events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![ChurnEventKind::FlapDown, ChurnEventKind::FlapUp]
    );
}

/// A churn corruption window arms the wire-level payload fault: the master
/// sees a genuine checksum mismatch, evicts the worker as a corrupt frame,
/// and the worker rejoins honestly once the window closes.
#[test]
fn churn_corrupt_window_evicts_then_rejoins() {
    use avcc_sim::churn::ChaosSchedule;

    let workers = 3;
    let blocks = blocks(workers, 2, 2, 17);
    let inputs = inputs(workers, 1, 2, 17);
    let mut socket = SocketExecutor::with_config(
        ClusterProfile::uniform(workers),
        quick_config(Transport::Uds),
    )
    .unwrap();
    socket.set_churn(ChaosSchedule::corrupt_then_rejoin(&[0], 1, 1));
    socket.install_blocks(0, &blocks).unwrap();

    let clean = payloads(socket.execute_round(0, 0, &inputs).unwrap());

    let corrupted = socket.execute_round(0, 1, &inputs).unwrap();
    let survivors: Vec<usize> = corrupted.iter().map(|o| o.worker).collect();
    assert!(!survivors.contains(&0), "corrupt result must not survive");
    assert!(socket
        .round_evictions()
        .iter()
        .any(|e| e.worker == 0 && e.reason == EvictionReason::CorruptFrame));

    let healed = payloads(socket.execute_round(0, 2, &inputs).unwrap());
    assert_eq!(healed, clean, "post-window round must be clean again");
}

/// Executor-level bookkeeping errors are typed, not panics.
#[test]
fn unknown_job_and_overwide_rounds_are_errors() {
    let mut socket = SocketExecutor::tcp(ClusterProfile::uniform(2)).unwrap();
    let inputs = inputs(2, 1, 2, 1);
    assert!(socket.execute_round(42, 0, &inputs).is_err());
    let too_many = blocks(3, 2, 2, 1);
    assert!(socket.install_blocks(0, &too_many).is_err());
}
