//! Execution engines that place worker results on a timeline.
//!
//! Two engines share the same outcome type:
//!
//! * [`VirtualExecutor`] — the engine every experiment uses. Each worker task
//!   is executed for real (so the payload is a genuine finite-field result and
//!   its cost is measured with a monotonic clock), then the measured compute
//!   time is multiplied by the worker's slowdown factor and a network transfer
//!   time is added, producing a deterministic-enough virtual arrival time.
//!   Nothing sleeps; a 50-iteration training run over a 12-worker cluster
//!   completes in seconds of real time while still exhibiting the arrival
//!   orderings the paper's results depend on.
//! * [`ThreadedExecutor`] — every worker task runs as a task on the shared
//!   [`avcc_pool`] work-stealing pool and reports back over an mpsc channel;
//!   stragglers really do finish later. Used by the examples to demonstrate
//!   that the same master logic drives a live cluster. Because worker tasks
//!   are pool tasks (not one dedicated OS thread per worker, as in earlier
//!   revisions), a worker task may itself call the pool-backed parallel
//!   kernels in `avcc_linalg` — the nested fan-out shares the one fixed set
//!   of pool threads instead of multiplying OS threads, and a worker waiting
//!   on its inner kernel chunks executes those same chunks meanwhile (the
//!   pool's *scope-local* helping rule, which is also what keeps a waiter
//!   from nesting another worker's task — and sleep — inside its own
//!   measured compute span), so the nesting cannot deadlock.
//!
//! [`VirtualExecutor`] stays deliberately serial: it derives each worker's
//! virtual cost from a wall-clock measurement of that worker's task, and
//! running tasks concurrently would let them contend and corrupt each
//! other's measurements.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use avcc_wire::{result_frame_bytes, Block, TypedBlock, WireError};

use crate::churn::{ChurnEvent, ChurnSchedule, ChurnState};
use crate::cluster::ClusterProfile;

/// The result of one worker's participation in a round.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerOutcome<T> {
    /// The worker index.
    pub worker: usize,
    /// The (possibly corrupted) payload the worker sent back.
    pub payload: T,
    /// Simulated compute time in seconds.
    pub compute_seconds: f64,
    /// Simulated network time in seconds.
    pub network_seconds: f64,
    /// Simulated arrival time at the master. All workers start at time
    /// zero; for the [`VirtualExecutor`] this is exactly
    /// `compute + network`, while for the [`ThreadedExecutor`] it is the
    /// real send instant plus network time — which also includes any time
    /// the task spent queued on the pool, so `arrival ≥ compute + network`.
    pub arrival_seconds: f64,
    /// `true` iff the payload was modified by a Byzantine attack.
    pub corrupted: bool,
}

/// Why an executor dropped a worker from a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionReason {
    /// The worker's frame failed its CRC-32C check (or had bad magic) —
    /// evidence of corruption, counted like a Byzantine worker.
    CorruptFrame,
    /// The worker spoke an unsupported protocol version.
    VersionMismatch,
    /// The connection died (EOF, reset, or a truncated frame followed by
    /// hang-up).
    Disconnected,
    /// The worker sent nothing before the round deadline — a straggler
    /// beyond the tolerated horizon.
    TimedOut,
    /// The worker answered with an `ERROR` frame or otherwise violated the
    /// protocol state machine.
    Protocol,
}

/// One worker dropped from one round. Missing outcomes are exactly what the
/// engines' straggler machinery already tolerates; the reason is what the
/// master's metrics record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The worker index.
    pub worker: usize,
    /// The round serial the eviction happened in.
    pub round: u64,
    /// Why.
    pub reason: EvictionReason,
}

/// A failure of the execution substrate itself (as opposed to a per-worker
/// fault, which surfaces as a missing outcome plus an [`Eviction`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutorError {
    /// `execute_round` was called for a job with no installed blocks.
    UnknownJob {
        /// The offending job id.
        job: u64,
    },
    /// More per-worker inputs (or blocks) than the executor has workers.
    TooManyTasks {
        /// Inputs supplied.
        tasks: usize,
        /// Workers available.
        workers: usize,
    },
    /// A block failed wire-level validation at install time.
    BadBlock {
        /// Index of the offending block.
        worker: usize,
        /// The wire-level failure.
        error: WireError,
    },
    /// The runtime could not launch or connect its workers.
    Spawn {
        /// Human-readable description.
        context: String,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownJob { job } => write!(f, "no blocks installed for job {job}"),
            Self::TooManyTasks { tasks, workers } => {
                write!(f, "{tasks} per-worker inputs but only {workers} workers")
            }
            Self::BadBlock { worker, error } => {
                write!(f, "block for worker {worker} rejected: {error}")
            }
            Self::Spawn { context } => write!(f, "failed to launch workers: {context}"),
        }
    }
}

impl std::error::Error for ExecutorError {}

/// The object-safe execution interface every master-side driver can run on:
/// in-process virtual timelines, in-process real threads, or real sockets to
/// real worker processes — same trait, bit-identical payloads.
///
/// The data model is deliberately modulus-erased (`u64` canonical residues)
/// and closure-free, because a closure cannot cross a process boundary:
///
/// * [`install_blocks`](Executor::install_blocks) ships each worker its coded
///   matrix block **once per job** — the paper's real-system economics, where
///   the encoded dataset is distributed ahead of time and rounds only move
///   inputs and outputs.
/// * [`execute_round`](Executor::execute_round) sends worker `i` the round's
///   `inputs[i]` (one vector per function) and returns the outcomes that
///   made it back, in arrival order. A worker with no outcome is a straggler
///   or was evicted — exactly the shape the decode layer already handles.
/// * Byzantine corruption is applied by the *master* on arrival (as the
///   scheduler's `deliver` does), never by this trait: a real network cannot
///   be asked to corrupt payloads on cue.
pub trait Executor {
    /// Fleet width.
    fn workers(&self) -> usize;

    /// The cluster profile (straggler slowdowns, network model).
    fn profile(&self) -> &ClusterProfile;

    /// Installs `blocks[i]` as worker `i`'s resident block for `job`,
    /// replacing any previous block for that job. `blocks.len()` may be less
    /// than the fleet width (a job may use a sub-fleet after adaptation).
    fn install_blocks(&mut self, job: u64, blocks: &[Block]) -> Result<(), ExecutorError>;

    /// Runs one round of `job`: worker `i` multiplies its resident block by
    /// each vector in `inputs[i]`. Returns outcomes in arrival order;
    /// workers that failed mid-round are simply absent (see
    /// [`round_evictions`](Executor::round_evictions)).
    fn execute_round(
        &mut self,
        job: u64,
        round: u64,
        inputs: &[Vec<Vec<u64>>],
    ) -> Result<Vec<WorkerOutcome<Vec<Vec<u64>>>>, ExecutorError>;

    /// The workers evicted during the most recent
    /// [`execute_round`](Executor::execute_round) call, with reasons.
    fn round_evictions(&self) -> &[Eviction] {
        &[]
    }

    /// Typed churn records accumulated so far, in firing order. Empty unless
    /// a [`ChurnSchedule`] was installed on the executor
    /// (`set_churn` on the concrete engines); the schedule clock is the
    /// `round` argument of [`execute_round`](Executor::execute_round), never
    /// wall time.
    fn churn_events(&self) -> &[ChurnEvent] {
        &[]
    }

    /// Number of workers currently serving rounds: fleet width minus workers
    /// the churn schedule holds down right now.
    fn live_workers(&self) -> usize {
        self.workers()
    }
}

/// Makes a payload detectably corrupt: the first element of the first
/// non-empty part is set to `u64::MAX`, which is non-canonical for every
/// supported modulus, so the wire lift drops the worker from the round.
/// Deterministic and scheme-independent — exactly the corruption shape the
/// chaos harness's corrupt-then-rejoin schedules need.
fn clobber(payload: &mut [Vec<u64>]) {
    if let Some(part) = payload.iter_mut().find(|part| !part.is_empty()) {
        part[0] = u64::MAX;
    }
}

/// Installs wire blocks as typed blocks, validating each against its modulus.
fn type_blocks(blocks: &[Block]) -> Result<Vec<TypedBlock>, ExecutorError> {
    blocks
        .iter()
        .enumerate()
        .map(|(worker, block)| {
            TypedBlock::from_block(block).map_err(|error| ExecutorError::BadBlock { worker, error })
        })
        .collect()
}

/// The virtual-timeline executor.
#[derive(Debug, Clone)]
pub struct VirtualExecutor {
    profile: ClusterProfile,
    /// Multiplier translating measured local compute time into simulated
    /// worker time (the paper's Minnow Atom cores are far slower than a
    /// development machine; the default of 40 puts per-iteration times in the
    /// same ballpark as the paper's seconds-per-iteration scale).
    pub time_scale: f64,
    /// Per-job resident blocks for the modulus-erased [`Executor`] path.
    blocks: HashMap<u64, Vec<TypedBlock>>,
    /// Scripted fleet churn, consumed on the round clock (`None` = quiet).
    churn: Option<ChurnState>,
}

impl VirtualExecutor {
    /// Creates an executor over the given cluster profile with the default
    /// time scale.
    pub fn new(profile: ClusterProfile) -> Self {
        VirtualExecutor {
            profile,
            time_scale: 40.0,
            blocks: HashMap::new(),
            churn: None,
        }
    }

    /// Installs a churn schedule, consumed against the round indices passed
    /// to [`Executor::execute_round`]. Replaces any previous schedule and
    /// resets its state.
    pub fn set_churn(&mut self, schedule: ChurnSchedule) {
        self.churn = Some(ChurnState::new(schedule, self.profile.len()));
    }

    /// The churn state, if a schedule is installed.
    pub fn churn(&self) -> Option<&ChurnState> {
        self.churn.as_ref()
    }

    /// Sets the compute-time scale factor.
    pub fn with_time_scale(mut self, time_scale: f64) -> Self {
        self.time_scale = time_scale;
        self
    }

    /// The cluster profile.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Mutable access to the cluster profile (e.g. to move straggler flags
    /// between iterations).
    pub fn profile_mut(&mut self) -> &mut ClusterProfile {
        &mut self.profile
    }

    /// Replaces the cluster profile (used by the dynamic-coding controller
    /// when it drops workers).
    pub fn set_profile(&mut self, profile: ClusterProfile) {
        self.profile = profile;
    }

    /// Runs one round: executes `tasks[i]` as worker `i`, applies `corrupt`
    /// to each payload (returning whether it modified it), charges compute and
    /// network time and returns the outcomes sorted by arrival time.
    ///
    /// # Panics
    /// Panics if the number of tasks differs from the number of workers in the
    /// profile.
    pub fn run_round<T, Task, Corrupt>(
        &self,
        tasks: Vec<Task>,
        payload_bytes: impl Fn(&T) -> usize,
        mut corrupt: Corrupt,
    ) -> Vec<WorkerOutcome<T>>
    where
        Task: FnOnce() -> T,
        Corrupt: FnMut(usize, &mut T) -> bool,
    {
        assert_eq!(
            tasks.len(),
            self.profile.len(),
            "expected one task per worker ({}), got {}",
            self.profile.len(),
            tasks.len()
        );
        let mut outcomes: Vec<WorkerOutcome<T>> = tasks
            .into_iter()
            .enumerate()
            .map(|(worker, task)| {
                let started = Instant::now();
                let mut payload = task();
                let measured = started.elapsed().as_secs_f64();
                let corrupted = corrupt(worker, &mut payload);
                let compute_seconds =
                    measured * self.time_scale * self.profile.worker(worker).effective_slowdown();
                let network_seconds = self
                    .profile
                    .network
                    .transfer_seconds(payload_bytes(&payload));
                WorkerOutcome {
                    worker,
                    arrival_seconds: compute_seconds + network_seconds,
                    compute_seconds,
                    network_seconds,
                    payload,
                    corrupted,
                }
            })
            .collect();
        outcomes.sort_by(|a, b| {
            a.arrival_seconds
                .partial_cmp(&b.arrival_seconds)
                .expect("arrival times are finite")
        });
        outcomes
    }
}

/// Real seconds of sleep charged to a worker with the given effective
/// slowdown, at `per_unit` seconds per slowdown unit above 1.0. This is how
/// both the [`ThreadedExecutor`] and the `avcc-serve` fleet realize a
/// profile's stragglers on live threads: a nominal worker (slowdown 1.0)
/// sleeps nothing, a 6× straggler sleeps `5 × per_unit`.
pub fn slowdown_sleep_seconds(slowdown: f64, per_unit: f64) -> f64 {
    (slowdown - 1.0).max(0.0) * per_unit
}

/// A real-concurrency executor: every worker runs as a task on the shared
/// work-stealing pool and sends its result back over a channel. Straggler
/// slowdowns are realized as actual (scaled-down) sleeps so the arrival
/// order visibly matches the profile when the pool has at least as many
/// threads as there are workers (`AVCC_THREADS=<N>` guarantees it).
///
/// On smaller pools workers time-share the pool threads and whole tasks
/// serialize, exactly as a real cluster node with fewer cores than
/// processes would behave: arrival order degrades toward spawn order (a
/// straggler early in the queue delays everyone behind it rather than only
/// itself), and queue wait shows up in `arrival_seconds`. Per-worker
/// `compute_seconds` stays honest everywhere — it is measured from the
/// moment the worker's task starts running, not from the start of the
/// round.
#[derive(Debug, Clone)]
pub struct ThreadedExecutor {
    profile: ClusterProfile,
    /// Seconds of real sleep charged per unit of effective slowdown above 1.0
    /// (kept small so examples finish quickly).
    pub sleep_per_slowdown_unit: f64,
    /// Per-job resident blocks for the modulus-erased [`Executor`] path
    /// (`Arc` so pool tasks can share them without cloning matrices).
    blocks: HashMap<u64, Vec<Arc<TypedBlock>>>,
    /// Scripted fleet churn, consumed on the round clock (`None` = quiet).
    churn: Option<ChurnState>,
}

impl ThreadedExecutor {
    /// Creates a threaded executor over the given profile.
    pub fn new(profile: ClusterProfile) -> Self {
        ThreadedExecutor {
            profile,
            sleep_per_slowdown_unit: 0.01,
            blocks: HashMap::new(),
            churn: None,
        }
    }

    /// The cluster profile.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Installs a churn schedule, consumed against the round indices passed
    /// to [`Executor::execute_round`]. Replaces any previous schedule and
    /// resets its state.
    pub fn set_churn(&mut self, schedule: ChurnSchedule) {
        self.churn = Some(ChurnState::new(schedule, self.profile.len()));
    }

    /// The churn state, if a schedule is installed.
    pub fn churn(&self) -> Option<&ChurnState> {
        self.churn.as_ref()
    }

    /// Runs one round as pool tasks. Results are returned in arrival order
    /// (the order in which the master's channel received them).
    pub fn run_round<T, Task, Corrupt>(
        &self,
        tasks: Vec<Task>,
        payload_bytes: impl Fn(&T) -> usize,
        mut corrupt: Corrupt,
    ) -> Vec<WorkerOutcome<T>>
    where
        T: Send,
        Task: FnOnce() -> T + Send,
        Corrupt: FnMut(usize, &mut T) -> bool,
    {
        assert_eq!(
            tasks.len(),
            self.profile.len(),
            "expected one task per worker ({}), got {}",
            self.profile.len(),
            tasks.len()
        );
        let (sender, receiver) = mpsc::channel();
        let round_start = Instant::now();
        // The scope returns once every worker task has sent its result, so
        // draining the channel afterwards never blocks. (Collecting *inside*
        // the scope body would deadlock on small pools: the body runs before
        // the scope starts executing queued tasks.)
        avcc_pool::scope(|scope| {
            for (worker, task) in tasks.into_iter().enumerate() {
                let sender = sender.clone();
                let slowdown = self.profile.worker(worker).effective_slowdown();
                let extra_sleep = slowdown_sleep_seconds(slowdown, self.sleep_per_slowdown_unit);
                scope.spawn(move || {
                    // Compute time is the task's own execution span; on a
                    // pool smaller than the worker count the task may also
                    // have *queued* behind other workers, and that wait
                    // belongs to arrival, not compute.
                    let task_start = Instant::now();
                    let payload = task();
                    if extra_sleep > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(extra_sleep));
                    }
                    let compute = task_start.elapsed().as_secs_f64();
                    let sent_at = round_start.elapsed().as_secs_f64();
                    // A closed receiver just means the master stopped early.
                    let _ = sender.send((worker, payload, compute, sent_at));
                });
            }
        });
        drop(sender);
        let mut arrived: Vec<(usize, T, f64, f64)> = receiver.iter().collect();
        // The channel already yields messages in arrival order; keep it.
        let outcomes = arrived
            .drain(..)
            .map(|(worker, mut payload, compute_seconds, sent_at)| {
                let corrupted = corrupt(worker, &mut payload);
                let network_seconds = self
                    .profile
                    .network
                    .transfer_seconds(payload_bytes(&payload));
                WorkerOutcome {
                    worker,
                    compute_seconds,
                    network_seconds,
                    arrival_seconds: sent_at + network_seconds,
                    payload,
                    corrupted,
                }
            })
            .collect();
        outcomes
    }
}

impl Executor for VirtualExecutor {
    fn workers(&self) -> usize {
        self.profile.len()
    }

    fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    fn install_blocks(&mut self, job: u64, blocks: &[Block]) -> Result<(), ExecutorError> {
        if blocks.len() > self.profile.len() {
            return Err(ExecutorError::TooManyTasks {
                tasks: blocks.len(),
                workers: self.profile.len(),
            });
        }
        self.blocks.insert(job, type_blocks(blocks)?);
        Ok(())
    }

    fn execute_round(
        &mut self,
        job: u64,
        round: u64,
        inputs: &[Vec<Vec<u64>>],
    ) -> Result<Vec<WorkerOutcome<Vec<Vec<u64>>>>, ExecutorError> {
        if let Some(churn) = self.churn.as_mut() {
            churn.advance_to(round);
        }
        let blocks = self
            .blocks
            .get(&job)
            .ok_or(ExecutorError::UnknownJob { job })?;
        if inputs.len() > blocks.len() {
            return Err(ExecutorError::TooManyTasks {
                tasks: inputs.len(),
                workers: blocks.len(),
            });
        }
        let churn = self.churn.as_ref();
        let mut outcomes: Vec<WorkerOutcome<Vec<Vec<u64>>>> = Vec::with_capacity(inputs.len());
        for (worker, worker_inputs) in inputs.iter().enumerate() {
            if churn.is_some_and(|c| c.is_down(worker)) {
                // A downed worker simply contributes no outcome — the same
                // shape as a straggler beyond the horizon.
                continue;
            }
            let started = Instant::now();
            let mut payload = blocks[worker]
                .execute(worker_inputs)
                .map_err(|error| ExecutorError::BadBlock { worker, error })?;
            if churn.is_some_and(|c| c.is_corrupting(worker)) {
                clobber(&mut payload);
            }
            let measured = started.elapsed().as_secs_f64();
            let stall = churn.map_or(1.0, |c| c.slowdown_multiplier(worker));
            let compute_seconds = measured
                * self.time_scale
                * self.profile.worker(worker).effective_slowdown()
                * stall;
            let functions = payload.len();
            let output_len = payload.first().map_or(0, Vec::len);
            // Charge the *true* wire size of the result frame, so the
            // virtual network cost matches what the socket runtime ships.
            let network_seconds = self
                .profile
                .network
                .transfer_seconds(result_frame_bytes(functions, output_len));
            outcomes.push(WorkerOutcome {
                worker,
                arrival_seconds: compute_seconds + network_seconds,
                compute_seconds,
                network_seconds,
                payload,
                corrupted: false,
            });
        }
        outcomes.sort_by(|a, b| {
            a.arrival_seconds
                .partial_cmp(&b.arrival_seconds)
                .expect("arrival times are finite")
        });
        Ok(outcomes)
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        self.churn.as_ref().map_or(&[], ChurnState::events)
    }

    fn live_workers(&self) -> usize {
        self.churn
            .as_ref()
            .map_or(self.profile.len(), ChurnState::live_count)
    }
}

impl Executor for ThreadedExecutor {
    fn workers(&self) -> usize {
        self.profile.len()
    }

    fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    fn install_blocks(&mut self, job: u64, blocks: &[Block]) -> Result<(), ExecutorError> {
        if blocks.len() > self.profile.len() {
            return Err(ExecutorError::TooManyTasks {
                tasks: blocks.len(),
                workers: self.profile.len(),
            });
        }
        self.blocks.insert(
            job,
            type_blocks(blocks)?.into_iter().map(Arc::new).collect(),
        );
        Ok(())
    }

    fn execute_round(
        &mut self,
        job: u64,
        round: u64,
        inputs: &[Vec<Vec<u64>>],
    ) -> Result<Vec<WorkerOutcome<Vec<Vec<u64>>>>, ExecutorError> {
        if let Some(churn) = self.churn.as_mut() {
            churn.advance_to(round);
        }
        let blocks = self
            .blocks
            .get(&job)
            .ok_or(ExecutorError::UnknownJob { job })?;
        if inputs.len() > blocks.len() {
            return Err(ExecutorError::TooManyTasks {
                tasks: inputs.len(),
                workers: blocks.len(),
            });
        }
        let churn = self.churn.as_ref();
        let corrupting: Vec<bool> = (0..inputs.len())
            .map(|w| churn.is_some_and(|c| c.is_corrupting(w)))
            .collect();
        let (sender, receiver) = mpsc::channel();
        let round_start = Instant::now();
        avcc_pool::scope(|scope| {
            for (worker, worker_inputs) in inputs.iter().enumerate() {
                if churn.is_some_and(|c| c.is_down(worker)) {
                    // Down per the schedule: no task, no outcome.
                    continue;
                }
                let sender = sender.clone();
                let block = Arc::clone(&blocks[worker]);
                let slowdown = self.profile.worker(worker).effective_slowdown()
                    * churn.map_or(1.0, |c| c.slowdown_multiplier(worker));
                let extra_sleep = slowdown_sleep_seconds(slowdown, self.sleep_per_slowdown_unit);
                scope.spawn(move || {
                    let task_start = Instant::now();
                    let payload = block.execute(worker_inputs);
                    if extra_sleep > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(extra_sleep));
                    }
                    let compute = task_start.elapsed().as_secs_f64();
                    let sent_at = round_start.elapsed().as_secs_f64();
                    let _ = sender.send((worker, payload, compute, sent_at));
                });
            }
        });
        drop(sender);
        let mut outcomes = Vec::with_capacity(inputs.len());
        for (worker, payload, compute_seconds, sent_at) in receiver.iter() {
            let mut payload = payload.map_err(|error| ExecutorError::BadBlock { worker, error })?;
            if corrupting[worker] {
                clobber(&mut payload);
            }
            let functions = payload.len();
            let output_len = payload.first().map_or(0, Vec::len);
            let network_seconds = self
                .profile
                .network
                .transfer_seconds(result_frame_bytes(functions, output_len));
            outcomes.push(WorkerOutcome {
                worker,
                compute_seconds,
                network_seconds,
                arrival_seconds: sent_at + network_seconds,
                payload,
                corrupted: false,
            });
        }
        Ok(outcomes)
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        self.churn.as_ref().map_or(&[], ChurnState::events)
    }

    fn live_workers(&self) -> usize {
        self.churn
            .as_ref()
            .map_or(self.profile.len(), ChurnState::live_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackModel, ByzantineSpec};
    use avcc_field::{PrimeField, F25};

    /// A worker task that does a deterministic amount of field arithmetic so
    /// measured compute times are non-trivial and comparable across workers.
    fn busy_task(worker: usize, work: usize) -> impl FnOnce() -> Vec<F25> {
        move || {
            let mut accumulator = F25::from_u64(worker as u64 + 1);
            for i in 0..work {
                accumulator = accumulator * F25::from_u64((i % 1000) as u64 + 1) + F25::ONE;
            }
            vec![accumulator; 8]
        }
    }

    fn byte_len(v: &[F25]) -> usize {
        v.len() * 8
    }

    #[test]
    fn virtual_round_returns_one_outcome_per_worker() {
        let executor = VirtualExecutor::new(ClusterProfile::uniform(4)).with_time_scale(1.0);
        let tasks: Vec<_> = (0..4).map(|w| busy_task(w, 2_000)).collect();
        let outcomes = executor.run_round(tasks, |v| byte_len(v), |_, _| false);
        assert_eq!(outcomes.len(), 4);
        let mut workers: Vec<usize> = outcomes.iter().map(|o| o.worker).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        for outcome in &outcomes {
            assert!(outcome.compute_seconds >= 0.0);
            assert!(outcome.network_seconds > 0.0);
            assert!(
                (outcome.arrival_seconds - outcome.compute_seconds - outcome.network_seconds).abs()
                    < 1e-12
            );
            assert!(!outcome.corrupted);
        }
    }

    #[test]
    fn outcomes_are_sorted_by_arrival() {
        let executor = VirtualExecutor::new(ClusterProfile::uniform(6).with_stragglers(&[0], 50.0))
            .with_time_scale(1.0);
        let tasks: Vec<_> = (0..6).map(|w| busy_task(w, 20_000)).collect();
        let outcomes = executor.run_round(tasks, |v| byte_len(v), |_, _| false);
        for pair in outcomes.windows(2) {
            assert!(pair[0].arrival_seconds <= pair[1].arrival_seconds);
        }
        // The heavy straggler must arrive last.
        assert_eq!(outcomes.last().unwrap().worker, 0);
    }

    #[test]
    fn stragglers_arrive_after_nominal_workers() {
        let profile = ClusterProfile::uniform(5).with_stragglers(&[2, 4], 100.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let tasks: Vec<_> = (0..5).map(|w| busy_task(w, 50_000)).collect();
        let outcomes = executor.run_round(tasks, |v| byte_len(v), |_, _| false);
        let last_two: Vec<usize> = outcomes[3..].iter().map(|o| o.worker).collect();
        assert!(last_two.contains(&2) && last_two.contains(&4));
    }

    #[test]
    fn corruption_callback_marks_payloads() {
        let executor = VirtualExecutor::new(ClusterProfile::uniform(3)).with_time_scale(1.0);
        let spec = ByzantineSpec::new([1], AttackModel::constant());
        let tasks: Vec<_> = (0..3).map(|w| busy_task(w, 1_000)).collect();
        let outcomes = executor.run_round(
            tasks,
            |v| byte_len(v),
            |worker, payload: &mut Vec<F25>| spec.corrupt(worker, payload),
        );
        for outcome in &outcomes {
            if outcome.worker == 1 {
                assert!(outcome.corrupted);
                assert!(outcome.payload.iter().all(|&v| v == F25::from_u64(3)));
            } else {
                assert!(!outcome.corrupted);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one task per worker")]
    fn task_count_mismatch_panics() {
        let executor = VirtualExecutor::new(ClusterProfile::uniform(3));
        let tasks: Vec<_> = (0..2).map(|w| busy_task(w, 10)).collect();
        let _ = executor.run_round(tasks, |v| byte_len(v), |_, _| false);
    }

    #[test]
    fn time_scale_scales_compute_linearly() {
        let profile = ClusterProfile::uniform(1);
        let tasks = || vec![busy_task(0, 30_000)];
        let slow = VirtualExecutor::new(profile.clone()).with_time_scale(100.0);
        let fast = VirtualExecutor::new(profile).with_time_scale(1.0);
        let slow_outcome = &slow.run_round(tasks(), |v| byte_len(v), |_, _| false)[0];
        let fast_outcome = &fast.run_round(tasks(), |v| byte_len(v), |_, _| false)[0];
        // Measured times vary between runs, but a 100x scale must dominate
        // measurement noise by a wide margin.
        assert!(slow_outcome.compute_seconds > fast_outcome.compute_seconds * 5.0);
    }

    #[test]
    fn threaded_executor_nests_pool_backed_kernels_without_deadlock() {
        // The composition the pool exists for: the executor fans 8 worker
        // tasks onto the pool, and every worker task itself fans a blocked
        // kernel onto the same pool. With per-worker OS threads this was 8 +
        // 8*4 threads; with the pool it must complete on ANY pool size
        // because threads waiting on inner scopes execute pending tasks.
        use avcc_linalg::{mat_vec, mat_vec_parallel, Matrix};
        use rand::SeedableRng;
        let workers = 8;
        let (rows, cols) = (128usize, 160usize);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let matrix = std::sync::Arc::new(Matrix::from_vec(
            rows,
            cols,
            avcc_field::random_matrix(&mut rng, rows, cols),
        ));
        let x: std::sync::Arc<Vec<F25>> =
            std::sync::Arc::new(avcc_field::random_vector(&mut rng, cols));
        let expected = mat_vec(&matrix, &x);
        let executor = ThreadedExecutor::new(ClusterProfile::uniform(workers));
        let tasks: Vec<_> = (0..workers)
            .map(|_| {
                let matrix = std::sync::Arc::clone(&matrix);
                let x = std::sync::Arc::clone(&x);
                move || mat_vec_parallel(&matrix, &x, 4)
            })
            .collect();
        let outcomes = executor.run_round(tasks, |v: &Vec<F25>| v.len() * 8, |_, _| false);
        assert_eq!(outcomes.len(), workers);
        for outcome in &outcomes {
            assert_eq!(outcome.payload, expected);
        }
    }

    /// A 2×2 block over the 25-bit field for trait-path churn tests.
    fn tiny_block() -> avcc_wire::Block {
        avcc_wire::Block {
            modulus: <avcc_field::P25 as avcc_field::PrimeModulus>::MODULUS,
            rows: 2,
            cols: 2,
            elements: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn threaded_churn_skips_down_workers_and_clobbers_corrupt_windows() {
        use crate::churn::{ChurnAction, ChurnEventKind, ChurnSchedule};
        let mut executor = ThreadedExecutor::new(ClusterProfile::uniform(4));
        executor.sleep_per_slowdown_unit = 0.0;
        executor.set_churn(
            ChurnSchedule::quiet()
                .at(0, ChurnAction::Crash { worker: 1 })
                .at(
                    0,
                    ChurnAction::Corrupt {
                        worker: 2,
                        rounds: 1,
                    },
                ),
        );
        let blocks = vec![tiny_block(); 4];
        executor.install_blocks(7, &blocks).unwrap();
        let inputs = vec![vec![vec![1, 1]]; 4];
        let outcomes = executor.execute_round(7, 0, &inputs).unwrap();
        let mut seen: Vec<usize> = outcomes.iter().map(|o| o.worker).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3], "worker 1 is down and must be absent");
        assert_eq!(executor.live_workers(), 3);
        let corrupt = outcomes.iter().find(|o| o.worker == 2).unwrap();
        assert_eq!(corrupt.payload[0][0], u64::MAX, "clobbered, non-canonical");
        let honest = outcomes.iter().find(|o| o.worker == 0).unwrap();
        assert!(honest.payload[0].iter().all(|&v| v < u64::MAX));
        let kinds: Vec<_> = executor.churn_events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ChurnEventKind::Crash));
        assert!(kinds.contains(&ChurnEventKind::CorruptStart));
    }

    #[test]
    fn virtual_churn_flap_readmits_on_the_round_clock() {
        use crate::churn::{ChaosSchedule, ChurnEventKind};
        let mut executor = VirtualExecutor::new(ClusterProfile::uniform(4)).with_time_scale(1.0);
        executor.set_churn(ChaosSchedule::flap(&[0], 1, 2));
        executor.install_blocks(0, &vec![tiny_block(); 4]).unwrap();
        let inputs = vec![vec![vec![1, 1]]; 4];
        assert_eq!(executor.execute_round(0, 0, &inputs).unwrap().len(), 4);
        assert_eq!(executor.execute_round(0, 1, &inputs).unwrap().len(), 3);
        assert_eq!(executor.execute_round(0, 2, &inputs).unwrap().len(), 3);
        assert_eq!(executor.execute_round(0, 3, &inputs).unwrap().len(), 4);
        assert_eq!(executor.live_workers(), 4);
        let kinds: Vec<_> = executor.churn_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ChurnEventKind::FlapDown, ChurnEventKind::FlapUp]
        );
    }

    #[test]
    fn threaded_executor_collects_all_workers() {
        let profile = ClusterProfile::uniform(4).with_stragglers(&[3], 5.0);
        let executor = ThreadedExecutor::new(profile);
        let tasks: Vec<_> = (0..4).map(|w| busy_task(w, 5_000)).collect();
        let outcomes = executor.run_round(tasks, |v| byte_len(v), |_, _| false);
        assert_eq!(outcomes.len(), 4);
        let mut workers: Vec<usize> = outcomes.iter().map(|o| o.worker).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        // The straggler slept ~40 ms extra, so it should not arrive first.
        assert_ne!(outcomes[0].worker, 3);
        for outcome in &outcomes {
            // Compute is the task's own span; arrival additionally carries
            // queue wait (pools smaller than the worker count) + network.
            assert!(
                outcome.compute_seconds <= outcome.arrival_seconds - outcome.network_seconds + 1e-9,
                "worker {}: compute {} should not exceed send time {}",
                outcome.worker,
                outcome.compute_seconds,
                outcome.arrival_seconds - outcome.network_seconds
            );
            // The straggler's 40 ms sleep is its own compute, nobody else's.
            if outcome.worker != 3 {
                assert!(
                    outcome.compute_seconds < 0.04,
                    "worker {} charged someone else's sleep: {}",
                    outcome.worker,
                    outcome.compute_seconds
                );
            }
        }
    }
}
