//! Byzantine attack models (paper §V, "Byzantine Attack Models").
//!
//! The paper evaluates two attacks that prior work also uses:
//!
//! * **Reverse-value attack** — a Byzantine worker that should send `z` sends
//!   `−c·z` for some `c > 0` (the paper sets `c = 1`). A "weak" attack: the
//!   perturbation stays in the data's dynamic range.
//! * **Constant attack** — the worker sends a constant vector of the right
//!   dimension. A "strong" attack: it typically destroys convergence of the
//!   unprotected baseline.
//!
//! Two further adversaries target the dual-codeword screen (PR9) rather than
//! the learning dynamics:
//!
//! * **Sparse-flip attack** — corrupt only a few leading symbols of the
//!   payload. The hardest case for any screening check: the corruption has
//!   minimal Hamming weight, so nothing short of a codeword-membership test
//!   notices it.
//! * **Colluding attack** — every compromised worker replaces its payload
//!   with the *same* forged vector (position-dependent only), so
//!   cross-worker majority or comparison cannot separate the colluders.
//!
//! [`ByzantineSpec`] marks which workers are compromised and which attack they
//! mount; [`AttackModel::apply`] corrupts a field-vector payload in place.

use std::collections::BTreeSet;

use avcc_field::{Fp, PrimeField, PrimeModulus};
use serde::{Deserialize, Serialize};

/// The attack a Byzantine worker mounts on its outgoing result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackModel {
    /// Send the honest result unchanged (an "attack" that does nothing; useful
    /// as a control).
    None,
    /// Send `−c·z` instead of `z`.
    ReverseValue {
        /// The positive scale `c` (the paper uses `c = 1`). Must be
        /// non-zero: `−0·z` is the all-zeros vector — the constant attack
        /// in disguise, not a reverse-value attack. [`AttackModel::apply`]
        /// rejects `scale: 0` loudly; model an all-zeros sender with
        /// [`AttackModel::Constant`] and `value: 0` instead.
        scale: u64,
    },
    /// Send a constant vector.
    Constant {
        /// The constant value (canonical field representative).
        value: u64,
    },
    /// Corrupt only the first `blocks` symbols (each bumped by one) and
    /// leave the rest honest — a minimal-Hamming-weight perturbation, the
    /// hardest case for the dual-codeword screen to catch.
    SparseFlip {
        /// Number of leading symbols to flip (clamped to the payload
        /// length; `0` leaves the payload honest).
        blocks: usize,
    },
    /// Replace the payload with a forged pseudo-random vector that depends
    /// only on the symbol position, so every colluding worker sends an
    /// *identical* corruption and cross-worker comparison cannot separate
    /// them.
    Colluding {
        /// Number of coordinating workers (bookkeeping for reports — the
        /// forgery itself is position-dependent only, hence identical
        /// regardless of this count).
        workers: usize,
    },
}

impl AttackModel {
    /// The paper's reverse-value attack with `c = 1`.
    pub fn reverse() -> Self {
        AttackModel::ReverseValue { scale: 1 }
    }

    /// The paper's constant attack (an arbitrary fixed value).
    pub fn constant() -> Self {
        AttackModel::Constant { value: 3 }
    }

    /// A sparse-flip attack touching the first `blocks` symbols.
    pub fn sparse_flip(blocks: usize) -> Self {
        AttackModel::SparseFlip { blocks }
    }

    /// A colluding attack coordinated across `workers` compromised nodes.
    pub fn colluding(workers: usize) -> Self {
        AttackModel::Colluding { workers }
    }

    /// Applies the attack to a field-vector payload in place. Returns `true`
    /// iff the payload was modified.
    ///
    /// # Panics
    /// Panics on [`AttackModel::ReverseValue`] with `scale: 0`: that
    /// configuration sends all-zeros while claiming to reverse values —
    /// a silently mislabeled constant attack (use
    /// [`AttackModel::Constant`] with `value: 0` to model it on purpose).
    pub fn apply<M: PrimeModulus>(&self, payload: &mut [Fp<M>]) -> bool {
        match self {
            AttackModel::None => false,
            AttackModel::ReverseValue { scale } => {
                assert!(
                    *scale != 0,
                    "ReverseValue with scale 0 sends all-zeros, which is the constant \
                     attack in disguise; use AttackModel::Constant {{ value: 0 }}"
                );
                let c = Fp::<M>::from_u64(*scale);
                for value in payload.iter_mut() {
                    *value = -(c * *value);
                }
                true
            }
            AttackModel::Constant { value } => {
                let constant = Fp::<M>::from_u64(*value);
                for slot in payload.iter_mut() {
                    *slot = constant;
                }
                true
            }
            AttackModel::SparseFlip { blocks } => {
                let flips = (*blocks).min(payload.len());
                for value in payload.iter_mut().take(flips) {
                    *value += Fp::<M>::ONE;
                }
                flips > 0
            }
            AttackModel::Colluding { .. } => {
                // Position-dependent forgery: slot k becomes a fixed
                // pseudo-random representative, so two colluders holding
                // different honest blocks still transmit identical vectors.
                for (k, slot) in payload.iter_mut().enumerate() {
                    let forged = 0x9E37_79B9_7F4A_7C15u64
                        .wrapping_mul(k as u64 + 1)
                        .rotate_left(17)
                        % M::MODULUS;
                    *slot = Fp::<M>::from_u64(forged);
                }
                !payload.is_empty()
            }
        }
    }
}

/// Which workers are Byzantine and what they send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByzantineSpec {
    workers: BTreeSet<usize>,
    attack: AttackModel,
}

impl ByzantineSpec {
    /// No Byzantine workers.
    pub fn none() -> Self {
        ByzantineSpec {
            workers: BTreeSet::new(),
            attack: AttackModel::None,
        }
    }

    /// The given workers mount the given attack.
    pub fn new(workers: impl IntoIterator<Item = usize>, attack: AttackModel) -> Self {
        ByzantineSpec {
            workers: workers.into_iter().collect(),
            attack,
        }
    }

    /// The set of compromised worker indices.
    pub fn workers(&self) -> impl Iterator<Item = usize> + '_ {
        self.workers.iter().copied()
    }

    /// Number of compromised workers.
    pub fn count(&self) -> usize {
        self.workers.len()
    }

    /// The attack model in use.
    pub fn attack(&self) -> AttackModel {
        self.attack
    }

    /// `true` iff worker `i` is compromised.
    pub fn is_byzantine(&self, worker: usize) -> bool {
        self.workers.contains(&worker)
    }

    /// Applies the attack to worker `i`'s payload if `i` is compromised.
    /// Returns `true` iff the payload was modified.
    pub fn corrupt<M: PrimeModulus>(&self, worker: usize, payload: &mut [Fp<M>]) -> bool {
        if self.is_byzantine(worker) {
            self.attack.apply(payload)
        } else {
            false
        }
    }

    /// Returns a copy with the given workers removed (used after the adaptive
    /// controller evicts detected Byzantine nodes).
    pub fn without_workers(&self, removed: &[usize]) -> Self {
        ByzantineSpec {
            workers: self
                .workers
                .iter()
                .copied()
                .filter(|w| !removed.contains(w))
                .collect(),
            attack: self.attack,
        }
    }

    /// Re-indexes the compromised workers after the cluster dropped the
    /// workers in `removed` (indices shift down to fill the gaps).
    pub fn reindexed_after_removal(&self, removed: &[usize]) -> Self {
        let surviving: Vec<usize> = self
            .workers
            .iter()
            .copied()
            .filter(|w| !removed.contains(w))
            .collect();
        let workers = surviving
            .into_iter()
            .map(|w| w - removed.iter().filter(|&&r| r < w).count())
            .collect();
        ByzantineSpec {
            workers,
            attack: self.attack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;

    fn payload(values: &[i64]) -> Vec<F25> {
        values.iter().map(|&v| F25::from_i64(v)).collect()
    }

    #[test]
    fn reverse_attack_negates_values() {
        let mut data = payload(&[1, -2, 3]);
        assert!(AttackModel::reverse().apply(&mut data));
        assert_eq!(data, payload(&[-1, 2, -3]));
    }

    #[test]
    fn reverse_attack_with_scale_multiplies() {
        let mut data = payload(&[2, 5]);
        assert!(AttackModel::ReverseValue { scale: 3 }.apply(&mut data));
        assert_eq!(data, payload(&[-6, -15]));
    }

    #[test]
    fn constant_attack_overwrites_everything() {
        let mut data = payload(&[10, 20, 30, 40]);
        assert!(AttackModel::Constant { value: 7 }.apply(&mut data));
        assert!(data.iter().all(|&v| v == F25::from_u64(7)));
    }

    #[test]
    #[should_panic(expected = "scale 0")]
    fn reverse_attack_rejects_scale_zero() {
        // Regression: scale 0 used to silently send all-zeros while
        // claiming to be the reverse-value attack.
        let mut data = payload(&[1, 2]);
        AttackModel::ReverseValue { scale: 0 }.apply(&mut data);
    }

    #[test]
    fn sparse_flip_corrupts_only_the_requested_prefix() {
        let mut data = payload(&[10, 20, 30, 40]);
        assert!(AttackModel::sparse_flip(2).apply(&mut data));
        assert_eq!(data, payload(&[11, 21, 30, 40]));
    }

    #[test]
    fn sparse_flip_clamps_to_payload_length() {
        let mut data = payload(&[1, 2]);
        assert!(AttackModel::sparse_flip(100).apply(&mut data));
        assert_eq!(data, payload(&[2, 3]));
    }

    #[test]
    fn sparse_flip_with_zero_blocks_reports_no_modification() {
        let mut data = payload(&[5, 6]);
        let original = data.clone();
        assert!(!AttackModel::sparse_flip(0).apply(&mut data));
        assert_eq!(data, original);
        let mut empty: Vec<F25> = Vec::new();
        assert!(!AttackModel::sparse_flip(3).apply(&mut empty));
    }

    #[test]
    fn colluding_workers_transmit_identical_forgeries() {
        let mut first = payload(&[1, 2, 3, 4]);
        let mut second = payload(&[-9, 42, 0, 17]);
        let honest = first.clone();
        assert!(AttackModel::colluding(2).apply(&mut first));
        assert!(AttackModel::colluding(2).apply(&mut second));
        // Identical regardless of the honest payloads they replaced.
        assert_eq!(first, second);
        assert_ne!(first, honest);
        let mut empty: Vec<F25> = Vec::new();
        assert!(!AttackModel::colluding(2).apply(&mut empty));
    }

    #[test]
    fn none_attack_leaves_payload_untouched() {
        let mut data = payload(&[1, 2, 3]);
        let original = data.clone();
        assert!(!AttackModel::None.apply(&mut data));
        assert_eq!(data, original);
    }

    #[test]
    fn spec_corrupts_only_marked_workers() {
        let spec = ByzantineSpec::new([1, 3], AttackModel::constant());
        assert_eq!(spec.count(), 2);
        assert!(spec.is_byzantine(1));
        assert!(!spec.is_byzantine(0));
        let mut honest = payload(&[5, 6]);
        let snapshot = honest.clone();
        assert!(!spec.corrupt(0, &mut honest));
        assert_eq!(honest, snapshot);
        let mut victim = payload(&[5, 6]);
        assert!(spec.corrupt(3, &mut victim));
        assert_ne!(victim, snapshot);
    }

    #[test]
    fn removal_and_reindexing_track_cluster_shrinkage() {
        let spec = ByzantineSpec::new([2, 5, 8], AttackModel::reverse());
        let without = spec.without_workers(&[5]);
        assert_eq!(without.workers().collect::<Vec<_>>(), vec![2, 8]);
        // Dropping worker 5 from the cluster shifts 8 down to 7.
        let reindexed = spec.reindexed_after_removal(&[5]);
        assert_eq!(reindexed.workers().collect::<Vec<_>>(), vec![2, 7]);
        // Dropping an earlier worker shifts everything after it.
        let reindexed = spec.reindexed_after_removal(&[0]);
        assert_eq!(reindexed.workers().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn none_spec_has_no_byzantine_workers() {
        let spec = ByzantineSpec::none();
        assert_eq!(spec.count(), 0);
        let mut data = payload(&[1]);
        assert!(!spec.corrupt(0, &mut data));
    }
}
