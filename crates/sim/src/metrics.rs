//! Per-iteration cost accounting — the quantities plotted in Fig. 4 of the
//! paper.
//!
//! The paper breaks one training iteration into four categories:
//!
//! 1. **Compute time** — the worst-case latency of the matrix operations at
//!    any worker whose result the master actually used.
//! 2. **Communication time** — sending inputs to and receiving results from
//!    those workers.
//! 3. **Verification time** — the Freivalds checks at the master (zero for
//!    LCC and the uncoded baseline, whose integrity handling is coupled with
//!    decoding or absent).
//! 4. **Decoding time** — MDS/Lagrange decoding at the master (zero for the
//!    uncoded baseline).
//!
//! [`IterationCosts`] holds one iteration's breakdown in simulated seconds;
//! [`CostAccumulator`] aggregates across iterations for the cumulative curves
//! of Fig. 3 and Fig. 5.

use serde::{Deserialize, Serialize};

/// The per-iteration cost breakdown, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationCosts {
    /// Worst-case worker compute latency among used results.
    pub compute: f64,
    /// Worst-case communication latency among used results.
    pub communication: f64,
    /// Master-side verification time (AVCC only).
    pub verification: f64,
    /// Master-side decoding time.
    pub decoding: f64,
    /// One-off costs charged to this iteration (e.g. re-encoding and
    /// re-distributing data after a dynamic coding switch, Fig. 5).
    pub reconfiguration: f64,
}

impl IterationCosts {
    /// Total wall-clock charged to the iteration.
    pub fn total(&self) -> f64 {
        self.compute + self.communication + self.verification + self.decoding + self.reconfiguration
    }

    /// Element-wise sum of two breakdowns.
    pub fn combined(&self, other: &IterationCosts) -> IterationCosts {
        IterationCosts {
            compute: self.compute + other.compute,
            communication: self.communication + other.communication,
            verification: self.verification + other.verification,
            decoding: self.decoding + other.decoding,
            reconfiguration: self.reconfiguration + other.reconfiguration,
        }
    }

    /// Scales every component (used when averaging).
    pub fn scaled(&self, factor: f64) -> IterationCosts {
        IterationCosts {
            compute: self.compute * factor,
            communication: self.communication * factor,
            verification: self.verification * factor,
            decoding: self.decoding * factor,
            reconfiguration: self.reconfiguration * factor,
        }
    }
}

/// Accumulates iteration costs into cumulative and average views.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostAccumulator {
    iterations: Vec<IterationCosts>,
}

impl CostAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        CostAccumulator::default()
    }

    /// Records one iteration's costs.
    pub fn record(&mut self, costs: IterationCosts) {
        self.iterations.push(costs);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The recorded per-iteration costs.
    pub fn iterations(&self) -> &[IterationCosts] {
        &self.iterations
    }

    /// Sum of all recorded iterations.
    pub fn cumulative(&self) -> IterationCosts {
        self.iterations
            .iter()
            .fold(IterationCosts::default(), |acc, c| acc.combined(c))
    }

    /// Total elapsed (simulated) time.
    pub fn total_seconds(&self) -> f64 {
        self.cumulative().total()
    }

    /// Running total after each iteration — the x-axis of the convergence
    /// curves (Fig. 3) and the cumulative-time comparison (Fig. 5).
    pub fn cumulative_timeline(&self) -> Vec<f64> {
        let mut timeline = Vec::with_capacity(self.iterations.len());
        let mut running = 0.0;
        for costs in &self.iterations {
            running += costs.total();
            timeline.push(running);
        }
        timeline
    }

    /// Average per-iteration breakdown.
    pub fn average(&self) -> IterationCosts {
        if self.iterations.is_empty() {
            return IterationCosts::default();
        }
        self.cumulative().scaled(1.0 / self.iterations.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(compute: f64) -> IterationCosts {
        IterationCosts {
            compute,
            communication: 0.1,
            verification: 0.01,
            decoding: 0.02,
            reconfiguration: 0.0,
        }
    }

    #[test]
    fn total_sums_all_components() {
        let costs = IterationCosts {
            compute: 1.0,
            communication: 2.0,
            verification: 3.0,
            decoding: 4.0,
            reconfiguration: 5.0,
        };
        assert!((costs.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = sample(1.0);
        let b = sample(2.0);
        let c = a.combined(&b);
        assert!((c.compute - 3.0).abs() < 1e-12);
        assert!((c.communication - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_componentwise() {
        let a = sample(2.0).scaled(0.5);
        assert!((a.compute - 1.0).abs() < 1e-12);
        assert!((a.communication - 0.05).abs() < 1e-12);
    }

    #[test]
    fn accumulator_tracks_cumulative_time() {
        let mut accumulator = CostAccumulator::new();
        assert!(accumulator.is_empty());
        accumulator.record(sample(1.0));
        accumulator.record(sample(2.0));
        assert_eq!(accumulator.len(), 2);
        let total = accumulator.total_seconds();
        assert!((total - (1.13 + 2.13)).abs() < 1e-9);
        let timeline = accumulator.cumulative_timeline();
        assert_eq!(timeline.len(), 2);
        assert!(timeline[0] < timeline[1]);
        assert!((timeline[1] - total).abs() < 1e-12);
    }

    #[test]
    fn average_divides_by_iteration_count() {
        let mut accumulator = CostAccumulator::new();
        accumulator.record(sample(1.0));
        accumulator.record(sample(3.0));
        let average = accumulator.average();
        assert!((average.compute - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_has_zero_average() {
        assert_eq!(CostAccumulator::new().average(), IterationCosts::default());
    }
}
