//! Per-iteration cost accounting — the quantities plotted in Fig. 4 of the
//! paper.
//!
//! The paper breaks one training iteration into four categories:
//!
//! 1. **Compute time** — the worst-case latency of the matrix operations at
//!    any worker whose result the master actually used.
//! 2. **Communication time** — sending inputs to and receiving results from
//!    those workers.
//! 3. **Verification time** — the Freivalds checks at the master (zero for
//!    LCC and the uncoded baseline, whose integrity handling is coupled with
//!    decoding or absent).
//! 4. **Decoding time** — MDS/Lagrange decoding at the master (zero for the
//!    uncoded baseline).
//!
//! [`IterationCosts`] holds one iteration's breakdown in simulated seconds;
//! [`CostAccumulator`] aggregates across iterations for the cumulative curves
//! of Fig. 3 and Fig. 5.
//!
//! Two further families serve the PR6 serving layer:
//!
//! * [`OpCounts`] — *deterministic* field-operation counts recorded alongside
//!   the wall-clock numbers. Wall clock on a loaded host is noisy; the
//!   operation counts depend only on the problem dimensions and the coding
//!   configuration, so scheme and scheduler comparisons stay meaningful even
//!   when the timings do not. This is the first piece of the calibrated cost
//!   model: a later PR fits seconds-per-MAC coefficients to these counts.
//! * [`JobMetrics`] / [`ServingMetrics`] — per-job and per-fleet throughput
//!   accounting (queue wait, rounds/sec, jobs/sec, pipeline occupancy) for
//!   the multi-job scheduler in `avcc-serve`.

use serde::{Deserialize, Serialize};

/// The per-iteration cost breakdown, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationCosts {
    /// Worst-case worker compute latency among used results.
    pub compute: f64,
    /// Worst-case communication latency among used results.
    pub communication: f64,
    /// Master-side verification time (AVCC only).
    pub verification: f64,
    /// Master-side decoding time.
    pub decoding: f64,
    /// One-off costs charged to this iteration (e.g. re-encoding and
    /// re-distributing data after a dynamic coding switch, Fig. 5).
    pub reconfiguration: f64,
}

impl IterationCosts {
    /// Total wall-clock charged to the iteration.
    pub fn total(&self) -> f64 {
        self.compute + self.communication + self.verification + self.decoding + self.reconfiguration
    }

    /// Element-wise sum of two breakdowns.
    pub fn combined(&self, other: &IterationCosts) -> IterationCosts {
        IterationCosts {
            compute: self.compute + other.compute,
            communication: self.communication + other.communication,
            verification: self.verification + other.verification,
            decoding: self.decoding + other.decoding,
            reconfiguration: self.reconfiguration + other.reconfiguration,
        }
    }

    /// Scales every component (used when averaging).
    pub fn scaled(&self, factor: f64) -> IterationCosts {
        IterationCosts {
            compute: self.compute * factor,
            communication: self.communication * factor,
            verification: self.verification * factor,
            decoding: self.decoding * factor,
            reconfiguration: self.reconfiguration * factor,
        }
    }
}

/// Accumulates iteration costs into cumulative and average views.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostAccumulator {
    iterations: Vec<IterationCosts>,
}

impl CostAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        CostAccumulator::default()
    }

    /// Records one iteration's costs.
    pub fn record(&mut self, costs: IterationCosts) {
        self.iterations.push(costs);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The recorded per-iteration costs.
    pub fn iterations(&self) -> &[IterationCosts] {
        &self.iterations
    }

    /// Sum of all recorded iterations.
    pub fn cumulative(&self) -> IterationCosts {
        self.iterations
            .iter()
            .fold(IterationCosts::default(), |acc, c| acc.combined(c))
    }

    /// Total elapsed (simulated) time.
    pub fn total_seconds(&self) -> f64 {
        self.cumulative().total()
    }

    /// Running total after each iteration — the x-axis of the convergence
    /// curves (Fig. 3) and the cumulative-time comparison (Fig. 5).
    pub fn cumulative_timeline(&self) -> Vec<f64> {
        let mut timeline = Vec::with_capacity(self.iterations.len());
        let mut running = 0.0;
        for costs in &self.iterations {
            running += costs.total();
            timeline.push(running);
        }
        timeline
    }

    /// Average per-iteration breakdown.
    pub fn average(&self) -> IterationCosts {
        if self.iterations.is_empty() {
            return IterationCosts::default();
        }
        self.cumulative().scaled(1.0 / self.iterations.len() as f64)
    }
}

/// Deterministic field-operation counts for one round, iteration or job.
///
/// All counts are first-order multiply–accumulate (MAC) estimates derived
/// from the problem dimensions — *not* measured — so they are bit-identical
/// across runs, executors and hosts. `worker_macs` models the critical path
/// (one worker's share product, since the shares compute in parallel);
/// `verify_macs` and `decode_macs` model the master-side Freivalds checks
/// and decode/reassembly work that the serving layer overlaps with worker
/// compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// MACs on the worker critical path (one share/block product).
    pub worker_macs: u64,
    /// Master-side MACs spent verifying results (AVCC/Static VCC only).
    pub verify_macs: u64,
    /// Master-side MACs spent decoding or reassembling the product.
    pub decode_macs: u64,
}

impl OpCounts {
    /// Total MACs across all categories.
    pub fn total(&self) -> u64 {
        self.worker_macs + self.verify_macs + self.decode_macs
    }

    /// Element-wise sum of two counts.
    pub fn combined(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            worker_macs: self.worker_macs + other.worker_macs,
            verify_macs: self.verify_macs + other.verify_macs,
            decode_macs: self.decode_macs + other.decode_macs,
        }
    }
}

/// Per-job accounting recorded by the serving scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Real seconds the job spent queued before a fleet slot admitted it.
    pub queue_wait_seconds: f64,
    /// Real seconds between admission and completion.
    pub active_seconds: f64,
    /// Distributed rounds the job completed.
    pub rounds: usize,
    /// Deterministic operation counts accumulated across the job's rounds.
    pub ops: OpCounts,
    /// Lagrange-basis cache hits the job's decodes scored (PR5 decoder
    /// cache). Batched multi-function jobs decode `m` times per survivor
    /// set, so a healthy batch shows `m − 1` hits per miss.
    pub decode_cache_hits: u64,
    /// Lagrange-basis cache misses (basis recomputations) during the job.
    pub decode_cache_misses: u64,
    /// Workers evicted by the pre-decode dual-codeword screen across the
    /// job's rounds (PR9). Zero for engines without a screen.
    pub screened_workers: u64,
}

impl JobMetrics {
    /// Round throughput over the job's active window.
    pub fn rounds_per_second(&self) -> f64 {
        if self.active_seconds > 0.0 {
            self.rounds as f64 / self.active_seconds
        } else {
            0.0
        }
    }
}

/// Fleet-level accounting for one scheduler run over many jobs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Worker slots the fleet multiplexes the jobs onto.
    pub fleet_width: usize,
    /// Real seconds from run start to the last job's completion.
    pub span_seconds: f64,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Jobs that failed (scheme failure surfaced by a round).
    pub jobs_failed: usize,
    /// Distributed rounds completed across all jobs.
    pub rounds_total: usize,
    /// Summed real seconds the worker slots spent executing tasks (straggler
    /// sleeps included — a sleeping worker occupies its slot).
    pub busy_worker_seconds: f64,
    /// Summed queue wait across all jobs.
    pub queue_wait_total_seconds: f64,
    /// Deterministic operation counts accumulated across all jobs.
    pub ops: OpCounts,
    /// Summed Lagrange-basis cache hits across all jobs' decodes.
    pub decode_cache_hits: u64,
    /// Summed Lagrange-basis cache misses across all jobs' decodes.
    pub decode_cache_misses: u64,
    /// Summed screened-worker evictions across all jobs (PR9 dual-codeword
    /// screen).
    pub screened_workers: u64,
}

impl ServingMetrics {
    /// Folds one finished job into the fleet totals.
    pub fn record_job(&mut self, job: &JobMetrics, failed: bool) {
        if failed {
            self.jobs_failed += 1;
        } else {
            self.jobs_completed += 1;
        }
        self.rounds_total += job.rounds;
        self.queue_wait_total_seconds += job.queue_wait_seconds;
        self.ops = self.ops.combined(&job.ops);
        self.decode_cache_hits += job.decode_cache_hits;
        self.decode_cache_misses += job.decode_cache_misses;
        self.screened_workers += job.screened_workers;
    }

    /// Completed-job throughput — the serving bench's headline number.
    pub fn jobs_per_second(&self) -> f64 {
        if self.span_seconds > 0.0 {
            self.jobs_completed as f64 / self.span_seconds
        } else {
            0.0
        }
    }

    /// Round throughput across the whole fleet.
    pub fn rounds_per_second(&self) -> f64 {
        if self.span_seconds > 0.0 {
            self.rounds_total as f64 / self.span_seconds
        } else {
            0.0
        }
    }

    /// Fraction of the fleet's slot-seconds spent executing worker tasks.
    /// 1.0 means every slot was busy for the whole span; a synchronous
    /// one-job-at-a-time schedule leaves slots idle during master-side
    /// stages and straggler waits, which is exactly what pipelining claws
    /// back.
    pub fn pipeline_occupancy(&self) -> f64 {
        let capacity = self.span_seconds * self.fleet_width as f64;
        if capacity > 0.0 {
            (self.busy_worker_seconds / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Mean per-job queue wait.
    pub fn mean_queue_wait_seconds(&self) -> f64 {
        let jobs = self.jobs_completed + self.jobs_failed;
        if jobs > 0 {
            self.queue_wait_total_seconds / jobs as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(compute: f64) -> IterationCosts {
        IterationCosts {
            compute,
            communication: 0.1,
            verification: 0.01,
            decoding: 0.02,
            reconfiguration: 0.0,
        }
    }

    #[test]
    fn total_sums_all_components() {
        let costs = IterationCosts {
            compute: 1.0,
            communication: 2.0,
            verification: 3.0,
            decoding: 4.0,
            reconfiguration: 5.0,
        };
        assert!((costs.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = sample(1.0);
        let b = sample(2.0);
        let c = a.combined(&b);
        assert!((c.compute - 3.0).abs() < 1e-12);
        assert!((c.communication - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_componentwise() {
        let a = sample(2.0).scaled(0.5);
        assert!((a.compute - 1.0).abs() < 1e-12);
        assert!((a.communication - 0.05).abs() < 1e-12);
    }

    #[test]
    fn accumulator_tracks_cumulative_time() {
        let mut accumulator = CostAccumulator::new();
        assert!(accumulator.is_empty());
        accumulator.record(sample(1.0));
        accumulator.record(sample(2.0));
        assert_eq!(accumulator.len(), 2);
        let total = accumulator.total_seconds();
        assert!((total - (1.13 + 2.13)).abs() < 1e-9);
        let timeline = accumulator.cumulative_timeline();
        assert_eq!(timeline.len(), 2);
        assert!(timeline[0] < timeline[1]);
        assert!((timeline[1] - total).abs() < 1e-12);
    }

    #[test]
    fn average_divides_by_iteration_count() {
        let mut accumulator = CostAccumulator::new();
        accumulator.record(sample(1.0));
        accumulator.record(sample(3.0));
        let average = accumulator.average();
        assert!((average.compute - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_has_zero_average() {
        assert_eq!(CostAccumulator::new().average(), IterationCosts::default());
    }

    #[test]
    fn op_counts_total_and_combine() {
        let a = OpCounts {
            worker_macs: 100,
            verify_macs: 10,
            decode_macs: 5,
        };
        let b = OpCounts {
            worker_macs: 50,
            verify_macs: 1,
            decode_macs: 2,
        };
        assert_eq!(a.total(), 115);
        let c = a.combined(&b);
        assert_eq!(c.worker_macs, 150);
        assert_eq!(c.verify_macs, 11);
        assert_eq!(c.decode_macs, 7);
        assert_eq!(OpCounts::default().total(), 0);
    }

    #[test]
    fn job_metrics_round_throughput() {
        let job = JobMetrics {
            queue_wait_seconds: 0.5,
            active_seconds: 2.0,
            rounds: 10,
            ops: OpCounts::default(),
            decode_cache_hits: 0,
            decode_cache_misses: 0,
            screened_workers: 0,
        };
        assert!((job.rounds_per_second() - 5.0).abs() < 1e-12);
        assert_eq!(JobMetrics::default().rounds_per_second(), 0.0);
    }

    #[test]
    fn serving_metrics_aggregate_jobs() {
        let mut fleet = ServingMetrics {
            fleet_width: 4,
            span_seconds: 2.0,
            busy_worker_seconds: 4.0,
            ..ServingMetrics::default()
        };
        let job = JobMetrics {
            queue_wait_seconds: 0.25,
            active_seconds: 1.0,
            rounds: 6,
            ops: OpCounts {
                worker_macs: 7,
                ..OpCounts::default()
            },
            decode_cache_hits: 3,
            decode_cache_misses: 1,
            screened_workers: 2,
        };
        fleet.record_job(&job, false);
        fleet.record_job(&job, false);
        fleet.record_job(&job, true);
        assert_eq!(fleet.jobs_completed, 2);
        assert_eq!(fleet.jobs_failed, 1);
        assert_eq!(fleet.rounds_total, 18);
        assert_eq!(fleet.ops.worker_macs, 21);
        assert_eq!(fleet.decode_cache_hits, 9);
        assert_eq!(fleet.decode_cache_misses, 3);
        assert_eq!(fleet.screened_workers, 6);
        assert!((fleet.jobs_per_second() - 1.0).abs() < 1e-12);
        assert!((fleet.rounds_per_second() - 9.0).abs() < 1e-12);
        assert!((fleet.pipeline_occupancy() - 0.5).abs() < 1e-12);
        assert!((fleet.mean_queue_wait_seconds() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serving_metrics_empty_fleet_is_well_behaved() {
        let fleet = ServingMetrics::default();
        assert_eq!(fleet.jobs_per_second(), 0.0);
        assert_eq!(fleet.rounds_per_second(), 0.0);
        assert_eq!(fleet.pipeline_occupancy(), 0.0);
        assert_eq!(fleet.mean_queue_wait_seconds(), 0.0);
    }
}
