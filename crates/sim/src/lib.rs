//! Distributed-cluster substrate: workers, latency and straggler models,
//! Byzantine attack injection and per-iteration cost accounting.
//!
//! The paper evaluates AVCC on a 13-node DCOMP testbed (one master plus
//! `N = 12` Minnow workers). That hardware is not available here, so this
//! crate provides the substitute substrate described in DESIGN.md §4: worker
//! tasks are *actually executed* (real finite-field arithmetic, measured with
//! a monotonic clock) and their completion times are then placed on a virtual
//! timeline according to a [`cluster::ClusterProfile`] — per-worker speed
//! factors, straggler slowdowns and a network model. What the experiments
//! depend on (the *order* in which results arrive at the master and the
//! *relative* cost of compute, communication, verification and decoding) is
//! therefore preserved while remaining fully reproducible and laptop-sized.
//!
//! * [`cluster`] — worker profiles, straggler injection and the network model.
//! * [`attack`] — the paper's Byzantine attack models (reverse-value and
//!   constant), applied to field-vector payloads.
//! * [`executor`] — the [`executor::VirtualExecutor`] (deterministic virtual
//!   timeline, used by every experiment) and the
//!   [`executor::ThreadedExecutor`] (real OS threads and channels, used by the
//!   examples to demonstrate the same API end to end).
//! * [`metrics`] — per-iteration cost breakdown (compute / communication /
//!   verification / decoding), the quantity plotted in Fig. 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod cluster;
pub mod executor;
pub mod metrics;

pub use attack::{AttackModel, ByzantineSpec};
pub use cluster::{ClusterProfile, NetworkModel, WorkerProfile};
pub use executor::{ThreadedExecutor, VirtualExecutor, WorkerOutcome};
pub use metrics::{CostAccumulator, IterationCosts};
