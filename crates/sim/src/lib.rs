//! Distributed-cluster substrate: workers, latency and straggler models,
//! Byzantine attack injection and per-iteration cost accounting.
//!
//! The paper evaluates AVCC on a 13-node DCOMP testbed (one master plus
//! `N = 12` Minnow workers). That hardware is not available here, so this
//! crate provides the substitute substrate described in DESIGN.md §4: worker
//! tasks are *actually executed* (real finite-field arithmetic, measured with
//! a monotonic clock) and their completion times are then placed on a virtual
//! timeline according to a [`cluster::ClusterProfile`] — per-worker speed
//! factors, straggler slowdowns and a network model. What the experiments
//! depend on (the *order* in which results arrive at the master and the
//! *relative* cost of compute, communication, verification and decoding) is
//! therefore preserved while remaining fully reproducible and laptop-sized.
//!
//! * [`cluster`] — worker profiles, straggler injection and the network model.
//! * [`churn`] — deterministic, seeded fleet churn (crash / join / stall /
//!   corrupt / flap on the round clock) and the chaos-harness schedules.
//! * [`attack`] — the paper's Byzantine attack models (reverse-value and
//!   constant), applied to field-vector payloads.
//! * [`executor`] — the in-process execution engines, see the table below.
//! * [`socket`] — the TCP/UDS multi-process runtime behind the same
//!   [`executor::Executor`] trait (frames specified in `docs/WIRE_FORMAT.md`).
//! * [`metrics`] — per-iteration cost breakdown (compute / communication /
//!   verification / decoding), the quantity plotted in Fig. 4.
//!
//! # Executor selection
//!
//! All engines run one task per simulated worker and return
//! [`executor::WorkerOutcome`]s in arrival order; they differ in what
//! "time" means and on what the tasks run:
//!
//! | Engine | Tasks run on | Arrival time | Use when |
//! |---|---|---|---|
//! | [`executor::VirtualExecutor`] | the calling thread, serially | measured wall-clock per task × profile slowdown + modeled network transfer | every experiment: deterministic-enough orderings, seconds of real time for a 50-iteration × 12-worker run |
//! | [`executor::ThreadedExecutor`] | the global [`avcc_pool`] work-stealing pool, concurrently | real elapsed time (straggler slowdowns realized as scaled-down sleeps) + modeled transfer | the examples: demonstrates the same master logic driving real concurrency |
//! | [`socket::SocketExecutor`] | worker threads or spawned `avcc-worker` processes, over TCP loopback or Unix domain sockets | real elapsed time; network time measured as arrival − compute, not modeled | end-to-end protocol validation, wire-fault injection, the multi-process deployment shape |
//!
//! The split is deliberate. The virtual engine must stay serial because its
//! cost model *measures* each task with a monotonic clock — concurrent
//! tasks would contend for cores and corrupt each other's measurements. The
//! threaded engine, conversely, exists to exhibit real concurrency, and
//! since PR4 dispatches worker tasks onto the shared work-stealing pool
//! rather than spawning one OS thread per worker: worker tasks may
//! themselves call the pool-parallel kernels in `avcc_linalg`, and the
//! nested fan-out (round × blocked kernel) shares one fixed thread set —
//! composable, deadlock-free (waiting threads execute pending tasks), and
//! never oversubscribed.
//!
//! # Cost accounting
//!
//! Per-iteration costs are virtual seconds, not wall-clock: compute comes
//! from the executor's timeline, verification/decoding/encoding are
//! measured on the master and scaled by the same
//! [`executor::VirtualExecutor::time_scale`], and totals aggregate across
//! iterations with a median-based robust sum
//! (`TrainingReport::robust_total_seconds` in `avcc-core`) so host
//! preemption spikes do not swamp comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod churn;
pub mod cluster;
pub mod executor;
pub mod metrics;
pub mod socket;

/// The wire-format crate, re-exported so downstream crates address blocks,
/// frames and faults without a separate dependency edge.
pub use avcc_wire as wire;

pub use attack::{AttackModel, ByzantineSpec};
pub use churn::{
    ChaosSchedule, ChurnAction, ChurnEvent, ChurnEventKind, ChurnSchedule, ChurnState,
};
pub use cluster::{ClusterProfile, NetworkModel, SpeedTier, WorkerProfile};
pub use executor::{
    slowdown_sleep_seconds, Eviction, EvictionReason, Executor, ExecutorError, ThreadedExecutor,
    VirtualExecutor, WorkerOutcome,
};
pub use metrics::{CostAccumulator, IterationCosts, JobMetrics, OpCounts, ServingMetrics};
pub use socket::{
    backoff_delay, SocketConfig, SocketExecutor, SocketMetrics, Transport, WorkerBackend,
};
