//! Cluster topology: per-worker execution profiles, straggler injection and
//! the network model.
//!
//! The paper's testbed exhibits stragglers whose latency is up to an order of
//! magnitude above the median (§I). We model each worker with a
//! [`WorkerProfile`]: a *speed factor* multiplying its measured compute time
//! (1.0 = nominal, 10.0 = ten times slower) and an optional straggler flag
//! that applies an additional multiplier for the current iteration. The
//! [`NetworkModel`] charges a base link latency plus a byte-proportional
//! transfer time for each result sent back to the master, mirroring the
//! 1 GbE interfaces of the Minnow nodes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The execution profile of a single worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Multiplier on the measured compute time (1.0 = nominal speed).
    pub speed_factor: f64,
    /// Whether this worker is currently a straggler.
    pub straggler: bool,
    /// Extra multiplier applied when `straggler` is set.
    pub straggler_multiplier: f64,
}

impl Default for WorkerProfile {
    fn default() -> Self {
        WorkerProfile {
            speed_factor: 1.0,
            straggler: false,
            straggler_multiplier: 8.0,
        }
    }
}

impl WorkerProfile {
    /// The effective multiplier on compute time for this worker.
    pub fn effective_slowdown(&self) -> f64 {
        if self.straggler {
            self.speed_factor * self.straggler_multiplier
        } else {
            self.speed_factor
        }
    }
}

/// The network model: a fixed per-message latency plus a byte-proportional
/// transfer time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub base_latency_seconds: f64,
    /// Link bandwidth in bytes per second.
    pub bytes_per_second: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // 1 GbE with a 0.5 ms base latency, as on the DCOMP Minnow nodes.
        NetworkModel {
            base_latency_seconds: 5e-4,
            bytes_per_second: 125e6,
        }
    }
}

impl NetworkModel {
    /// Transfer time for a payload of `bytes` bytes.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.base_latency_seconds + bytes as f64 / self.bytes_per_second
    }
}

/// One speed tier of a heterogeneous fleet: `workers` workers all running at
/// `speed_factor` times the nominal compute time.
///
/// Tiers model the paper's mixed-hardware reality more faithfully than the
/// independent-uniform draw of [`ClusterProfile::heterogeneous`]: a real
/// fleet has a few discrete machine generations, not a continuum. The old
/// constructors remain untouched so the paper figures reproduce exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedTier {
    /// Number of workers in this tier.
    pub workers: usize,
    /// Multiplier on measured compute time for every worker in the tier.
    pub speed_factor: f64,
}

impl SpeedTier {
    /// A tier of `workers` workers at `speed_factor`.
    pub fn new(workers: usize, speed_factor: f64) -> Self {
        SpeedTier {
            workers,
            speed_factor,
        }
    }
}

/// The full cluster profile: one [`WorkerProfile`] per worker plus the shared
/// [`NetworkModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    workers: Vec<WorkerProfile>,
    /// The shared network model.
    pub network: NetworkModel,
}

impl ClusterProfile {
    /// A homogeneous cluster of `workers` nominal-speed workers.
    pub fn uniform(workers: usize) -> Self {
        ClusterProfile {
            workers: vec![WorkerProfile::default(); workers],
            network: NetworkModel::default(),
        }
    }

    /// A cluster with mild heterogeneity: speed factors drawn uniformly from
    /// `[1.0, 1.0 + spread]`.
    pub fn heterogeneous<R: Rng + ?Sized>(workers: usize, spread: f64, rng: &mut R) -> Self {
        let workers = (0..workers)
            .map(|_| WorkerProfile {
                speed_factor: 1.0 + rng.gen_range(0.0..=spread.max(0.0)),
                ..WorkerProfile::default()
            })
            .collect();
        ClusterProfile {
            workers,
            network: NetworkModel::default(),
        }
    }

    /// A fleet built from discrete speed tiers, laid out tier by tier in
    /// order (workers `0..t0` in the first tier, and so on). Deterministic —
    /// no randomness — so tiered experiments are exactly reproducible.
    pub fn tiered(tiers: &[SpeedTier]) -> Self {
        let workers = tiers
            .iter()
            .flat_map(|tier| {
                std::iter::repeat_n(
                    WorkerProfile {
                        speed_factor: tier.speed_factor,
                        ..WorkerProfile::default()
                    },
                    tier.workers,
                )
            })
            .collect();
        ClusterProfile {
            workers,
            network: NetworkModel::default(),
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` iff the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The profile of worker `i`.
    pub fn worker(&self, i: usize) -> &WorkerProfile {
        &self.workers[i]
    }

    /// Mutable profile of worker `i`.
    pub fn worker_mut(&mut self, i: usize) -> &mut WorkerProfile {
        &mut self.workers[i]
    }

    /// All worker profiles.
    pub fn workers(&self) -> &[WorkerProfile] {
        &self.workers
    }

    /// Marks exactly the given workers as stragglers (clearing any previous
    /// straggler flags) with the given latency multiplier.
    pub fn set_stragglers(&mut self, stragglers: &[usize], multiplier: f64) {
        for profile in &mut self.workers {
            profile.straggler = false;
        }
        for &index in stragglers {
            assert!(
                index < self.workers.len(),
                "straggler index {index} out of range"
            );
            self.workers[index].straggler = true;
            self.workers[index].straggler_multiplier = multiplier;
        }
    }

    /// Returns a copy with the given stragglers set.
    pub fn with_stragglers(mut self, stragglers: &[usize], multiplier: f64) -> Self {
        self.set_stragglers(stragglers, multiplier);
        self
    }

    /// Marks *correlated* straggler groups: the fleet is partitioned into
    /// consecutive racks of `rack_size` workers, `slow_racks` racks are drawn
    /// with a single use of `rng`, and **every** worker in a drawn rack is
    /// flagged (clearing previous flags). One seed takes a whole rack slow —
    /// the correlated failure mode independent per-worker flags cannot
    /// express. Returns the drawn rack indices, sorted.
    pub fn set_correlated_stragglers<R: Rng + ?Sized>(
        &mut self,
        rack_size: usize,
        slow_racks: usize,
        multiplier: f64,
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(rack_size > 0, "rack size must be positive");
        let racks = self.workers.len().div_ceil(rack_size);
        assert!(
            slow_racks <= racks,
            "cannot draw {slow_racks} slow racks from {racks}"
        );
        // Partial Fisher–Yates over rack ids: the first `slow_racks` entries
        // after shuffling are the drawn racks.
        let mut ids: Vec<usize> = (0..racks).collect();
        for i in 0..slow_racks {
            let j = i + rng.gen_range(0..ids.len() - i);
            ids.swap(i, j);
        }
        let mut drawn: Vec<usize> = ids[..slow_racks].to_vec();
        drawn.sort_unstable();
        let slow_workers: Vec<usize> = drawn
            .iter()
            .flat_map(|&rack| {
                (rack * rack_size..((rack + 1) * rack_size).min(self.workers.len()))
                    .collect::<Vec<_>>()
            })
            .collect();
        self.set_stragglers(&slow_workers, multiplier);
        drawn
    }

    /// Indices of the workers currently flagged as stragglers.
    pub fn straggler_indices(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.straggler)
            .map(|(i, _)| i)
            .collect()
    }

    /// Restricts the profile to the first `count` workers — used by the
    /// dynamic-coding controller when it drops detected Byzantine workers and
    /// shrinks the cluster from `N_t` to `N_{t+1}` (eq. 17/19).
    pub fn truncated(&self, count: usize) -> Self {
        assert!(
            count <= self.workers.len(),
            "cannot grow the cluster by truncation"
        );
        ClusterProfile {
            workers: self.workers[..count].to_vec(),
            network: self.network,
        }
    }

    /// Removes the given workers entirely (dropping detected Byzantine nodes),
    /// preserving the order of the remaining workers.
    pub fn without_workers(&self, removed: &[usize]) -> Self {
        ClusterProfile {
            workers: self
                .workers
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, p)| *p)
                .collect(),
            network: self.network,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_cluster_has_nominal_workers() {
        let cluster = ClusterProfile::uniform(12);
        assert_eq!(cluster.len(), 12);
        assert!(!cluster.is_empty());
        assert!(cluster
            .workers()
            .iter()
            .all(|w| w.effective_slowdown() == 1.0));
        assert!(cluster.straggler_indices().is_empty());
    }

    #[test]
    fn straggler_flag_multiplies_slowdown() {
        let mut cluster = ClusterProfile::uniform(4);
        cluster.set_stragglers(&[1, 3], 10.0);
        assert_eq!(cluster.straggler_indices(), vec![1, 3]);
        assert_eq!(cluster.worker(1).effective_slowdown(), 10.0);
        assert_eq!(cluster.worker(0).effective_slowdown(), 1.0);
        // Re-setting clears previous flags.
        cluster.set_stragglers(&[0], 5.0);
        assert_eq!(cluster.straggler_indices(), vec![0]);
    }

    #[test]
    fn with_stragglers_builder_matches_setter() {
        let a = ClusterProfile::uniform(6).with_stragglers(&[2], 7.0);
        let mut b = ClusterProfile::uniform(6);
        b.set_stragglers(&[2], 7.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_straggler_panics() {
        let mut cluster = ClusterProfile::uniform(3);
        cluster.set_stragglers(&[5], 2.0);
    }

    #[test]
    fn heterogeneous_speeds_are_within_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = ClusterProfile::heterogeneous(20, 0.5, &mut rng);
        for worker in cluster.workers() {
            assert!(worker.speed_factor >= 1.0 && worker.speed_factor <= 1.5);
        }
    }

    #[test]
    fn tiered_fleet_lays_tiers_out_in_order() {
        let cluster = ClusterProfile::tiered(&[
            SpeedTier::new(4, 1.0),
            SpeedTier::new(4, 1.5),
            SpeedTier::new(4, 2.5),
        ]);
        assert_eq!(cluster.len(), 12);
        assert_eq!(cluster.worker(0).speed_factor, 1.0);
        assert_eq!(cluster.worker(5).speed_factor, 1.5);
        assert_eq!(cluster.worker(11).speed_factor, 2.5);
        // Deterministic: two builds are identical.
        assert_eq!(
            cluster,
            ClusterProfile::tiered(&[
                SpeedTier::new(4, 1.0),
                SpeedTier::new(4, 1.5),
                SpeedTier::new(4, 2.5),
            ])
        );
    }

    #[test]
    fn correlated_stragglers_take_whole_racks() {
        let mut cluster = ClusterProfile::uniform(12);
        let mut rng = StdRng::seed_from_u64(3);
        let racks = cluster.set_correlated_stragglers(4, 1, 8.0, &mut rng);
        assert_eq!(racks.len(), 1);
        let slow = cluster.straggler_indices();
        assert_eq!(slow.len(), 4);
        // The whole rack is contiguous and aligned to the rack boundary.
        assert_eq!(slow[0] % 4, 0);
        assert!(slow.windows(2).all(|w| w[1] == w[0] + 1));
        // Same seed, same rack.
        let mut again = ClusterProfile::uniform(12);
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(again.set_correlated_stragglers(4, 1, 8.0, &mut rng2), racks);
    }

    #[test]
    fn correlated_stragglers_handle_ragged_last_rack() {
        let mut cluster = ClusterProfile::uniform(10);
        let mut rng = StdRng::seed_from_u64(0);
        // 3 racks of 4/4/2; drawing all of them flags every worker.
        let racks = cluster.set_correlated_stragglers(4, 3, 5.0, &mut rng);
        assert_eq!(racks, vec![0, 1, 2]);
        assert_eq!(cluster.straggler_indices().len(), 10);
    }

    #[test]
    fn network_transfer_time_scales_with_bytes() {
        let network = NetworkModel::default();
        let small = network.transfer_seconds(1_000);
        let large = network.transfer_seconds(10_000_000);
        assert!(large > small);
        assert!((network.transfer_seconds(0) - network.base_latency_seconds).abs() < 1e-12);
    }

    #[test]
    fn truncation_and_removal_shrink_the_cluster() {
        let cluster = ClusterProfile::uniform(12).with_stragglers(&[11], 4.0);
        let truncated = cluster.truncated(11);
        assert_eq!(truncated.len(), 11);
        assert!(truncated.straggler_indices().is_empty());
        let removed = cluster.without_workers(&[0, 5]);
        assert_eq!(removed.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn truncation_cannot_grow() {
        let _ = ClusterProfile::uniform(3).truncated(4);
    }
}
