//! The socket runtime: a master/worker executor over real TCP or Unix-domain
//! sockets, speaking the `avcc-wire` protocol.
//!
//! [`SocketExecutor`] implements the same [`Executor`] trait as the
//! in-process engines, so every engine, the trainer and the scheduler run
//! over real sockets unchanged — but here `network_seconds` is *measured*
//! (arrival minus compute), not modeled, and worker failure is a real
//! connection event, not a simulated flag.
//!
//! # Topology
//!
//! ```text
//!   master (this struct)
//!   ├── listener (TCP 127.0.0.1:* or UDS in temp dir)
//!   ├── per worker: writer half ──────────────► worker i
//!   │               reader thread ◄──────────── (process running the
//!   │                    │ mpsc Event channel    `avcc-worker` binary, or an
//!   └── execute_round ◄──┘                       in-process thread running
//!                                                the same protocol loop)
//! ```
//!
//! One thread per connection blocks on [`avcc_wire::read_frame`] and pushes
//! events into an mpsc channel; `execute_round` dispatches `TASK` frames and
//! drains the channel against a per-round deadline. There are deliberately
//! *no read timeouts on the sockets themselves* — a silent worker is handled
//! by the master-side deadline (eviction as a timed-out straggler), and a
//! dead worker by the EOF its closing socket delivers to the reader thread.
//!
//! # Eviction and recovery
//!
//! Any wire-level defect on a worker's connection — checksum mismatch,
//! version mismatch, truncated frame, disconnect, deadline — evicts the
//! worker for the round: its outcome is simply absent, which is exactly the
//! straggler/Byzantine shape the decode layer already tolerates. The
//! connection is torn down; at the next round the worker is respawned,
//! re-handshaken and re-sent every cached block (`reconnect-or-evict`).
//! Respawn attempts that *fail* back off with capped exponential delay and
//! deterministic per-(worker, attempt) jitter — see [`backoff_delay`] — so a
//! dead host is not hammered every round while the rest of the fleet makes
//! progress; attempts are counted per worker in [`SocketMetrics`].
//!
//! # Churn
//!
//! A [`ChurnSchedule`] installed via
//! [`SocketExecutor::set_churn`] is consumed on the round clock: a scheduled
//! crash/flap tears the worker's real connection down and suppresses respawn
//! while the schedule holds it down; re-admission goes through the ordinary
//! respawn path (handshake + cached `LoadBlock` replay); a corruption window
//! arms the wire-level `CorruptPayload` fault each round, so the master sees
//! a genuine checksum mismatch and evicts the worker as a corrupt frame.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use avcc_wire::{
    read_frame, write_frame, Block, ErrorMsg, Fault, FaultKind, Frame, FrameKind, Hello, HelloAck,
    Task, TaskResult, WireError, WorkerOptions, DEFAULT_MAX_PAYLOAD, PROTOCOL_VERSION,
};

use crate::churn::{ChurnEvent, ChurnSchedule, ChurnState};
use crate::cluster::ClusterProfile;
use crate::executor::{
    slowdown_sleep_seconds, Eviction, EvictionReason, Executor, ExecutorError, WorkerOutcome,
};

/// Which socket family carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// TCP over loopback (`127.0.0.1`, ephemeral port).
    Tcp,
    /// Unix-domain stream socket in the system temp directory.
    Uds,
}

/// What actually runs the worker protocol loop.
#[derive(Debug, Clone)]
pub enum WorkerBackend {
    /// A thread in this process running [`avcc_wire::serve_connection`] over
    /// a real socket — the full wire protocol without process-spawn cost.
    /// Used by tests and benches.
    InProcess,
    /// A spawned child process running the `avcc-worker` binary. The real
    /// deal: separate address space, killable, measurable.
    Process {
        /// Path to the worker binary.
        binary: PathBuf,
    },
}

/// Tunables for the socket runtime.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Socket family.
    pub transport: Transport,
    /// Worker launch mode.
    pub backend: WorkerBackend,
    /// Deadline for spawn + connect + handshake of one worker.
    pub connect_timeout: Duration,
    /// Per-round deadline: workers silent past it are evicted as timed-out
    /// stragglers.
    pub round_timeout: Duration,
    /// Write timeout on master→worker sends (a wedged worker cannot block
    /// the master indefinitely).
    pub io_timeout: Duration,
    /// Largest payload the master will accept.
    pub max_payload: usize,
    /// Seconds of injected sleep per unit of effective slowdown above 1.0
    /// (same knob as `ThreadedExecutor`, realized worker-side via the TASK
    /// frame's `sleep_micros` field).
    pub sleep_per_slowdown_unit: f64,
    /// Respawn evicted/dead workers at the next round (reconnect-or-evict).
    pub respawn: bool,
    /// Base delay of the capped exponential backoff between *failed* respawn
    /// attempts for one worker (the first attempt after a death is
    /// immediate).
    pub respawn_backoff_base: Duration,
    /// Upper bound on the respawn backoff delay.
    pub respawn_backoff_cap: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            transport: Transport::Tcp,
            backend: WorkerBackend::InProcess,
            connect_timeout: Duration::from_secs(10),
            round_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            max_payload: DEFAULT_MAX_PAYLOAD,
            sleep_per_slowdown_unit: 0.01,
            respawn: true,
            respawn_backoff_base: Duration::from_millis(50),
            respawn_backoff_cap: Duration::from_secs(2),
        }
    }
}

/// The delay before retry number `attempt` (0-based) of worker `worker`:
/// capped exponential growth from `base` with deterministic jitter.
///
/// The undelayed schedule is `base × 2^attempt`, clamped to `cap`; the
/// returned delay is then jittered into `[half, full)` of that value using a
/// SplitMix64 hash of `(worker, attempt)` — fully deterministic (no RNG
/// state, no wall clock), yet de-synchronized across workers so a rack-wide
/// outage does not produce a synchronized reconnect stampede.
pub fn backoff_delay(attempt: u64, worker: usize, base: Duration, cap: Duration) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16) as u32);
    let full = exp.min(cap).max(Duration::from_micros(1));
    // SplitMix64 of the (worker, attempt) pair.
    let mut z = (worker as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let fraction = (z % 1024) as f64 / 1024.0;
    full.div_f64(2.0) + full.div_f64(2.0).mul_f64(fraction)
}

/// Wire-level counters the master accumulates across its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketMetrics {
    /// Workers evicted mid-round (any reason).
    pub evictions: u64,
    /// Workers respawned after eviction or death.
    pub respawns: u64,
    /// Respawn attempts per worker (successful or not) — the counter the
    /// backoff policy spaces out.
    pub respawn_attempts: Vec<u64>,
    /// Frames the master sent.
    pub frames_sent: u64,
    /// Frames the master received (including stale ones).
    pub frames_received: u64,
    /// Bytes the master sent.
    pub bytes_sent: u64,
    /// Bytes the master received.
    pub bytes_received: u64,
    /// Frames discarded as stale (late results from already-settled rounds
    /// or replaced connections).
    pub stale_frames: u64,
}

/// A unified client stream over both transports.
#[derive(Debug)]
enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl StreamKind {
    fn try_clone(&self) -> io::Result<StreamKind> {
        match self {
            Self::Tcp(s) => s.try_clone().map(Self::Tcp),
            #[cfg(unix)]
            Self::Unix(s) => s.try_clone().map(Self::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Self::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    fn shutdown(&self) {
        match self {
            Self::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Self::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

/// Where a worker should connect to, printable as the `--connect` argument.
#[derive(Debug, Clone)]
enum ConnectTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Uds(PathBuf),
}

impl ConnectTarget {
    fn to_arg(&self) -> String {
        match self {
            Self::Tcp(addr) => format!("tcp:{addr}"),
            #[cfg(unix)]
            Self::Uds(path) => format!("uds:{}", path.display()),
        }
    }

    fn connect(&self) -> io::Result<StreamKind> {
        match self {
            Self::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(StreamKind::Tcp(stream))
            }
            #[cfg(unix)]
            Self::Uds(path) => UnixStream::connect(path).map(StreamKind::Unix),
        }
    }
}

#[derive(Debug)]
enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ListenerKind {
    fn bind(transport: Transport) -> Result<Self, ExecutorError> {
        match transport {
            Transport::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| spawn_err(&e))?;
                Ok(Self::Tcp(listener))
            }
            #[cfg(unix)]
            Transport::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "avcc-master-{}-{}.sock",
                    std::process::id(),
                    UDS_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path).map_err(|e| spawn_err(&e))?;
                Ok(Self::Unix(listener, path))
            }
            #[cfg(not(unix))]
            Transport::Uds => Err(ExecutorError::Spawn {
                context: "unix-domain sockets are unavailable on this platform".to_string(),
            }),
        }
    }

    fn target(&self) -> Result<ConnectTarget, ExecutorError> {
        match self {
            Self::Tcp(listener) => {
                let addr = listener.local_addr().map_err(|e| spawn_err(&e))?;
                Ok(ConnectTarget::Tcp(addr))
            }
            #[cfg(unix)]
            Self::Unix(_, path) => Ok(ConnectTarget::Uds(path.clone())),
        }
    }

    /// Accepts one connection before `deadline` (non-blocking poll loop so a
    /// worker that never connects cannot wedge the master).
    fn accept_deadline(&self, deadline: Instant) -> Result<StreamKind, ExecutorError> {
        let set_nonblocking = |on: bool| -> io::Result<()> {
            match self {
                Self::Tcp(l) => l.set_nonblocking(on),
                #[cfg(unix)]
                Self::Unix(l, _) => l.set_nonblocking(on),
            }
        };
        set_nonblocking(true).map_err(|e| spawn_err(&e))?;
        let result = loop {
            let accepted = match self {
                Self::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    StreamKind::Tcp(s)
                }),
                #[cfg(unix)]
                Self::Unix(l, _) => l.accept().map(|(s, _)| StreamKind::Unix(s)),
            };
            match accepted {
                Ok(stream) => break Ok(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(ExecutorError::Spawn {
                            context: "worker did not connect before the deadline".to_string(),
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break Err(spawn_err(&e)),
            }
        };
        let _ = set_nonblocking(false);
        result
    }
}

impl Drop for ListenerKind {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Self::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn spawn_err(e: &dyn std::fmt::Display) -> ExecutorError {
    ExecutorError::Spawn {
        context: e.to_string(),
    }
}

/// One live worker connection.
#[derive(Debug)]
struct WorkerLink {
    writer: StreamKind,
    /// Monotonic connection generation: events from a replaced connection's
    /// reader thread are discarded by generation mismatch.
    generation: u64,
    child: Option<Child>,
    /// Reader (and, for `InProcess`, worker) threads are detached; handles
    /// are kept only so dropping them is explicit.
    _reader: JoinHandle<()>,
}

/// What a reader thread reports to the master.
enum Event {
    Frame {
        worker: usize,
        generation: u64,
        frame: Frame,
        bytes: usize,
        at: Instant,
    },
    Failed {
        worker: usize,
        generation: u64,
        error: WireError,
    },
}

/// The TCP/UDS master runtime. See the module docs for topology and
/// semantics.
#[derive(Debug)]
pub struct SocketExecutor {
    profile: ClusterProfile,
    config: SocketConfig,
    listener: ListenerKind,
    links: Vec<Option<WorkerLink>>,
    events: mpsc::Receiver<Event>,
    events_tx: mpsc::Sender<Event>,
    /// Master-side block cache, job → per-worker blocks: what a respawned
    /// worker must be re-sent before it can compute again.
    blocks: HashMap<u64, Vec<Block>>,
    last_evictions: Vec<Eviction>,
    metrics: SocketMetrics,
    next_generation: u64,
    /// Consecutive *failed* respawn attempts per worker since its last
    /// successful spawn (drives the exponential backoff).
    failed_respawns: Vec<u64>,
    /// Earliest instant the next respawn attempt per worker is allowed.
    respawn_after: Vec<Instant>,
    /// Scripted fleet churn, consumed on the round clock (`None` = quiet).
    churn: Option<ChurnState>,
}

impl SocketExecutor {
    /// TCP runtime with in-process protocol workers and default tuning.
    pub fn tcp(profile: ClusterProfile) -> Result<Self, ExecutorError> {
        Self::with_config(profile, SocketConfig::default())
    }

    /// UDS runtime with in-process protocol workers and default tuning.
    pub fn uds(profile: ClusterProfile) -> Result<Self, ExecutorError> {
        Self::with_config(
            profile,
            SocketConfig {
                transport: Transport::Uds,
                ..SocketConfig::default()
            },
        )
    }

    /// Full-control constructor: binds the listener, launches one worker per
    /// profile slot and completes every handshake before returning.
    pub fn with_config(
        profile: ClusterProfile,
        config: SocketConfig,
    ) -> Result<Self, ExecutorError> {
        let listener = ListenerKind::bind(config.transport)?;
        let (events_tx, events) = mpsc::channel();
        let width = profile.len();
        let mut this = Self {
            profile,
            config,
            listener,
            links: (0..width).map(|_| None).collect(),
            events,
            events_tx,
            blocks: HashMap::new(),
            last_evictions: Vec::new(),
            metrics: SocketMetrics {
                respawn_attempts: vec![0; width],
                ..SocketMetrics::default()
            },
            next_generation: 0,
            failed_respawns: vec![0; width],
            respawn_after: vec![Instant::now(); width],
            churn: None,
        };
        for worker in 0..width {
            this.spawn_worker(worker)?;
        }
        Ok(this)
    }

    /// Wire-level counters.
    pub fn metrics(&self) -> SocketMetrics {
        self.metrics.clone()
    }

    /// Installs a churn schedule, consumed against the round indices passed
    /// to [`Executor::execute_round`]. Replaces any previous schedule and
    /// resets its state.
    pub fn set_churn(&mut self, schedule: ChurnSchedule) {
        self.churn = Some(ChurnState::new(schedule, self.links.len()));
    }

    /// The churn state, if a schedule is installed.
    pub fn churn(&self) -> Option<&ChurnState> {
        self.churn.as_ref()
    }

    /// Is `worker` currently held down by the churn schedule?
    fn churn_down(&self, worker: usize) -> bool {
        self.churn.as_ref().is_some_and(|c| c.is_down(worker))
    }

    /// Which transport this runtime is on.
    pub fn transport(&self) -> Transport {
        self.config.transport
    }

    /// Arms a one-shot injected fault on `worker` (test harness): the
    /// worker's next result send exhibits the defect, which the master then
    /// handles exactly as it would the real thing.
    pub fn inject_fault(&mut self, worker: usize, kind: FaultKind) -> Result<(), ExecutorError> {
        self.send_frame(worker, &Fault { kind }.frame())
            .map_err(|error| ExecutorError::BadBlock { worker, error })
    }

    /// Kills a worker outright: for the process backend this is a real
    /// `SIGKILL`; for the in-process backend the connection is torn down
    /// (the protocol thread exits on the resulting read error). The worker
    /// is respawned at the next round if `respawn` is enabled.
    pub fn kill_worker(&mut self, worker: usize) {
        if let Some(link) = self.links[worker].as_mut() {
            if let Some(child) = link.child.as_mut() {
                let _ = child.kill();
            }
        }
        self.tear_down(worker);
    }

    /// Launches worker `worker`, accepts its connection and completes the
    /// handshake.
    fn spawn_worker(&mut self, worker: usize) -> Result<(), ExecutorError> {
        let generation = self.next_generation;
        self.next_generation += 1;
        let target = self.listener.target()?;
        let deadline = Instant::now() + self.config.connect_timeout;
        let max_payload = self.config.max_payload;

        let child = match &self.config.backend {
            WorkerBackend::InProcess => {
                let options = WorkerOptions { max_payload };
                thread::spawn(move || {
                    if let Ok(stream) = target.connect() {
                        let _ = avcc_wire::serve_connection(stream, worker as u32, &options);
                    }
                });
                None
            }
            WorkerBackend::Process { binary } => {
                let child = Command::new(binary)
                    .arg("--connect")
                    .arg(target.to_arg())
                    .arg("--worker")
                    .arg(worker.to_string())
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| spawn_err(&e))?;
                Some(child)
            }
        };

        let mut stream = self.listener.accept_deadline(deadline)?;
        stream
            .set_read_timeout(Some(self.config.connect_timeout))
            .map_err(|e| spawn_err(&e))?;
        stream
            .set_write_timeout(Some(self.config.io_timeout))
            .map_err(|e| spawn_err(&e))?;

        // Handshake: HELLO (their version, their claimed index) → HELLO_ACK.
        let (frame, _) = read_frame(&mut stream, max_payload).map_err(|e| spawn_err(&e))?;
        if frame.kind != FrameKind::Hello {
            return Err(ExecutorError::Spawn {
                context: format!("expected HELLO, got {:?}", frame.kind),
            });
        }
        let hello = Hello::decode(&frame.payload).map_err(|e| spawn_err(&e))?;
        if hello.version != PROTOCOL_VERSION {
            return Err(ExecutorError::Spawn {
                context: format!(
                    "worker speaks protocol version {}, master speaks {}",
                    hello.version, PROTOCOL_VERSION
                ),
            });
        }
        if hello.worker as usize != worker {
            return Err(ExecutorError::Spawn {
                context: format!("worker {} connected as {}", worker, hello.worker),
            });
        }
        let ack = HelloAck {
            worker: worker as u32,
            workers: self.links.len() as u32,
        };
        let sent = write_frame(&mut stream, &ack.frame()).map_err(|e| spawn_err(&e))?;
        self.metrics.frames_sent += 1;
        self.metrics.bytes_sent += sent as u64;

        // The reader blocks indefinitely; round deadlines are enforced
        // master-side and worker death arrives as EOF.
        stream.set_read_timeout(None).map_err(|e| spawn_err(&e))?;
        let mut reader_stream = stream.try_clone().map_err(|e| spawn_err(&e))?;
        let events_tx = self.events_tx.clone();
        let reader = thread::spawn(move || loop {
            match read_frame(&mut reader_stream, max_payload) {
                Ok((frame, bytes)) => {
                    if events_tx
                        .send(Event::Frame {
                            worker,
                            generation,
                            frame,
                            bytes,
                            at: Instant::now(),
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Err(error) => {
                    let _ = events_tx.send(Event::Failed {
                        worker,
                        generation,
                        error,
                    });
                    break;
                }
            }
        });

        self.links[worker] = Some(WorkerLink {
            writer: stream,
            generation,
            child,
            _reader: reader,
        });
        Ok(())
    }

    /// Tears a worker's connection down (stream shutdown, child reaped).
    fn tear_down(&mut self, worker: usize) {
        if let Some(mut link) = self.links[worker].take() {
            link.writer.shutdown();
            if let Some(mut child) = link.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    /// Respawns a dead worker and re-sends every cached block it needs
    /// (reconnect-or-evict's reconnect half). Returns whether the worker is
    /// live afterwards.
    ///
    /// Failed attempts back off exponentially (capped, jittered — see
    /// [`backoff_delay`]): while the backoff window is open the worker simply
    /// stays dead for the round, costing nothing; the first attempt after a
    /// death is immediate. A worker the churn schedule holds down is never
    /// respawned (and burns no attempts) until the schedule re-admits it.
    fn ensure_live(&mut self, worker: usize) -> bool {
        if self.links[worker].is_some() {
            return true;
        }
        if !self.config.respawn || self.churn_down(worker) {
            return false;
        }
        let now = Instant::now();
        if now < self.respawn_after[worker] {
            return false; // still backing off; no attempt burned
        }
        self.metrics.respawn_attempts[worker] += 1;
        if self.spawn_worker(worker).is_err() {
            self.links[worker] = None;
            let attempt = self.failed_respawns[worker];
            self.failed_respawns[worker] += 1;
            self.respawn_after[worker] = now
                + backoff_delay(
                    attempt,
                    worker,
                    self.config.respawn_backoff_base,
                    self.config.respawn_backoff_cap,
                );
            return false;
        }
        self.failed_respawns[worker] = 0;
        self.respawn_after[worker] = now;
        self.metrics.respawns += 1;
        // Re-send the worker's block for every cached job.
        let frames: Vec<Frame> = self
            .blocks
            .iter()
            .filter_map(|(job, blocks)| blocks.get(worker).map(|b| b.frame(*job)))
            .collect();
        for frame in frames {
            if self.send_frame(worker, &frame).is_err() {
                self.tear_down(worker);
                return false;
            }
        }
        true
    }

    fn send_frame(&mut self, worker: usize, frame: &Frame) -> Result<(), WireError> {
        let link = self.links[worker].as_mut().ok_or(WireError::Closed {
            context: "sending to an evicted worker",
        })?;
        match write_frame(&mut link.writer, frame) {
            Ok(bytes) => {
                self.metrics.frames_sent += 1;
                self.metrics.bytes_sent += bytes as u64;
                Ok(())
            }
            Err(error) => Err(error),
        }
    }

    /// Records an eviction and tears the connection down.
    fn evict(&mut self, worker: usize, round: u64, reason: EvictionReason) {
        self.last_evictions.push(Eviction {
            worker,
            round,
            reason,
        });
        self.metrics.evictions += 1;
        self.tear_down(worker);
    }

    /// Is this event from the connection we currently consider live?
    fn is_current(&self, worker: usize, generation: u64) -> bool {
        self.links
            .get(worker)
            .and_then(Option::as_ref)
            .is_some_and(|l| l.generation == generation)
    }

    /// Processes connection failures that happened *between* rounds (e.g. a
    /// killed worker) and discards stale frames, so the round starts from a
    /// clean event queue.
    fn drain_idle_events(&mut self) {
        loop {
            let event = match self.events.try_recv() {
                Ok(event) => event,
                Err(_) => return,
            };
            match event {
                Event::Frame { bytes, .. } => {
                    self.metrics.frames_received += 1;
                    self.metrics.bytes_received += bytes as u64;
                    self.metrics.stale_frames += 1;
                }
                Event::Failed {
                    worker, generation, ..
                } => {
                    if self.is_current(worker, generation) {
                        self.tear_down(worker);
                    }
                }
            }
        }
    }
}

impl Executor for SocketExecutor {
    fn workers(&self) -> usize {
        self.links.len()
    }

    fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    fn install_blocks(&mut self, job: u64, blocks: &[Block]) -> Result<(), ExecutorError> {
        if blocks.len() > self.links.len() {
            return Err(ExecutorError::TooManyTasks {
                tasks: blocks.len(),
                workers: self.links.len(),
            });
        }
        self.drain_idle_events();
        self.blocks.insert(job, blocks.to_vec());
        for (worker, block) in blocks.iter().enumerate() {
            if !self.ensure_live(worker) {
                continue; // stays dead; eviction surfaces at round time
            }
            // `ensure_live` above re-sent cached blocks only for *respawned*
            // workers; live workers still need this job's block.
            let frame = block.frame(job);
            if self.send_frame(worker, &frame).is_err() {
                self.tear_down(worker);
            }
        }
        Ok(())
    }

    fn execute_round(
        &mut self,
        job: u64,
        round: u64,
        inputs: &[Vec<Vec<u64>>],
    ) -> Result<Vec<WorkerOutcome<Vec<Vec<u64>>>>, ExecutorError> {
        let job_width = self
            .blocks
            .get(&job)
            .ok_or(ExecutorError::UnknownJob { job })?
            .len();
        if inputs.len() > job_width {
            return Err(ExecutorError::TooManyTasks {
                tasks: inputs.len(),
                workers: job_width,
            });
        }
        if let Some(churn) = self.churn.as_mut() {
            churn.advance_to(round);
        }
        self.last_evictions.clear();
        self.drain_idle_events();
        for worker in 0..inputs.len() {
            if self.churn_down(worker) {
                // Scheduled crash/flap: take the real connection down and
                // skip the round silently — the churn event stream already
                // records why the outcome is absent.
                if self.links[worker].is_some() {
                    self.kill_worker(worker);
                }
                continue;
            }
            if !self.ensure_live(worker) {
                self.evict(worker, round, EvictionReason::Disconnected);
            }
        }

        let round_start = Instant::now();
        // Generation each in-flight worker's result must come from.
        let mut pending: Vec<Option<u64>> = vec![None; inputs.len()];
        for (worker, worker_inputs) in inputs.iter().enumerate() {
            if self.links[worker].is_some()
                && self.churn.as_ref().is_some_and(|c| c.is_corrupting(worker))
            {
                // Corruption window: arm the wire-level payload fault so the
                // worker's next result arrives with a broken checksum and is
                // evicted as a corrupt frame — the real defect, end to end.
                let _ = self.inject_fault(worker, FaultKind::CorruptPayload);
            }
            let Some(link) = self.links[worker].as_ref() else {
                continue; // already evicted above
            };
            let generation = link.generation;
            let slowdown = self.profile.worker(worker).effective_slowdown()
                * self
                    .churn
                    .as_ref()
                    .map_or(1.0, |c| c.slowdown_multiplier(worker));
            let sleep = slowdown_sleep_seconds(slowdown, self.config.sleep_per_slowdown_unit);
            let task = Task {
                sleep_micros: (sleep * 1e6) as u64,
                inputs: worker_inputs.clone(),
            };
            match self.send_frame(worker, &task.frame(job, round)) {
                Ok(()) => pending[worker] = Some(generation),
                Err(_) => self.evict(worker, round, EvictionReason::Disconnected),
            }
        }

        let deadline = round_start + self.config.round_timeout;
        let mut outcomes: Vec<WorkerOutcome<Vec<Vec<u64>>>> = Vec::with_capacity(inputs.len());
        let mut remaining = pending.iter().filter(|p| p.is_some()).count();
        while remaining > 0 {
            let Some(budget) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let event = match self.events.recv_timeout(budget) {
                Ok(event) => event,
                Err(_) => break, // deadline (or, impossibly, a closed channel)
            };
            match event {
                Event::Frame {
                    worker,
                    generation,
                    frame,
                    bytes,
                    at,
                } => {
                    self.metrics.frames_received += 1;
                    self.metrics.bytes_received += bytes as u64;
                    if pending.get(worker).copied().flatten() != Some(generation)
                        || !self.is_current(worker, generation)
                    {
                        self.metrics.stale_frames += 1;
                        continue;
                    }
                    match frame.kind {
                        FrameKind::TaskResult if frame.job == job && frame.round == round => {
                            match TaskResult::decode(&frame.payload) {
                                Ok(result) => {
                                    let arrival_seconds =
                                        at.duration_since(round_start).as_secs_f64();
                                    let compute_seconds = result.compute_seconds.max(0.0);
                                    // Everything between the worker finishing
                                    // compute and the master holding the
                                    // decoded frame: serialization, the
                                    // kernel's socket path, and queueing.
                                    let network_seconds =
                                        (arrival_seconds - compute_seconds).max(0.0);
                                    outcomes.push(WorkerOutcome {
                                        worker,
                                        payload: result.outputs,
                                        compute_seconds,
                                        network_seconds,
                                        arrival_seconds,
                                        corrupted: false,
                                    });
                                    pending[worker] = None;
                                    remaining -= 1;
                                }
                                Err(_) => {
                                    pending[worker] = None;
                                    remaining -= 1;
                                    self.evict(worker, round, EvictionReason::Protocol);
                                }
                            }
                        }
                        FrameKind::TaskResult => {
                            // A late result for some other (job, round).
                            self.metrics.stale_frames += 1;
                        }
                        FrameKind::Error => {
                            let reason = ErrorMsg::decode(&frame.payload)
                                .map(|e| e.message)
                                .unwrap_or_default();
                            let _ = reason; // reason is for tracing; eviction is the action
                            pending[worker] = None;
                            remaining -= 1;
                            self.evict(worker, round, EvictionReason::Protocol);
                        }
                        _ => {
                            pending[worker] = None;
                            remaining -= 1;
                            self.evict(worker, round, EvictionReason::Protocol);
                        }
                    }
                }
                Event::Failed {
                    worker,
                    generation,
                    error,
                } => {
                    if !self.is_current(worker, generation) {
                        continue;
                    }
                    let reason = match error {
                        WireError::ChecksumMismatch { .. } | WireError::BadMagic { .. } => {
                            EvictionReason::CorruptFrame
                        }
                        WireError::UnsupportedVersion { .. } => EvictionReason::VersionMismatch,
                        WireError::FrameTooLarge { .. }
                        | WireError::UnknownFrameKind { .. }
                        | WireError::Malformed { .. } => EvictionReason::Protocol,
                        _ => EvictionReason::Disconnected,
                    };
                    if pending.get(worker).copied().flatten() == Some(generation) {
                        pending[worker] = None;
                        remaining -= 1;
                        self.evict(worker, round, reason);
                    } else {
                        self.tear_down(worker);
                    }
                }
            }
        }
        // Anything still pending after the deadline is a timed-out straggler.
        let timed_out: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter_map(|(w, p)| p.map(|_| w))
            .collect();
        for worker in timed_out {
            self.evict(worker, round, EvictionReason::TimedOut);
        }
        Ok(outcomes)
    }

    fn round_evictions(&self) -> &[Eviction] {
        &self.last_evictions
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        self.churn.as_ref().map_or(&[], ChurnState::events)
    }

    fn live_workers(&self) -> usize {
        self.churn
            .as_ref()
            .map_or(self.links.len(), ChurnState::live_count)
    }
}

impl Drop for SocketExecutor {
    fn drop(&mut self) {
        // Graceful: ask every live worker to exit, then reap.
        for worker in 0..self.links.len() {
            let _ = self.send_frame(worker, &Frame::new(FrameKind::Shutdown, 0, 0, Vec::new()));
        }
        for link in self.links.iter_mut().flatten() {
            if let Some(child) = link.child.as_mut() {
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            link.writer.shutdown();
        }
    }
}
