//! Deterministic fleet churn: seeded schedules of worker crashes, joins,
//! stalls, corruption windows and network flaps, plus the chaos-harness
//! constructors used by the differential matrix tests.
//!
//! Elasticity is modeled on the *schedule clock*: every action fires at a
//! scripted **round index**, never at a wall-clock instant, so a churn run is
//! bit-reproducible on an arbitrarily loaded host. Executors feed their round
//! counter into [`ChurnState::advance_to`] before dispatching; the state
//! answers "is worker `w` down / stalled / corrupting right now?" and records
//! a typed [`ChurnEvent`] for every transition.
//!
//! The key invariant the chaos harness leans on: a churned worker only ever
//! *removes* its result from a round (crash/flap), *delays* it (stall), or
//! makes it *detectably invalid* (corrupt — the payload is clobbered with a
//! non-canonical value that the wire lift rejects). Decode recovers the exact
//! field values from any sufficient honest subset, so every recoverable
//! schedule yields a model bit-identical to the quiet-fleet oracle.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scripted churn action, fired at a scheduled round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// The worker goes down and stays down (until an explicit [`Join`]).
    ///
    /// [`Join`]: ChurnAction::Join
    Crash {
        /// The worker that crashes.
        worker: usize,
    },
    /// The worker (re-)joins the fleet and serves rounds again.
    Join {
        /// The worker that joins.
        worker: usize,
    },
    /// The worker stays up but runs `multiplier` times slower for the next
    /// `rounds` rounds (a transient straggler burst).
    Stall {
        /// The worker that stalls.
        worker: usize,
        /// How many rounds the stall lasts.
        rounds: u64,
        /// Slowdown multiplier while stalled.
        multiplier: f64,
    },
    /// The worker returns detectably corrupt payloads for `rounds` rounds,
    /// then behaves honestly again (corrupt-then-rejoin).
    Corrupt {
        /// The worker that corrupts its results.
        worker: usize,
        /// How many rounds the corruption window lasts.
        rounds: u64,
    },
    /// The worker's link drops for `rounds` rounds and then comes back
    /// (a network flap with automatic re-admission).
    Flap {
        /// The worker whose link flaps.
        worker: usize,
        /// How many rounds the link stays down.
        rounds: u64,
    },
    /// A correlated straggler burst: every worker in `group` slows down by
    /// `multiplier` for `rounds` rounds (one event takes a whole rack slow).
    SlowBurst {
        /// The workers in the slow group (e.g. one rack).
        group: Vec<usize>,
        /// How many rounds the burst lasts.
        rounds: u64,
        /// Slowdown multiplier for the whole group.
        multiplier: f64,
    },
}

impl ChurnAction {
    /// The largest worker index this action touches, if any.
    fn max_worker(&self) -> Option<usize> {
        match self {
            ChurnAction::Crash { worker }
            | ChurnAction::Join { worker }
            | ChurnAction::Stall { worker, .. }
            | ChurnAction::Corrupt { worker, .. }
            | ChurnAction::Flap { worker, .. } => Some(*worker),
            ChurnAction::SlowBurst { group, .. } => group.iter().copied().max(),
        }
    }
}

/// A deterministic, seeded script of churn actions keyed by round index.
///
/// Build one with [`ChurnSchedule::quiet`] + [`ChurnSchedule::at`], with the
/// [`ChaosSchedule`] constructors, or with the seeded generator
/// [`ChurnSchedule::seeded`]. Install it on an executor
/// (`ThreadedExecutor::set_churn` / `SocketExecutor::set_churn`) and the
/// executor consumes it round by round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    actions: BTreeMap<u64, Vec<ChurnAction>>,
}

impl ChurnSchedule {
    /// The empty schedule: a quiet fleet, no churn at any round.
    pub fn quiet() -> Self {
        ChurnSchedule::default()
    }

    /// Adds `action` at round `round` (builder style; actions at the same
    /// round fire in insertion order).
    pub fn at(mut self, round: u64, action: ChurnAction) -> Self {
        self.actions.entry(round).or_default().push(action);
        self
    }

    /// `true` iff the schedule contains no actions.
    pub fn is_quiet(&self) -> bool {
        self.actions.is_empty()
    }

    /// The actions scheduled at exactly round `round`.
    pub fn actions_at(&self, round: u64) -> &[ChurnAction] {
        self.actions.get(&round).map_or(&[], Vec::as_slice)
    }

    /// The last round with a scheduled action, or `None` when quiet.
    pub fn last_round(&self) -> Option<u64> {
        self.actions.keys().next_back().copied()
    }

    /// The largest worker index the schedule touches, or `None` when quiet.
    pub fn max_worker(&self) -> Option<usize> {
        self.actions
            .values()
            .flatten()
            .filter_map(ChurnAction::max_worker)
            .max()
    }

    /// A deterministic pseudo-random schedule over `workers` workers and
    /// `rounds` rounds: flaps and stalls with bounded duration, never more
    /// than `max_down` workers down at once. Same seed, same schedule —
    /// byte-for-byte — so property tests shrink reproducibly.
    pub fn seeded(seed: u64, workers: usize, rounds: u64, max_down: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = ChurnSchedule::quiet();
        if workers == 0 || rounds == 0 {
            return schedule;
        }
        // (worker, back_up_at) windows currently keeping a worker down.
        let mut down_windows: Vec<(usize, u64)> = Vec::new();
        let mut round = 1 + rng.gen_range(0..3.min(rounds));
        while round < rounds {
            down_windows.retain(|&(_, up_at)| up_at > round);
            let worker = rng.gen_range(0..workers);
            let busy = down_windows.iter().any(|&(w, _)| w == worker);
            let duration = 1 + rng.gen_range(0..3) as u64;
            if !busy {
                if down_windows.len() < max_down && rng.gen_bool(0.5) {
                    schedule = schedule.at(
                        round,
                        ChurnAction::Flap {
                            worker,
                            rounds: duration,
                        },
                    );
                    down_windows.push((worker, round + duration));
                } else {
                    schedule = schedule.at(
                        round,
                        ChurnAction::Stall {
                            worker,
                            rounds: duration,
                            multiplier: 2.0 + rng.gen_range(0.0..6.0),
                        },
                    );
                }
            }
            round += 1 + rng.gen_range(0..4) as u64;
        }
        schedule
    }
}

/// Constructors for the chaos-harness fault families — each returns an
/// ordinary [`ChurnSchedule`] scripting one named fault shape, so the
/// differential matrix test enumerates
/// `{crash, stall, corrupt-then-rejoin, flap} × {workers}` uniformly.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSchedule;

impl ChaosSchedule {
    /// Every listed worker crashes at `round` (and stays down).
    pub fn crash(workers: &[usize], round: u64) -> ChurnSchedule {
        workers.iter().fold(ChurnSchedule::quiet(), |s, &worker| {
            s.at(round, ChurnAction::Crash { worker })
        })
    }

    /// Every listed worker stalls by `multiplier` for `rounds` rounds
    /// starting at `round`.
    pub fn stall(workers: &[usize], round: u64, rounds: u64, multiplier: f64) -> ChurnSchedule {
        workers.iter().fold(ChurnSchedule::quiet(), |s, &worker| {
            s.at(
                round,
                ChurnAction::Stall {
                    worker,
                    rounds,
                    multiplier,
                },
            )
        })
    }

    /// Every listed worker serves corrupt results for `rounds` rounds
    /// starting at `round`, then rejoins honestly.
    pub fn corrupt_then_rejoin(workers: &[usize], round: u64, rounds: u64) -> ChurnSchedule {
        workers.iter().fold(ChurnSchedule::quiet(), |s, &worker| {
            s.at(round, ChurnAction::Corrupt { worker, rounds })
        })
    }

    /// Every listed worker's link flaps down for `rounds` rounds starting at
    /// `round`, then re-admits.
    pub fn flap(workers: &[usize], round: u64, rounds: u64) -> ChurnSchedule {
        workers.iter().fold(ChurnSchedule::quiet(), |s, &worker| {
            s.at(round, ChurnAction::Flap { worker, rounds })
        })
    }
}

/// What happened to the fleet, as a typed record in the metrics stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// A worker crashed (scheduled, stays down).
    Crash,
    /// A worker (re-)joined the fleet.
    Join,
    /// A stall window opened on a worker.
    StallStart,
    /// A stall window closed.
    StallEnd,
    /// A corruption window opened on a worker.
    CorruptStart,
    /// A corruption window closed (the worker is honest again).
    CorruptEnd,
    /// A network flap took a worker's link down.
    FlapDown,
    /// A flapped link came back up (re-admission).
    FlapUp,
    /// The driver parked a round: live workers dropped below the recovery
    /// threshold, so the round waits instead of failing the job.
    Parked,
    /// A parked round resumed after re-admission restored decodability.
    Resumed,
    /// The stall budget ran out and the driver shrink-recoded `(N, K)` to
    /// restore decodability with the workers still live.
    ShrinkRecoded,
    /// The autopilot retuned the coding configuration from its observed
    /// churn/straggler/Byzantine rates.
    AutopilotRetune,
}

/// One typed churn record: what happened, to whom, at which schedule round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// The round (schedule clock) at which the event fired.
    pub round: u64,
    /// The worker involved (for fleet-level events: the live worker count).
    pub worker: usize,
    /// What happened.
    pub kind: ChurnEventKind,
}

/// The runtime state of a schedule being consumed: which workers are
/// currently down / stalled / corrupting, advanced round by round.
#[derive(Debug, Clone)]
pub struct ChurnState {
    schedule: ChurnSchedule,
    /// Highest round already processed (`None` before the first advance).
    processed: Option<u64>,
    round: u64,
    down: Vec<bool>,
    stall_until: Vec<u64>,
    stall_multiplier: Vec<f64>,
    corrupt_until: Vec<u64>,
    rejoin_at: Vec<Option<u64>>,
    events: Vec<ChurnEvent>,
}

impl ChurnState {
    /// A state consuming `schedule` over a fleet of `workers` workers.
    ///
    /// Panics if the schedule addresses a worker index `≥ workers`.
    pub fn new(schedule: ChurnSchedule, workers: usize) -> Self {
        if let Some(max) = schedule.max_worker() {
            assert!(
                max < workers,
                "churn schedule addresses worker {max} but the fleet has {workers} workers"
            );
        }
        ChurnState {
            schedule,
            processed: None,
            round: 0,
            down: vec![false; workers],
            stall_until: vec![0; workers],
            stall_multiplier: vec![1.0; workers],
            corrupt_until: vec![0; workers],
            rejoin_at: vec![None; workers],
            events: Vec::new(),
        }
    }

    /// Processes every scheduled tick up to and including `round` (skipped
    /// rounds fire their actions too — the clock is the round index, not the
    /// call count). Idempotent for non-increasing rounds.
    pub fn advance_to(&mut self, round: u64) {
        let start = match self.processed {
            Some(p) if round <= p => {
                self.round = self.round.max(round);
                return;
            }
            Some(p) => p + 1,
            None => 0,
        };
        for r in start..=round {
            self.tick(r);
        }
        self.processed = Some(round);
        self.round = round;
    }

    /// Applies one round tick: expiries first, then scheduled actions.
    fn tick(&mut self, r: u64) {
        for w in 0..self.down.len() {
            if self.rejoin_at[w] == Some(r) {
                self.rejoin_at[w] = None;
                if self.down[w] {
                    self.down[w] = false;
                    self.record(r, w, ChurnEventKind::FlapUp);
                }
            }
            if self.stall_until[w] != 0 && r >= self.stall_until[w] {
                self.stall_until[w] = 0;
                self.stall_multiplier[w] = 1.0;
                self.record(r, w, ChurnEventKind::StallEnd);
            }
            if self.corrupt_until[w] != 0 && r >= self.corrupt_until[w] {
                self.corrupt_until[w] = 0;
                self.record(r, w, ChurnEventKind::CorruptEnd);
            }
        }
        for action in self.schedule.actions_at(r).to_vec() {
            self.apply(r, &action);
        }
    }

    fn apply(&mut self, r: u64, action: &ChurnAction) {
        match *action {
            ChurnAction::Crash { worker } => {
                if !self.down[worker] {
                    self.down[worker] = true;
                    self.rejoin_at[worker] = None;
                    self.record(r, worker, ChurnEventKind::Crash);
                }
            }
            ChurnAction::Join { worker } => {
                if self.down[worker] {
                    self.down[worker] = false;
                    self.rejoin_at[worker] = None;
                    self.record(r, worker, ChurnEventKind::Join);
                }
            }
            ChurnAction::Stall {
                worker,
                rounds,
                multiplier,
            } => {
                self.stall_until[worker] = r + rounds.max(1);
                self.stall_multiplier[worker] = multiplier.max(1.0);
                self.record(r, worker, ChurnEventKind::StallStart);
            }
            ChurnAction::Corrupt { worker, rounds } => {
                self.corrupt_until[worker] = r + rounds.max(1);
                self.record(r, worker, ChurnEventKind::CorruptStart);
            }
            ChurnAction::Flap { worker, rounds } => {
                if !self.down[worker] {
                    self.down[worker] = true;
                    self.rejoin_at[worker] = Some(r + rounds.max(1));
                    self.record(r, worker, ChurnEventKind::FlapDown);
                }
            }
            ChurnAction::SlowBurst {
                ref group,
                rounds,
                multiplier,
            } => {
                for &worker in group {
                    self.stall_until[worker] = r + rounds.max(1);
                    self.stall_multiplier[worker] = multiplier.max(1.0);
                    self.record(r, worker, ChurnEventKind::StallStart);
                }
            }
        }
    }

    fn record(&mut self, round: u64, worker: usize, kind: ChurnEventKind) {
        self.events.push(ChurnEvent {
            round,
            worker,
            kind,
        });
    }

    /// The round the state has been advanced to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// `true` iff worker `w` is currently down (crashed or mid-flap).
    pub fn is_down(&self, w: usize) -> bool {
        self.down[w]
    }

    /// Number of workers currently up.
    pub fn live_count(&self) -> usize {
        self.down.iter().filter(|&&d| !d).count()
    }

    /// Indices of the workers currently down.
    pub fn down_workers(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&w| self.down[w]).collect()
    }

    /// The extra slowdown multiplier on worker `w` right now (1.0 = none).
    pub fn slowdown_multiplier(&self, w: usize) -> f64 {
        if self.round < self.stall_until[w] {
            self.stall_multiplier[w]
        } else {
            1.0
        }
    }

    /// `true` iff worker `w` is inside a corruption window right now.
    pub fn is_corrupting(&self, w: usize) -> bool {
        self.round < self.corrupt_until[w]
    }

    /// Every typed event recorded so far, in firing order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// The schedule being consumed.
    pub fn schedule(&self) -> &ChurnSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_schedule_never_touches_the_fleet() {
        let mut state = ChurnState::new(ChurnSchedule::quiet(), 4);
        state.advance_to(100);
        assert_eq!(state.live_count(), 4);
        assert!(state.events().is_empty());
        assert!((0..4).all(|w| !state.is_down(w) && !state.is_corrupting(w)));
    }

    #[test]
    fn crash_is_permanent_until_join() {
        let schedule = ChurnSchedule::quiet()
            .at(2, ChurnAction::Crash { worker: 1 })
            .at(5, ChurnAction::Join { worker: 1 });
        let mut state = ChurnState::new(schedule, 3);
        state.advance_to(1);
        assert!(!state.is_down(1));
        state.advance_to(2);
        assert!(state.is_down(1));
        assert_eq!(state.live_count(), 2);
        state.advance_to(4);
        assert!(state.is_down(1));
        state.advance_to(5);
        assert!(!state.is_down(1));
        let kinds: Vec<_> = state.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![ChurnEventKind::Crash, ChurnEventKind::Join]);
    }

    #[test]
    fn flap_rejoins_automatically() {
        let schedule = ChurnSchedule::quiet().at(
            3,
            ChurnAction::Flap {
                worker: 0,
                rounds: 2,
            },
        );
        let mut state = ChurnState::new(schedule, 2);
        state.advance_to(3);
        assert!(state.is_down(0));
        state.advance_to(4);
        assert!(state.is_down(0));
        state.advance_to(5);
        assert!(!state.is_down(0));
        let kinds: Vec<_> = state.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ChurnEventKind::FlapDown, ChurnEventKind::FlapUp]
        );
    }

    #[test]
    fn skipped_rounds_still_fire_their_actions() {
        // The clock is the round index: advancing straight to round 10 must
        // process the flap at 3 AND its rejoin at 5.
        let schedule = ChurnSchedule::quiet().at(
            3,
            ChurnAction::Flap {
                worker: 0,
                rounds: 2,
            },
        );
        let mut state = ChurnState::new(schedule, 1);
        state.advance_to(10);
        assert!(!state.is_down(0));
        assert_eq!(state.events().len(), 2);
    }

    #[test]
    fn stall_window_applies_and_expires() {
        let schedule = ChurnSchedule::quiet().at(
            1,
            ChurnAction::Stall {
                worker: 2,
                rounds: 3,
                multiplier: 6.0,
            },
        );
        let mut state = ChurnState::new(schedule, 4);
        state.advance_to(0);
        assert_eq!(state.slowdown_multiplier(2), 1.0);
        state.advance_to(1);
        assert_eq!(state.slowdown_multiplier(2), 6.0);
        state.advance_to(3);
        assert_eq!(state.slowdown_multiplier(2), 6.0);
        state.advance_to(4);
        assert_eq!(state.slowdown_multiplier(2), 1.0);
        let kinds: Vec<_> = state.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ChurnEventKind::StallStart, ChurnEventKind::StallEnd]
        );
    }

    #[test]
    fn corrupt_window_closes_on_schedule() {
        let schedule = ChurnSchedule::quiet().at(
            2,
            ChurnAction::Corrupt {
                worker: 1,
                rounds: 2,
            },
        );
        let mut state = ChurnState::new(schedule, 2);
        state.advance_to(2);
        assert!(state.is_corrupting(1));
        assert!(!state.is_down(1));
        state.advance_to(3);
        assert!(state.is_corrupting(1));
        state.advance_to(4);
        assert!(!state.is_corrupting(1));
    }

    #[test]
    fn slow_burst_takes_the_whole_group_down_together() {
        let schedule = ChurnSchedule::quiet().at(
            1,
            ChurnAction::SlowBurst {
                group: vec![0, 1, 2],
                rounds: 2,
                multiplier: 8.0,
            },
        );
        let mut state = ChurnState::new(schedule, 6);
        state.advance_to(1);
        for w in 0..3 {
            assert_eq!(state.slowdown_multiplier(w), 8.0);
        }
        for w in 3..6 {
            assert_eq!(state.slowdown_multiplier(w), 1.0);
        }
    }

    #[test]
    fn advance_is_idempotent_for_same_round() {
        let schedule = ChurnSchedule::quiet().at(1, ChurnAction::Crash { worker: 0 });
        let mut state = ChurnState::new(schedule, 2);
        state.advance_to(1);
        state.advance_to(1);
        state.advance_to(1);
        assert_eq!(state.events().len(), 1);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_bounded() {
        let a = ChurnSchedule::seeded(7, 8, 40, 2);
        let b = ChurnSchedule::seeded(7, 8, 40, 2);
        assert_eq!(a, b);
        assert!(!a.is_quiet());
        let c = ChurnSchedule::seeded(8, 8, 40, 2);
        assert_ne!(a, c);
        // Bound holds: replay and check live count never dips below 8 - 2.
        let mut state = ChurnState::new(a, 8);
        for round in 0..=45 {
            state.advance_to(round);
            assert!(state.live_count() >= 6, "round {round}: too many down");
        }
    }

    #[test]
    fn chaos_constructors_script_the_named_faults() {
        let crash = ChaosSchedule::crash(&[1, 4], 3);
        assert_eq!(crash.actions_at(3).len(), 2);
        let stall = ChaosSchedule::stall(&[0], 2, 4, 8.0);
        assert!(matches!(
            stall.actions_at(2)[0],
            ChurnAction::Stall {
                worker: 0,
                rounds: 4,
                ..
            }
        ));
        let corrupt = ChaosSchedule::corrupt_then_rejoin(&[2], 1, 3);
        assert!(matches!(
            corrupt.actions_at(1)[0],
            ChurnAction::Corrupt {
                worker: 2,
                rounds: 3
            }
        ));
        let flap = ChaosSchedule::flap(&[5], 4, 2);
        assert!(matches!(
            flap.actions_at(4)[0],
            ChurnAction::Flap {
                worker: 5,
                rounds: 2
            }
        ));
        assert_eq!(flap.last_round(), Some(4));
        assert_eq!(flap.max_worker(), Some(5));
    }

    #[test]
    #[should_panic(expected = "addresses worker")]
    fn schedule_beyond_fleet_width_panics() {
        let schedule = ChurnSchedule::quiet().at(1, ChurnAction::Crash { worker: 9 });
        let _ = ChurnState::new(schedule, 4);
    }
}
