//! `AVCC_THREADS` override test.
//!
//! Lives in its own integration-test binary (one process per test file) so
//! the environment variable is guaranteed to be set before the global pool's
//! one-time initialization — unit tests inside the library share a process
//! and cannot control first-use order.

#[test]
fn avcc_threads_one_forces_an_inline_global_pool() {
    std::env::set_var("AVCC_THREADS", "1");
    assert_eq!(avcc_pool::global().parallelism(), 1);

    // Everything still works, inline, in spawn order on the calling thread.
    let caller = std::thread::current().id();
    let mut order = Vec::new();
    avcc_pool::scope(|scope| {
        let order = &mut order;
        scope.spawn(move || order.push((1, std::thread::current().id())));
    });
    avcc_pool::scope(|scope| {
        let order = &mut order;
        scope.spawn(move || order.push((2, std::thread::current().id())));
    });
    assert_eq!(
        order,
        vec![(1, caller), (2, caller)],
        "AVCC_THREADS=1 must run tasks inline on the caller"
    );

    let sums = avcc_pool::map_ranges(vec![0..10, 10..60, 60..100], |range| range.sum::<usize>());
    assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
}
