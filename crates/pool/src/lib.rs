//! A small work-stealing thread pool with a `scope`/`join` API.
//!
//! The build environment is offline, so the workspace cannot depend on rayon;
//! this crate provides the subset of its execution model the AVCC kernels
//! need, sized for the workloads in this repository:
//!
//! * **One global pool** ([`global`]), sized from
//!   [`std::thread::available_parallelism`] and overridable with the
//!   `AVCC_THREADS` environment variable (read once, at first use;
//!   `AVCC_THREADS=1` makes every pool operation run inline on the caller).
//! * **Scoped tasks** ([`ThreadPool::scope`]): spawned closures may borrow
//!   from the caller's stack, because `scope` does not return until every
//!   task spawned inside it has finished — the same guarantee
//!   [`std::thread::scope`] gives, without paying an OS-thread spawn per
//!   task.
//! * **Work stealing**: each worker owns a deque; it pushes and pops its own
//!   work LIFO (cache-warm) and steals FIFO from the shared injector or from
//!   the other workers when its own deque runs dry.
//! * **Scope-local helping, not blocking**: a thread that waits for a scope
//!   to drain — whether a pool worker or an external caller — executes
//!   pending tasks *of that scope* while it waits (background workers,
//!   which wait on nothing, run anything). This is what makes *nested*
//!   parallelism compose: a simulated cluster fans out worker tasks, each
//!   worker task fans out blocked-kernel chunks, and every waiter drains
//!   the very tasks it is waiting on, so the nesting can neither deadlock
//!   nor oversubscribe the machine with one OS thread per leaf task (the
//!   failure mode of the scoped-thread fan-out this pool replaced).
//!   Restricting helpers to their own scope keeps a waiter from nesting an
//!   unrelated task (and its runtime) inside its own call stack — callers
//!   that time their own work, like the cluster simulator's round
//!   dispatcher, would otherwise attribute a stranger's compute to
//!   themselves — and bounds helper re-entrancy by the scope nesting
//!   depth. Progress does not need foreign helping: by induction on
//!   nesting depth, the deepest blocked scope's pending tasks are either
//!   queued (its own waiter finds them) or running on a thread that is
//!   actively computing.
//!
//! # Execution model
//!
//! A [`ThreadPool`] of parallelism `n` owns `n − 1` background OS threads;
//! the caller of a blocking operation ([`ThreadPool::scope`],
//! [`ThreadPool::join`], [`map_ranges`]) is the `n`-th participant. With
//! `n = 1` there are no background threads at all and every task runs
//! inline, in spawn order, on the caller — useful both for
//! `AVCC_THREADS=1` reproducibility and for measuring parallel overhead.
//!
//! Panics in spawned tasks are caught, forwarded to the thread that called
//! `scope`, and re-thrown after the scope has fully drained (so sibling
//! tasks still complete and borrows never dangle).
//!
//! # Safety
//!
//! The crate contains exactly one `unsafe` operation:
//! `erase_task_lifetime` transmutes a `Box<dyn FnOnce() + Send + 'scope>`
//! to `'static` so it can sit in the pool's queues. Soundness is the scope
//! discipline: every erased task holds the [`Scope`]'s completion latch,
//! and [`ThreadPool::scope`] (including its panic path, via a drop guard)
//! does not return before the latch reaches zero — therefore no erased task
//! can outlive the borrows it captures. This is the same argument rayon
//! makes for its scoped jobs.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A queued unit of work: the erased closure plus the identity of the scope
/// it belongs to (the address of its `ScopeCore` allocation — stable and
/// unambiguous while any of the scope's tasks exist, because every task
/// holds an `Arc` to its core). Closures are erased to `'static` (see
/// [`erase_task_lifetime`]); the scope latch keeps the borrow alive.
struct QueuedTask {
    run: Box<dyn FnOnce() + Send + 'static>,
    scope: usize,
}

type Task = QueuedTask;

/// The single unsafe operation in this crate: forgets a task's borrow
/// lifetime so it can be queued in the (`'static`) pool.
///
/// # Safety
///
/// The caller must guarantee the task runs to completion before `'scope`
/// ends. [`ThreadPool::scope`] guarantees this by counting the task on the
/// scope's latch *before* erasure and refusing to return (even while
/// unwinding) until the latch drains.
unsafe fn erase_task_lifetime<'scope>(
    task: Box<dyn FnOnce() + Send + 'scope>,
) -> Box<dyn FnOnce() + Send + 'static> {
    // SAFETY: `dyn FnOnce() + Send` has the same layout regardless of its
    // lifetime bound; the latch discipline above prevents any use after
    // 'scope ends.
    unsafe { std::mem::transmute(task) }
}

/// Sleep/wake coordination: a generation counter bumped on every push and
/// every scope completion, so would-be sleepers can detect missed wakeups.
struct SleepState {
    epoch: u64,
    shutdown: bool,
}

/// State shared between the pool handle, its workers and active scopes.
struct Shared {
    /// Queue for tasks injected by threads that are not pool workers.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per background worker: owner pushes/pops the back, thieves
    /// steal from the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
}

impl Shared {
    /// Announces new work (or a completed latch) to sleeping threads.
    fn notify_all(&self) {
        let mut sleep = self.sleep.lock().expect("pool sleep lock poisoned");
        sleep.epoch = sleep.epoch.wrapping_add(1);
        drop(sleep);
        self.wakeup.notify_all();
    }

    /// Pops a task: the worker's own deque first (LIFO — most recently
    /// spawned, cache-warm), then the injector, then the other workers'
    /// deques (FIFO — the oldest, largest-granularity work).
    ///
    /// With `only_scope` set, only tasks belonging to that scope are taken
    /// (the *scope-local helping* rule — see the crate docs): this is what
    /// waiting threads use, so a thread blocked on a scope never executes a
    /// foreign task inside its own call stack. Background workers pass
    /// `None` and run anything.
    fn find_task(&self, worker: Option<usize>, only_scope: Option<usize>) -> Option<Task> {
        let matches = |task: &Task| only_scope.is_none_or(|scope| task.scope == scope);
        if let Some(index) = worker {
            let mut deque = self.deques[index].lock().expect("pool deque lock poisoned");
            if let Some(position) = deque.iter().rposition(&matches) {
                return deque.remove(position);
            }
        }
        {
            let mut injector = self.injector.lock().expect("pool injector lock poisoned");
            if let Some(position) = injector.iter().position(&matches) {
                return injector.remove(position);
            }
        }
        let start = worker.map_or(0, |index| index + 1);
        let n = self.deques.len();
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == worker {
                continue;
            }
            let mut deque = self.deques[victim]
                .lock()
                .expect("pool deque lock poisoned");
            if let Some(position) = deque.iter().position(&matches) {
                return deque.remove(position);
            }
        }
        None
    }

    /// Queues a task from the current thread: onto the worker's own deque
    /// when called from inside the pool, onto the injector otherwise.
    fn push(self: &Arc<Self>, task: Task) {
        match current_worker(self) {
            Some(index) => self.deques[index]
                .lock()
                .expect("pool deque lock poisoned")
                .push_back(task),
            None => self
                .injector
                .lock()
                .expect("pool injector lock poisoned")
                .push_back(task),
        }
        self.notify_all();
    }
}

thread_local! {
    /// `(pool identity, worker index)` for pool worker threads; the identity
    /// is the address of the pool's `Shared` allocation, so pools in tests
    /// never alias each other.
    static WORKER_INDEX: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// The calling thread's worker index within `shared`, if it is one of that
/// pool's background workers.
fn current_worker(shared: &Arc<Shared>) -> Option<usize> {
    WORKER_INDEX.with(|cell| match cell.get() {
        Some((pool, index)) if pool == Arc::as_ptr(shared) as usize => Some(index),
        _ => None,
    })
}

impl Shared {
    /// One round of the idle protocol shared by the worker loop and the
    /// scope-wait guard: execute one pending task if any, otherwise sleep
    /// until new work arrives — unless `stop` already holds. Returns `true`
    /// iff `stop` was observed (always under the sleep lock).
    ///
    /// The lost-wakeup argument: snapshot the epoch, *then* re-scan the
    /// queues, and go to sleep only if the epoch is still unchanged when the
    /// sleep lock is re-acquired. Every push bumps the epoch under that lock
    /// *after* inserting into a queue, so a task that the re-scan missed
    /// implies an epoch bump that either prevents the sleep or, if the
    /// pusher is still waiting on the mutex, delivers its `notify_all` once
    /// the sleeper is actually parked. The same holds for `stop` flips,
    /// which also bump the epoch (scope completion via
    /// [`Shared::notify_all`], shutdown in [`ThreadPool`]'s `Drop`).
    fn work_or_sleep(
        &self,
        worker: Option<usize>,
        only_scope: Option<usize>,
        stop: impl Fn(&SleepState) -> bool,
    ) -> bool {
        if let Some(task) = self.find_task(worker, only_scope) {
            (task.run)();
            return false;
        }
        let seen = {
            let sleep = self.sleep.lock().expect("pool sleep lock poisoned");
            if stop(&sleep) {
                return true;
            }
            sleep.epoch
        };
        if let Some(task) = self.find_task(worker, only_scope) {
            (task.run)();
            return false;
        }
        let sleep = self.sleep.lock().expect("pool sleep lock poisoned");
        if stop(&sleep) {
            return true;
        }
        if sleep.epoch == seen {
            let _unused = self.wakeup.wait(sleep).expect("pool sleep lock poisoned");
        }
        false
    }
}

/// The background-worker main loop: run tasks (via [`Shared::work_or_sleep`])
/// until shutdown.
fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER_INDEX.with(|cell| cell.set(Some((Arc::as_ptr(&shared) as usize, index))));
    while !shared.work_or_sleep(Some(index), None, |sleep| sleep.shutdown) {}
}

/// The completion latch and panic slot of one [`ThreadPool::scope`] call.
struct ScopeCore {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeCore {
    fn new() -> Arc<Self> {
        Arc::new(ScopeCore {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        })
    }

    /// Records the first panic observed among the scope's tasks.
    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic lock poisoned");
        slot.get_or_insert(payload);
    }
}

/// Handle through which tasks are spawned into an active scope; tasks may
/// borrow anything that outlives `'scope`.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    core: Arc<ScopeCore>,
    /// Invariant over `'scope` (mirrors `std::thread::Scope`), so the
    /// compiler cannot shrink task borrows to less than the scope's wait.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task into the pool. The task may borrow from the enclosing
    /// frame; it is guaranteed to finish before the enclosing
    /// [`ThreadPool::scope`] call returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.core.pending.fetch_add(1, Ordering::SeqCst);
        let scope_id = Arc::as_ptr(&self.core) as usize;
        let core = Arc::clone(&self.core);
        let shared = Arc::clone(&self.shared);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                core.store_panic(payload);
            }
            core.pending.fetch_sub(1, Ordering::SeqCst);
            shared.notify_all();
        });
        // SAFETY: the task was counted on `core.pending` above, and
        // `ThreadPool::scope` (or its drop guard, on panic) spins the pool
        // until `pending == 0` before 'scope can end.
        let erased = unsafe { erase_task_lifetime(wrapped) };
        self.shared.push(QueuedTask {
            run: erased,
            scope: scope_id,
        });
    }
}

/// Drop guard ensuring a scope drains even when the scope body panics:
/// spawned tasks still borrow the enclosing frame, so unwinding past them
/// without waiting would dangle.
struct ScopeWaitGuard<'pool> {
    shared: &'pool Arc<Shared>,
    core: &'pool Arc<ScopeCore>,
}

impl Drop for ScopeWaitGuard<'_> {
    fn drop(&mut self) {
        // Help with *this scope's* tasks instead of blocking (scope-local
        // helping: running arbitrary foreign tasks here would nest them
        // inside the waiter's call stack and pollute any timing the caller
        // wraps around its own work), via the shared lost-wakeup-free idle
        // protocol. The stop condition is the scope latch reaching zero;
        // its decrement bumps the epoch through `notify_all`, so a sleeper
        // can never miss it.
        let worker = current_worker(self.shared);
        let scope_id = Arc::as_ptr(self.core) as usize;
        while self.core.pending.load(Ordering::SeqCst) != 0 {
            self.shared.work_or_sleep(worker, Some(scope_id), |_| {
                self.core.pending.load(Ordering::SeqCst) == 0
            });
        }
    }
}

/// A work-stealing thread pool. See the crate docs for the execution model;
/// most callers want the process-wide [`global`] pool rather than their own.
pub struct ThreadPool {
    shared: Arc<Shared>,
    parallelism: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with the given total parallelism (clamped to at least
    /// 1): `parallelism − 1` background workers plus the calling thread
    /// whenever it blocks in [`ThreadPool::scope`] / [`ThreadPool::join`].
    pub fn new(parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        let workers = parallelism - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState {
                epoch: 0,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
        });
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("avcc-pool-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("failed to spawn pool worker");
        }
        ThreadPool {
            shared,
            parallelism,
        }
    }

    /// The pool's total parallelism (background workers + the participating
    /// caller). Kernels use this to pick chunk counts.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Runs `body` with a [`Scope`] handle, executes every task spawned into
    /// the scope, and returns `body`'s result once all of them (including
    /// nested spawns) have finished.
    ///
    /// The calling thread *participates*: while waiting it executes pending
    /// pool tasks, so nested scopes on pool workers make progress instead of
    /// deadlocking, and a 1-thread pool degenerates to inline execution.
    ///
    /// # Panics
    /// Re-throws the first panic raised by `body` or by any spawned task,
    /// after the scope has fully drained.
    pub fn scope<'scope, R>(&self, body: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let core = ScopeCore::new();
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            core: Arc::clone(&core),
            _marker: std::marker::PhantomData,
        };
        let result = {
            // The guard drains the scope even if `body` panics mid-spawn.
            let _wait = ScopeWaitGuard {
                shared: &self.shared,
                core: &core,
            };
            body(&scope)
        };
        if let Some(payload) = core.panic.lock().expect("scope panic lock poisoned").take() {
            resume_unwind(payload);
        }
        result
    }

    /// Runs `left` and `right` potentially in parallel and returns both
    /// results ( `right` runs on the calling thread; `left` is available for
    /// stealing).
    ///
    /// # Panics
    /// Re-throws a panic from either closure.
    pub fn join<RL, RR>(
        &self,
        left: impl FnOnce() -> RL + Send,
        right: impl FnOnce() -> RR + Send,
    ) -> (RL, RR)
    where
        RL: Send,
        RR: Send,
    {
        let mut left_result = None;
        let right_result = self.scope(|scope| {
            scope.spawn(|| left_result = Some(left()));
            right()
        });
        (
            left_result.expect("join: spawned side did not run"),
            right_result,
        )
    }

    /// Applies `task` to every range, in parallel on this pool, returning the
    /// results in range order. Single-range (and empty) inputs run inline
    /// with no queueing cost.
    pub fn map_ranges<R, F>(&self, ranges: Vec<Range<usize>>, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if self.parallelism <= 1 || ranges.len() <= 1 {
            return ranges.into_iter().map(task).collect();
        }
        let task = &task;
        let mut slots: Vec<Option<R>> = (0..ranges.len()).map(|_| None).collect();
        self.scope(|scope| {
            for (slot, range) in slots.iter_mut().zip(ranges) {
                scope.spawn(move || *slot = Some(task(range)));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("map_ranges task did not run"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut sleep = self.shared.sleep.lock().expect("pool sleep lock poisoned");
        sleep.shutdown = true;
        sleep.epoch = sleep.epoch.wrapping_add(1);
        drop(sleep);
        self.wakeup_all();
        // Workers exit at their next wakeup; detached join is fine here —
        // they hold only an Arc<Shared> and touch no external state.
    }
}

impl ThreadPool {
    fn wakeup_all(&self) {
        self.shared.wakeup.notify_all();
    }
}

/// Parallelism for the [`global`] pool: the `AVCC_THREADS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
fn configured_parallelism() -> usize {
    match std::env::var("AVCC_THREADS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "avcc-pool: ignoring invalid AVCC_THREADS={value:?} (want an integer >= 1)"
                );
                default_parallelism()
            }
        },
        Err(_) => default_parallelism(),
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool every kernel shares, created at first use. Its size
/// is decided once (`AVCC_THREADS` when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]); later changes to
/// `AVCC_THREADS` have no effect.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(configured_parallelism()))
}

/// [`ThreadPool::scope`] on the [`global`] pool.
pub fn scope<'scope, R>(body: impl FnOnce(&Scope<'scope>) -> R) -> R {
    global().scope(body)
}

/// [`ThreadPool::join`] on the [`global`] pool.
pub fn join<RL, RR>(left: impl FnOnce() -> RL + Send, right: impl FnOnce() -> RR + Send) -> (RL, RR)
where
    RL: Send,
    RR: Send,
{
    global().join(left, right)
}

/// [`ThreadPool::map_ranges`] on the [`global`] pool.
pub fn map_ranges<R, F>(ranges: Vec<Range<usize>>, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    global().map_ranges(ranges, task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
        if total == 0 || parts == 0 {
            return Vec::new();
        }
        let chunk = total.div_ceil(parts);
        (0..total)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(total))
            .collect()
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        for parallelism in [1, 2, 4, 8] {
            let pool = ThreadPool::new(parallelism);
            let counter = AtomicU64::new(0);
            pool.scope(|scope| {
                for _ in 0..100 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 100, "p = {parallelism}");
        }
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let mut partials = [0u64; 4];
        pool.scope(|scope| {
            for (slot, range) in partials.iter_mut().zip(ranges(data.len(), 4)) {
                let data = &data;
                scope.spawn(move || *slot = data[range].iter().sum());
            }
        });
        assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn map_ranges_preserves_order() {
        for parallelism in [1, 3, 8] {
            let pool = ThreadPool::new(parallelism);
            let out = pool.map_ranges(ranges(100, 7), |range| range.sum::<usize>());
            let expected: Vec<usize> = ranges(100, 7).into_iter().map(|r| r.sum()).collect();
            assert_eq!(out, expected, "p = {parallelism}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn nested_scopes_make_progress() {
        // More nested scopes than pool threads: only possible to finish if
        // waiting threads help execute queued tasks.
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let counter = &counter;
                let pool_ref = &pool;
                outer.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn deeply_nested_scopes_on_one_thread_run_inline() {
        let pool = ThreadPool::new(1);
        let mut log = Vec::new();
        pool.scope(|outer| {
            let log = &mut log;
            outer.spawn(move || {
                log.push("outer");
            });
        });
        pool.scope(|_| {});
        assert_eq!(log, vec!["outer"]);
    }

    #[test]
    fn scope_propagates_task_panics_after_draining() {
        let pool = ThreadPool::new(3);
        let completed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("task boom"));
                for _ in 0..20 {
                    scope.spawn(|| {
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // Sibling tasks were not abandoned by the panic.
        assert_eq!(completed.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn scope_body_panic_still_drains_spawned_tasks() {
        let pool = ThreadPool::new(3);
        let completed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for _ in 0..10 {
                    scope.spawn(|| {
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("body boom");
            });
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn global_pool_is_usable() {
        let total: usize = map_ranges(ranges(1000, 8), |range| range.len())
            .into_iter()
            .sum();
        assert_eq!(total, 1000);
        assert!(global().parallelism() >= 1);
    }

    #[test]
    fn waiters_only_help_with_their_own_scope() {
        // Scope-local helping, deterministically observable on a 1-thread
        // pool: while A1 waits on its inner scope, the injector also holds
        // A1's *sibling* A2. The inner wait must skip A2 (a foreign task —
        // running it would nest A2 inside A1's call stack and its timing)
        // and run only the inner task; A2 runs after A1 completes.
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|outer| {
            let order = &order;
            let pool_ref = &pool;
            outer.spawn(move || {
                order.lock().unwrap().push("a1-start");
                pool_ref.scope(|inner| {
                    inner.spawn(|| order.lock().unwrap().push("b"));
                });
                order.lock().unwrap().push("a1-end");
            });
            outer.spawn(move || order.lock().unwrap().push("a2"));
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["a1-start", "b", "a1-end", "a2"]
        );
    }

    #[test]
    fn pools_do_not_alias_worker_indices() {
        // A worker of pool A must not be treated as a worker of pool B: spawn
        // from inside A's scope onto B and make sure B still drains.
        let a = ThreadPool::new(2);
        let b = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        a.scope(|scope| {
            let b = &b;
            let counter = &counter;
            scope.spawn(move || {
                b.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
