//! The uncoded baseline (paper §V): no redundancy, no integrity protection.
//!
//! The data matrix is split into `K` raw blocks, one per participating worker
//! (the paper uses 9 of the 12 nodes). The master must wait for **every**
//! worker — a single straggler delays the whole round — and a Byzantine
//! worker's corrupted block flows straight into the reconstructed product,
//! which is what degrades the uncoded accuracy curves in Fig. 3.

use std::time::Instant;

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::{mat_vec, Matrix};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::executor::VirtualExecutor;
use rand::rngs::StdRng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, RoundExecution, SchemeFailure,
};

/// The uncoded distributed matrix–vector engine.
#[derive(Debug, Clone)]
pub struct UncodedMatVec<M: PrimeModulus> {
    blocks: Vec<Matrix<Fp<M>>>,
    block_rows: usize,
}

impl<M: PrimeModulus> UncodedMatVec<M> {
    /// Splits the full matrix into `partitions` raw row blocks.
    ///
    /// # Panics
    /// Panics if the row count is not divisible by `partitions`.
    pub fn new(matrix: &Matrix<Fp<M>>, partitions: usize) -> Self {
        let blocks = matrix.split_rows(partitions);
        let block_rows = blocks[0].rows();
        UncodedMatVec { blocks, block_rows }
    }

    /// The per-block row count.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for UncodedMatVec<M> {
    fn name(&self) -> &'static str {
        "uncoded"
    }

    fn workers(&self) -> usize {
        self.blocks.len()
    }

    fn execute(
        &mut self,
        input: &[Fp<M>],
        executor: &VirtualExecutor,
        byzantine: &ByzantineSpec,
        _rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let blocks = &self.blocks;
        let tasks: Vec<_> = blocks
            .iter()
            .map(|block| move || mat_vec(block, input))
            .collect();
        let outcomes = executor.run_round(
            tasks,
            |payload: &Vec<Fp<M>>| field_vector_bytes(payload.len()),
            |worker, payload: &mut Vec<Fp<M>>| byzantine.corrupt(worker, payload),
        );
        if outcomes.len() < self.blocks.len() {
            return Err(SchemeFailure::NotEnoughResults {
                available: outcomes.len(),
                required: self.blocks.len(),
            });
        }
        let observed_stragglers = detect_stragglers(&outcomes);
        // The master needs every result, so it pays for the slowest worker.
        let used: Vec<_> = outcomes.iter().collect();
        let mut costs = waiting_costs(
            &used,
            &executor.profile().network,
            field_vector_bytes(input.len()),
            self.blocks.len(),
        );

        // Reassembly (concatenation in block order) is the uncoded "decode";
        // it is nearly free but measured for completeness.
        let reassembly_start = Instant::now();
        let mut output = vec![Fp::<M>::ZERO; self.blocks.len() * self.block_rows];
        for outcome in &outcomes {
            let start = outcome.worker * self.block_rows;
            output[start..start + self.block_rows].copy_from_slice(&outcome.payload);
        }
        costs.decoding = reassembly_start.elapsed().as_secs_f64() * executor.time_scale;

        Ok(RoundExecution {
            output,
            costs,
            used_workers: outcomes.iter().map(|o| o.worker).collect(),
            detected_byzantine: Vec::new(),
            observed_stragglers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_sim::attack::AttackModel;
    use avcc_sim::cluster::ClusterProfile;
    use rand::SeedableRng;

    fn setup(rows: usize, cols: usize, partitions: usize) -> (Matrix<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
        let input = avcc_field::random_vector(&mut rng, cols);
        let _ = partitions;
        (matrix, input)
    }

    #[test]
    fn honest_round_reconstructs_the_product() {
        let (matrix, input) = setup(18, 5, 9);
        let expected = mat_vec(&matrix, &input);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 9);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(9)).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 9);
        assert!(round.detected_byzantine.is_empty());
    }

    #[test]
    fn byzantine_corruption_silently_pollutes_the_output() {
        let (matrix, input) = setup(12, 4, 6);
        let expected = mat_vec(&matrix, &input);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 6);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(6)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([2], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(3);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_ne!(round.output, expected, "corruption should reach the output");
        // The uncoded scheme has no way to notice.
        assert!(round.detected_byzantine.is_empty());
        // Untouched blocks are still correct.
        assert_eq!(round.output[..4], expected[..4]);
    }

    #[test]
    fn straggler_inflates_the_round_cost() {
        let (matrix, input) = setup(12, 4, 6);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let fast = VirtualExecutor::new(ClusterProfile::uniform(6)).with_time_scale(1.0);
        let slow = VirtualExecutor::new(ClusterProfile::uniform(6).with_stragglers(&[0], 200.0))
            .with_time_scale(1.0);
        let fast_costs = engine
            .execute(&input, &fast, &ByzantineSpec::none(), &mut rng)
            .unwrap()
            .costs;
        let slow_costs = engine
            .execute(&input, &slow, &ByzantineSpec::none(), &mut rng)
            .unwrap()
            .costs;
        assert!(slow_costs.compute > fast_costs.compute * 5.0);
    }
}
