//! The uncoded baseline (paper §V): no redundancy, no integrity protection.
//!
//! The data matrix is split into `K` raw blocks, one per participating worker
//! (the paper uses 9 of the 12 nodes). The master must wait for **every**
//! worker — a single straggler delays the whole round — and a Byzantine
//! worker's corrupted block flows straight into the reconstructed product,
//! which is what degrades the uncoded accuracy curves in Fig. 3.

use std::sync::Arc;
use std::time::Instant;

use avcc_coding::EncodedDataset;
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::OpCounts;
use rand::rngs::StdRng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, BatchExecution, BatchRoundTask,
    RoundExecution, RoundTask, SchemeFailure,
};

/// The uncoded distributed matrix–vector engine: a per-function session over
/// a shared raw-partitioned [`EncodedDataset`].
#[derive(Debug, Clone)]
pub struct UncodedMatVec<M: PrimeModulus> {
    dataset: Arc<EncodedDataset<M>>,
}

impl<M: PrimeModulus> UncodedMatVec<M> {
    /// Opens an uncoded session over an already-partitioned dataset.
    ///
    /// # Panics
    /// Panics if the dataset is coded (the uncoded baseline reassembles raw
    /// blocks by position; coded shares would decode to garbage).
    pub fn over(dataset: Arc<EncodedDataset<M>>) -> Self {
        assert!(
            !dataset.is_coded(),
            "the uncoded engine needs raw partitions; use EncodedDataset::partitioned"
        );
        UncodedMatVec { dataset }
    }

    /// Splits the full matrix into `partitions` raw row blocks — the
    /// single-function convenience wrapper around
    /// [`EncodedDataset::partitioned`] plus [`UncodedMatVec::over`].
    ///
    /// # Panics
    /// Panics if the row count is not divisible by `partitions`.
    pub fn new(matrix: &Matrix<Fp<M>>, partitions: usize) -> Self {
        Self::over(Arc::new(EncodedDataset::partitioned(matrix, partitions)))
    }

    /// The shared dataset this session dispatches against.
    pub fn dataset(&self) -> &Arc<EncodedDataset<M>> {
        &self.dataset
    }

    /// The per-block row count.
    pub fn block_rows(&self) -> usize {
        self.dataset.block_rows()
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for UncodedMatVec<M> {
    fn name(&self) -> &'static str {
        "uncoded"
    }

    fn workers(&self) -> usize {
        self.dataset.workers()
    }

    fn min_results(&self) -> usize {
        self.dataset.workers()
    }

    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>> {
        let input = Arc::new(input.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, block)| RoundTask::new(worker, Arc::clone(block), Arc::clone(&input)))
            .collect()
    }

    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        _rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let workers = self.dataset.workers();
        let block_rows = self.dataset.block_rows();
        if outcomes.len() < workers {
            return Err(SchemeFailure::NotEnoughResults {
                available: outcomes.len(),
                required: workers,
            });
        }
        let observed_stragglers = detect_stragglers(outcomes);
        // The master needs every result, so it pays for the slowest worker.
        let used: Vec<_> = outcomes.iter().collect();
        let mut costs = waiting_costs(&used, network, field_vector_bytes(input.len()), workers);

        // Reassembly (concatenation in block order) is the uncoded "decode";
        // it is nearly free but measured for completeness.
        let reassembly_start = Instant::now();
        let mut output = vec![Fp::<M>::ZERO; workers * block_rows];
        for outcome in outcomes {
            let start = outcome.worker * block_rows;
            output[start..start + block_rows].copy_from_slice(&outcome.payload);
        }
        costs.decoding = reassembly_start.elapsed().as_secs_f64() * time_scale;

        // No verification and no real decode: reassembly is data movement,
        // not multiply–accumulate work.
        let ops = OpCounts {
            worker_macs: (block_rows * input.len()) as u64,
            verify_macs: 0,
            decode_macs: 0,
        };
        Ok(RoundExecution {
            output,
            costs,
            ops,
            used_workers: outcomes.iter().map(|o| o.worker).collect(),
            detected_byzantine: Vec::new(),
            observed_stragglers,
            screened_workers: Vec::new(),
        })
    }

    fn dispatch_batch(&self, inputs: &[Vec<Fp<M>>]) -> Vec<BatchRoundTask<M>> {
        let inputs = Arc::new(inputs.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, block)| {
                BatchRoundTask::new(worker, Arc::clone(block), Arc::clone(&inputs))
            })
            .collect()
    }

    fn collect_batch(
        &mut self,
        inputs: &[Vec<Fp<M>>],
        outcomes: &[WorkerOutcome<Vec<Vec<Fp<M>>>>],
        network: &NetworkModel,
        time_scale: f64,
        _rng: &mut StdRng,
    ) -> Result<BatchExecution<M>, SchemeFailure> {
        assert!(!inputs.is_empty(), "batched round needs at least one input");
        let functions = inputs.len();
        let cols = inputs[0].len();
        let workers = self.dataset.workers();
        let block_rows = self.dataset.block_rows();
        if outcomes.len() < workers {
            return Err(SchemeFailure::NotEnoughResults {
                available: outcomes.len(),
                required: workers,
            });
        }
        let observed_stragglers = detect_stragglers(outcomes);
        let used: Vec<_> = outcomes.iter().collect();
        let mut costs = waiting_costs(
            &used,
            network,
            field_vector_bytes(functions * cols),
            workers,
        );

        let reassembly_start = Instant::now();
        let mut outputs = vec![vec![Fp::<M>::ZERO; workers * block_rows]; functions];
        for outcome in outcomes {
            let start = outcome.worker * block_rows;
            for (function, part) in outcome.payload.iter().enumerate() {
                outputs[function][start..start + block_rows].copy_from_slice(part);
            }
        }
        costs.decoding = reassembly_start.elapsed().as_secs_f64() * time_scale;

        let ops = OpCounts {
            worker_macs: (block_rows * functions * cols) as u64,
            verify_macs: 0,
            decode_macs: 0,
        };
        Ok(BatchExecution {
            outputs,
            costs,
            ops,
            used_workers: outcomes.iter().map(|o| o.worker).collect(),
            detected_byzantine: Vec::new(),
            observed_stragglers,
            screened_workers: Vec::new(),
            corrupted_functions: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_sim::attack::{AttackModel, ByzantineSpec};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::VirtualExecutor;
    use rand::SeedableRng;

    fn setup(rows: usize, cols: usize, partitions: usize) -> (Matrix<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
        let input = avcc_field::random_vector(&mut rng, cols);
        let _ = partitions;
        (matrix, input)
    }

    #[test]
    fn honest_round_reconstructs_the_product() {
        let (matrix, input) = setup(18, 5, 9);
        let expected = mat_vec(&matrix, &input);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 9);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(9)).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 9);
        assert!(round.detected_byzantine.is_empty());
    }

    #[test]
    fn byzantine_corruption_silently_pollutes_the_output() {
        let (matrix, input) = setup(12, 4, 6);
        let expected = mat_vec(&matrix, &input);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 6);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(6)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([2], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(3);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_ne!(round.output, expected, "corruption should reach the output");
        // The uncoded scheme has no way to notice.
        assert!(round.detected_byzantine.is_empty());
        // Untouched blocks are still correct.
        assert_eq!(round.output[..4], expected[..4]);
    }

    #[test]
    fn straggler_inflates_the_round_cost() {
        let (matrix, input) = setup(12, 4, 6);
        let mut engine = UncodedMatVec::<P25>::new(&matrix, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let fast = VirtualExecutor::new(ClusterProfile::uniform(6)).with_time_scale(1.0);
        let slow = VirtualExecutor::new(ClusterProfile::uniform(6).with_stragglers(&[0], 200.0))
            .with_time_scale(1.0);
        // Wall-clock-derived virtual costs are noisy under parallel test
        // load; take the fastest of a few unloaded runs as the baseline (a
        // scheduling blip can only inflate a measurement, never deflate it)
        // against the x200 straggler's round.
        let fast_compute = (0..3)
            .map(|_| {
                engine
                    .execute(&input, &fast, &ByzantineSpec::none(), &mut rng)
                    .unwrap()
                    .costs
                    .compute
            })
            .fold(f64::INFINITY, f64::min);
        let slow_costs = engine
            .execute(&input, &slow, &ByzantineSpec::none(), &mut rng)
            .unwrap()
            .costs;
        assert!(slow_costs.compute > fast_compute * 5.0);
    }
}
