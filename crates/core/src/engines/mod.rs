//! The per-scheme execution engines.
//!
//! Each engine owns the data it distributed to its workers (raw blocks for the
//! uncoded scheme, coded shares for LCC/AVCC) plus whatever master-side state
//! the scheme needs (a Reed–Solomon decoder for LCC, Freivalds keys for AVCC)
//! and knows how to run one distributed matrix–vector round end to end.
//!
//! Since PR6 the round is split into the master's two halves so a scheduler
//! can interleave rounds from many jobs on one fleet:
//!
//! 1. [`MatVecEngine::dispatch`] — encode-side: build one [`RoundTask`] per
//!    worker (cheap `Arc` handles onto the engine's shares plus the broadcast
//!    input).
//! 2. *compute* — somebody runs the tasks: the serial [`VirtualExecutor`]
//!    inside [`MatVecEngine::execute`], or a multi-job fleet scheduler on
//!    real threads.
//! 3. [`MatVecEngine::collect`] — decode-side: given the arrival-ordered
//!    outcomes, establish integrity (Freivalds for AVCC, error decoding for
//!    LCC), reconstruct the product and account the round's costs.
//!
//! [`MatVecEngine::execute`] is a provided method gluing the three together
//! on a `VirtualExecutor`; every experiment continues to go through it, and
//! the split is bit-transparent to them.

use avcc_field::{Fp, PrimeModulus};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::{VirtualExecutor, WorkerOutcome};
use rand::rngs::StdRng;

use crate::rounds::{field_vector_bytes, RoundExecution, RoundTask, SchemeFailure};

pub mod avcc;
pub mod lcc;
pub mod uncoded;

pub use avcc::AvccMatVec;
pub use lcc::LccMatVec;
pub use uncoded::UncodedMatVec;

/// A distributed matrix–vector engine: one per (scheme, matrix) pair.
///
/// The training driver holds two engines per scheme — one for round 1
/// (`X`, row-partitioned) and one for round 2 (`Xᵀ`, row-partitioned) — and
/// calls [`MatVecEngine::execute`] with the quantized weight vector and the
/// quantized error vector respectively. A serving scheduler instead calls
/// [`MatVecEngine::dispatch`] / [`MatVecEngine::collect`] around its own
/// fleet execution.
pub trait MatVecEngine<M: PrimeModulus> {
    /// Human-readable scheme name (for reports).
    fn name(&self) -> &'static str;

    /// The number of workers this engine dispatches to. The executor's
    /// cluster profile must have exactly this many workers.
    fn workers(&self) -> usize;

    /// The minimum number of arrived results [`MatVecEngine::collect`] needs
    /// before it can possibly succeed: the recovery threshold for AVCC, the
    /// designed wait count for LCC, all workers for the uncoded scheme.
    ///
    /// `collect` may still fail with that many results (e.g. a Byzantine
    /// payload among an exactly-threshold AVCC prefix); callers that stream
    /// arrivals should retry with more results until all
    /// [`MatVecEngine::workers`] have arrived.
    fn min_results(&self) -> usize;

    /// Builds the round's worker tasks for the given broadcast input, one per
    /// worker, in worker order.
    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>>;

    /// Reconstructs the round from arrival-ordered worker `outcomes` of the
    /// tasks built by [`MatVecEngine::dispatch`] for the same `input`.
    ///
    /// `network` and `time_scale` feed the cost model (broadcast cost and
    /// master-side work scaling). On `Err` the engine's state is unchanged, so
    /// the call may be retried with more outcomes.
    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure>;

    /// Runs one distributed matrix–vector product of the engine's matrix with
    /// `input`, under the given cluster and attack conditions: dispatch, run
    /// every task on the serial virtual executor, collect.
    fn execute(
        &mut self,
        input: &[Fp<M>],
        executor: &VirtualExecutor,
        byzantine: &ByzantineSpec,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let jobs: Vec<_> = self
            .dispatch(input)
            .into_iter()
            .map(|task| move || task.run())
            .collect();
        let outcomes = executor.run_round(
            jobs,
            |payload: &Vec<Fp<M>>| field_vector_bytes(payload.len()),
            |worker, payload: &mut Vec<Fp<M>>| byzantine.corrupt(worker, payload),
        );
        self.collect(
            input,
            &outcomes,
            &executor.profile().network,
            executor.time_scale,
            rng,
        )
    }
}
