//! The per-scheme execution engines.
//!
//! Each engine owns the data it distributed to its workers (raw blocks for the
//! uncoded scheme, coded shares for LCC/AVCC) plus whatever master-side state
//! the scheme needs (a Reed–Solomon decoder for LCC, Freivalds keys for AVCC)
//! and knows how to run one distributed matrix–vector round end to end.
//!
//! Since PR6 the round is split into the master's two halves so a scheduler
//! can interleave rounds from many jobs on one fleet:
//!
//! 1. [`MatVecEngine::dispatch`] — encode-side: build one [`RoundTask`] per
//!    worker (cheap `Arc` handles onto the engine's shares plus the broadcast
//!    input).
//! 2. *compute* — somebody runs the tasks: the serial [`VirtualExecutor`]
//!    inside [`MatVecEngine::execute`], or a multi-job fleet scheduler on
//!    real threads.
//! 3. [`MatVecEngine::collect`] — decode-side: given the arrival-ordered
//!    outcomes, establish integrity (Freivalds for AVCC, error decoding for
//!    LCC), reconstruct the product and account the round's costs.
//!
//! [`MatVecEngine::execute`] is a provided method gluing the three together
//! on a `VirtualExecutor`; every experiment continues to go through it, and
//! the split is bit-transparent to them.
//!
//! Since PR7 the engines are lightweight *sessions* over a shared
//! [`avcc_coding::EncodedDataset`]: the `::over` constructors take an
//! `Arc`'d dataset encoded once, and a second, batched round shape —
//! [`MatVecEngine::dispatch_batch`] / [`MatVecEngine::collect_batch`] —
//! carries `m` input vectors per worker task so `m` matrix–vector products
//! amortize one encode (and, for AVCC, one batched Freivalds pass). The
//! original `::new` constructors remain as thin wrappers that build a private
//! dataset, so existing experiments are untouched.

use avcc_field::{Fp, PrimeModulus};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::{VirtualExecutor, WorkerOutcome};
use rand::rngs::StdRng;

use crate::rounds::{
    field_vector_bytes, BatchExecution, BatchRoundTask, RoundExecution, RoundTask, SchemeFailure,
};

pub mod avcc;
pub mod lcc;
pub mod uncoded;

pub use avcc::AvccMatVec;
pub use lcc::LccMatVec;
pub use uncoded::UncodedMatVec;

/// A distributed matrix–vector engine: one per (scheme, matrix) pair.
///
/// The training driver holds two engines per scheme — one for round 1
/// (`X`, row-partitioned) and one for round 2 (`Xᵀ`, row-partitioned) — and
/// calls [`MatVecEngine::execute`] with the quantized weight vector and the
/// quantized error vector respectively. A serving scheduler instead calls
/// [`MatVecEngine::dispatch`] / [`MatVecEngine::collect`] around its own
/// fleet execution.
pub trait MatVecEngine<M: PrimeModulus> {
    /// Human-readable scheme name (for reports).
    fn name(&self) -> &'static str;

    /// The number of workers this engine dispatches to. The executor's
    /// cluster profile must have exactly this many workers.
    fn workers(&self) -> usize;

    /// The minimum number of arrived results [`MatVecEngine::collect`] needs
    /// before it can possibly succeed: the recovery threshold for AVCC, the
    /// designed wait count for LCC, all workers for the uncoded scheme.
    ///
    /// `collect` may still fail with that many results (e.g. a Byzantine
    /// payload among an exactly-threshold AVCC prefix); callers that stream
    /// arrivals should retry with more results until all
    /// [`MatVecEngine::workers`] have arrived.
    fn min_results(&self) -> usize;

    /// Builds the round's worker tasks for the given broadcast input, one per
    /// worker, in worker order.
    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>>;

    /// Reconstructs the round from arrival-ordered worker `outcomes` of the
    /// tasks built by [`MatVecEngine::dispatch`] for the same `input`.
    ///
    /// `network` and `time_scale` feed the cost model (broadcast cost and
    /// master-side work scaling). On `Err` the engine's state is unchanged, so
    /// the call may be retried with more outcomes.
    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure>;

    /// Builds the batched round's worker tasks for `m` broadcast inputs, one
    /// task per worker (each carrying all `m` inputs), in worker order.
    fn dispatch_batch(&self, inputs: &[Vec<Fp<M>>]) -> Vec<BatchRoundTask<M>>;

    /// Reconstructs a batched round from arrival-ordered worker `outcomes` of
    /// the tasks built by [`MatVecEngine::dispatch_batch`] for the same
    /// `inputs`: `m` products over one dispatch, one wait, and (for AVCC) one
    /// batched Freivalds pass per arrival with per-function fallback.
    ///
    /// The outputs are bit-identical to `m` independent
    /// [`MatVecEngine::collect`] rounds over the same dataset — all decode
    /// paths are exact over the field. On `Err` the engine's state is
    /// unchanged, so the call may be retried with more outcomes.
    fn collect_batch(
        &mut self,
        inputs: &[Vec<Fp<M>>],
        outcomes: &[WorkerOutcome<Vec<Vec<Fp<M>>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<BatchExecution<M>, SchemeFailure>;

    /// `(hits, misses)` of the engine's shared decoder basis cache — `(0, 0)`
    /// for engines with nothing to decode. Counters are cumulative over the
    /// dataset's lifetime and shared with every other session over the same
    /// [`avcc_coding::EncodedDataset`].
    fn decode_cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Runs one distributed matrix–vector product of the engine's matrix with
    /// `input`, under the given cluster and attack conditions: dispatch, run
    /// every task on the serial virtual executor, collect.
    fn execute(
        &mut self,
        input: &[Fp<M>],
        executor: &VirtualExecutor,
        byzantine: &ByzantineSpec,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let jobs: Vec<_> = self
            .dispatch(input)
            .into_iter()
            .map(|task| move || task.run())
            .collect();
        let outcomes = executor.run_round(
            jobs,
            |payload: &Vec<Fp<M>>| field_vector_bytes(payload.len()),
            |worker, payload: &mut Vec<Fp<M>>| byzantine.corrupt(worker, payload),
        );
        self.collect(
            input,
            &outcomes,
            &executor.profile().network,
            executor.time_scale,
            rng,
        )
    }

    /// Runs one *batched* round — `m` products of the engine's matrix with
    /// `inputs` — on the serial virtual executor: dispatch-batch, run, collect.
    /// Byzantine workers corrupt every function of their payload (a corrupted
    /// node does not selectively spare sub-results).
    fn execute_batch(
        &mut self,
        inputs: &[Vec<Fp<M>>],
        executor: &VirtualExecutor,
        byzantine: &ByzantineSpec,
        rng: &mut StdRng,
    ) -> Result<BatchExecution<M>, SchemeFailure> {
        let jobs: Vec<_> = self
            .dispatch_batch(inputs)
            .into_iter()
            .map(|task| move || task.run())
            .collect();
        let outcomes = executor.run_round(
            jobs,
            |payload: &Vec<Vec<Fp<M>>>| {
                field_vector_bytes(payload.iter().map(Vec::len).sum::<usize>())
            },
            |worker, payload: &mut Vec<Vec<Fp<M>>>| {
                let mut any = false;
                for part in payload.iter_mut() {
                    any |= byzantine.corrupt(worker, part);
                }
                any
            },
        );
        self.collect_batch(
            inputs,
            &outcomes,
            &executor.profile().network,
            executor.time_scale,
            rng,
        )
    }
}
