//! The per-scheme execution engines.
//!
//! Each engine owns the data it distributed to its workers (raw blocks for the
//! uncoded scheme, coded shares for LCC/AVCC) plus whatever master-side state
//! the scheme needs (a Reed–Solomon decoder for LCC, Freivalds keys for AVCC)
//! and knows how to run one distributed matrix–vector round end to end:
//! dispatch tasks to the cluster executor, apply the Byzantine attack, wait
//! for the scheme-specific number of results, establish integrity and decode.

use avcc_field::{Fp, PrimeModulus};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::executor::VirtualExecutor;
use rand::rngs::StdRng;

use crate::rounds::{RoundExecution, SchemeFailure};

pub mod avcc;
pub mod lcc;
pub mod uncoded;

pub use avcc::AvccMatVec;
pub use lcc::LccMatVec;
pub use uncoded::UncodedMatVec;

/// A distributed matrix–vector engine: one per (scheme, matrix) pair.
///
/// The training driver holds two engines per scheme — one for round 1
/// (`X`, row-partitioned) and one for round 2 (`Xᵀ`, row-partitioned) — and
/// calls [`MatVecEngine::execute`] with the quantized weight vector and the
/// quantized error vector respectively.
pub trait MatVecEngine<M: PrimeModulus> {
    /// Human-readable scheme name (for reports).
    fn name(&self) -> &'static str;

    /// The number of workers this engine dispatches to. The executor's
    /// cluster profile must have exactly this many workers.
    fn workers(&self) -> usize;

    /// Runs one distributed matrix–vector product of the engine's matrix with
    /// `input`, under the given cluster and attack conditions.
    fn execute(
        &mut self,
        input: &[Fp<M>],
        executor: &VirtualExecutor,
        byzantine: &ByzantineSpec,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure>;
}
