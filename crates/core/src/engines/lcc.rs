//! The LCC baseline engine (paper §II-A and the evaluation's main comparator).
//!
//! The data is Lagrange/MDS encoded over all `N` workers. The master has to
//! wait for the first `N − S` results before it can do anything — Byzantine
//! workers are only identified *during* Reed–Solomon error decoding, which is
//! why LCC cannot start processing early and why each Byzantine worker costs
//! two extra workers (eq. 1).
//!
//! When the actual number of corrupted results exceeds the designed `M`, real
//! LCC decoders produce an incorrect reconstruction; this engine reproduces
//! that behaviour by falling back to an erasure decode over the (possibly
//! corrupted) fastest results, which is what degrades the LCC accuracy curves
//! in Fig. 3(b)/(d).

use std::sync::Arc;
use std::time::Instant;

use avcc_coding::decoder::DecodeError;
use avcc_coding::{LagrangeDecoder, LagrangeEncoder, SchemeConfig};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::OpCounts;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, RoundExecution, RoundTask, SchemeFailure,
};

/// The LCC distributed matrix–vector engine.
#[derive(Debug, Clone)]
pub struct LccMatVec<M: PrimeModulus> {
    config: SchemeConfig,
    shares: Vec<Arc<Matrix<Fp<M>>>>,
    decoder: LagrangeDecoder<M>,
    block_rows: usize,
}

impl<M: PrimeModulus> LccMatVec<M> {
    /// Encodes the matrix for the given scheme configuration.
    ///
    /// # Panics
    /// Panics if the matrix rows are not divisible by `config.partitions`.
    pub fn new<R: Rng + ?Sized>(matrix: &Matrix<Fp<M>>, config: SchemeConfig, rng: &mut R) -> Self {
        let blocks = matrix.split_rows(config.partitions);
        let block_rows = blocks[0].rows();
        let encoder = LagrangeEncoder::<M>::new(config);
        let shares = if config.colluding == 0 {
            encoder.encode_deterministic(&blocks)
        } else {
            encoder.encode(&blocks, rng)
        };
        LccMatVec {
            config,
            shares: shares.into_iter().map(|s| Arc::new(s.block)).collect(),
            decoder: LagrangeDecoder::new(config),
            block_rows,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Total size of the encoded data shipped to the workers, in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.shares.iter().map(|s| s.len() * 8).sum()
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for LccMatVec<M> {
    fn name(&self) -> &'static str {
        "lcc"
    }

    fn workers(&self) -> usize {
        self.config.workers
    }

    fn min_results(&self) -> usize {
        self.config.lcc_wait_count()
    }

    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>> {
        let input = Arc::new(input.to_vec());
        self.shares
            .iter()
            .enumerate()
            .map(|(worker, share)| RoundTask::new(worker, Arc::clone(share), Arc::clone(&input)))
            .collect()
    }

    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let observed_stragglers = detect_stragglers(outcomes);

        // LCC can only start decoding once N - S results are in.
        let wait_count = self.config.lcc_wait_count().min(outcomes.len());
        let threshold = self.config.recovery_threshold();
        if wait_count < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: wait_count,
                required: threshold,
            });
        }
        let used: Vec<_> = outcomes[..wait_count].iter().collect();
        let mut costs = waiting_costs(
            &used,
            network,
            field_vector_bytes(input.len()),
            self.config.workers,
        );

        let results: Vec<(usize, Vec<Fp<M>>)> =
            used.iter().map(|o| (o.worker, o.payload.clone())).collect();
        let decode_start = Instant::now();
        let decoded = self
            .decoder
            .decode_with_errors(&results, self.config.byzantine, rng);
        let (blocks, detected) = match decoded {
            Ok(outcome) => outcome,
            Err(DecodeError::TooManyErrors) => {
                // Beyond the designed correction capability: a real decoder
                // emits an incorrect reconstruction. Erasure-decode the fastest
                // threshold results, corrupted or not.
                let fallback = self
                    .decoder
                    .decode_erasure(&results[..threshold])
                    .map_err(|e| SchemeFailure::DecodeFailed {
                        details: e.to_string(),
                    })?;
                (fallback, Vec::new())
            }
            Err(other) => {
                return Err(SchemeFailure::DecodeFailed {
                    details: other.to_string(),
                })
            }
        };
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        let mut output = Vec::with_capacity(self.config.partitions * self.block_rows);
        for block in blocks {
            output.extend(block);
        }
        // Reed–Solomon error decoding interpolates through all `wait_count`
        // results (the syndrome/locator work is the extra `wait_count²` term
        // LCC pays over an erasure decode).
        let ops = OpCounts {
            worker_macs: (self.block_rows * input.len()) as u64,
            verify_macs: 0,
            decode_macs: (self.block_rows * wait_count * self.config.partitions
                + wait_count * wait_count) as u64,
        };
        Ok(RoundExecution {
            output,
            costs,
            ops,
            used_workers: used.iter().map(|o| o.worker).collect(),
            detected_byzantine: detected,
            observed_stragglers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_sim::attack::{AttackModel, ByzantineSpec};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::VirtualExecutor;
    use rand::SeedableRng;

    fn setup() -> (Matrix<F25>, Vec<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(18, 6, avcc_field::random_matrix(&mut rng, 18, 6));
        let input = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        (matrix, input, expected)
    }

    #[test]
    fn clean_round_decodes_from_fastest_results() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 11); // N - S
        assert!(round.detected_byzantine.is_empty());
    }

    #[test]
    fn single_byzantine_worker_is_corrected_and_identified() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        // Pin the dropped straggler to worker 11: under wall-clock noise any
        // uniform worker can be the slowest, and if the Byzantine worker were
        // dropped there would be nothing left to detect.
        let profile = ClusterProfile::uniform(12).with_stragglers(&[11], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([5], AttackModel::reverse());
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![5]);
    }

    #[test]
    fn byzantine_workers_beyond_the_design_corrupt_the_output() {
        let (matrix, input, expected) = setup();
        // Designed for M = 1 only; corrupt four workers. Which workers the
        // engine excludes depends on wall-clock noise (one observed straggler
        // plus the two slowest of the fallback erasure subset), so corrupting
        // more workers than can ever be excluded keeps at least one corrupted
        // result in every decode regardless of timing.
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([2, 5, 7, 9], AttackModel::constant());
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_ne!(round.output, expected, "LCC beyond capability should err");
    }

    #[test]
    fn straggler_is_not_waited_for() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[3], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert!(
            !round.used_workers.contains(&3),
            "straggler should be excluded"
        );
        assert!(round.observed_stragglers.contains(&3));
    }

    #[test]
    fn encoded_bytes_accounts_all_shares() {
        let (matrix, _, _) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        assert_eq!(engine.encoded_bytes(), 12 * 2 * 6 * 8);
    }
}
