//! The LCC baseline engine (paper §II-A and the evaluation's main comparator).
//!
//! The data is Lagrange/MDS encoded over all `N` workers. The master has to
//! wait for the first `N − S` results before it can do anything — Byzantine
//! workers are only identified *during* Reed–Solomon error decoding, which is
//! why LCC cannot start processing early and why each Byzantine worker costs
//! two extra workers (eq. 1).
//!
//! When the actual number of corrupted results exceeds the designed `M`, real
//! LCC decoders produce an incorrect reconstruction; this engine reproduces
//! that behaviour by falling back to an erasure decode over the (possibly
//! corrupted) fastest results, which is what degrades the LCC accuracy curves
//! in Fig. 3(b)/(d).

use std::sync::Arc;
use std::time::Instant;

use avcc_coding::decoder::DecodeError;
use avcc_coding::{EncodedDataset, SchemeConfig};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::OpCounts;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, BatchExecution, BatchRoundTask,
    RoundExecution, RoundTask, SchemeFailure,
};

/// The LCC distributed matrix–vector engine: a per-function session over a
/// shared [`EncodedDataset`].
#[derive(Debug, Clone)]
pub struct LccMatVec<M: PrimeModulus> {
    dataset: Arc<EncodedDataset<M>>,
}

impl<M: PrimeModulus> LccMatVec<M> {
    /// Opens an LCC session over an already-encoded dataset; the encode was
    /// paid once when the dataset was built and is shared with every other
    /// session over the same `Arc`.
    ///
    /// # Panics
    /// Panics if the dataset is not Lagrange-coded.
    pub fn over(dataset: Arc<EncodedDataset<M>>) -> Self {
        assert!(
            dataset.is_coded(),
            "LCC requires a Lagrange-coded dataset; use EncodedDataset::encode"
        );
        LccMatVec { dataset }
    }

    /// Encodes the matrix for the given scheme configuration — the
    /// single-function convenience wrapper around [`EncodedDataset::encode`]
    /// plus [`LccMatVec::over`]. Rows not divisible by `config.partitions`
    /// are zero-padded and the decoded output trimmed back.
    pub fn new<R: Rng + ?Sized>(matrix: &Matrix<Fp<M>>, config: SchemeConfig, rng: &mut R) -> Self {
        Self::over(Arc::new(EncodedDataset::encode(matrix, config, rng)))
    }

    /// The shared encoded dataset this session dispatches against.
    pub fn dataset(&self) -> &Arc<EncodedDataset<M>> {
        &self.dataset
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        self.dataset.scheme().expect("LCC dataset is coded")
    }

    /// Total size of the encoded data shipped to the workers, in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.dataset.encoded_bytes()
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for LccMatVec<M> {
    fn name(&self) -> &'static str {
        "lcc"
    }

    fn workers(&self) -> usize {
        self.dataset.workers()
    }

    fn min_results(&self) -> usize {
        self.config().lcc_wait_count()
    }

    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>> {
        let input = Arc::new(input.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, share)| RoundTask::new(worker, Arc::clone(share), Arc::clone(&input)))
            .collect()
    }

    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let observed_stragglers = detect_stragglers(outcomes);
        let config = *self.config();
        let block_rows = self.dataset.block_rows();

        // LCC can only start decoding once N - S results are in.
        let wait_count = config.lcc_wait_count().min(outcomes.len());
        let threshold = config.recovery_threshold();
        if wait_count < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: wait_count,
                required: threshold,
            });
        }
        let used: Vec<_> = outcomes[..wait_count].iter().collect();
        let mut costs = waiting_costs(
            &used,
            network,
            field_vector_bytes(input.len()),
            config.workers,
        );

        let results: Vec<(usize, Vec<Fp<M>>)> =
            used.iter().map(|o| (o.worker, o.payload.clone())).collect();
        let decoder = self.dataset.decoder().expect("LCC dataset is coded");
        let decode_start = Instant::now();
        let decoded = decoder.decode_with_errors(&results, config.byzantine, rng);
        let (blocks, detected) = match decoded {
            Ok(outcome) => outcome,
            Err(DecodeError::TooManyErrors) => {
                // Beyond the designed correction capability: a real decoder
                // emits an incorrect reconstruction. Erasure-decode the fastest
                // threshold results, corrupted or not.
                let fallback = decoder.decode_erasure(&results[..threshold]).map_err(|e| {
                    SchemeFailure::DecodeFailed {
                        details: e.to_string(),
                    }
                })?;
                (fallback, Vec::new())
            }
            Err(other) => {
                return Err(SchemeFailure::DecodeFailed {
                    details: other.to_string(),
                })
            }
        };
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        let mut output = Vec::with_capacity(config.partitions * block_rows);
        for block in blocks {
            output.extend(block);
        }
        output.truncate(self.dataset.output_rows());
        // Reed–Solomon error decoding interpolates through all `wait_count`
        // results (the syndrome/locator work is the extra `wait_count²` term
        // LCC pays over an erasure decode).
        let ops = OpCounts {
            worker_macs: (block_rows * input.len()) as u64,
            verify_macs: 0,
            decode_macs: (block_rows * wait_count * config.partitions + wait_count * wait_count)
                as u64,
        };
        Ok(RoundExecution {
            output,
            costs,
            ops,
            used_workers: used.iter().map(|o| o.worker).collect(),
            detected_byzantine: detected,
            observed_stragglers,
            // LCC has no pre-decode screen: Byzantine workers surface through
            // error decoding, not screening.
            screened_workers: Vec::new(),
        })
    }

    fn dispatch_batch(&self, inputs: &[Vec<Fp<M>>]) -> Vec<BatchRoundTask<M>> {
        let inputs = Arc::new(inputs.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, share)| {
                BatchRoundTask::new(worker, Arc::clone(share), Arc::clone(&inputs))
            })
            .collect()
    }

    fn collect_batch(
        &mut self,
        inputs: &[Vec<Fp<M>>],
        outcomes: &[WorkerOutcome<Vec<Vec<Fp<M>>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<BatchExecution<M>, SchemeFailure> {
        assert!(!inputs.is_empty(), "batched round needs at least one input");
        let functions = inputs.len();
        let cols = inputs[0].len();
        let observed_stragglers = detect_stragglers(outcomes);
        let config = *self.config();
        let block_rows = self.dataset.block_rows();

        let wait_count = config.lcc_wait_count().min(outcomes.len());
        let threshold = config.recovery_threshold();
        if wait_count < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: wait_count,
                required: threshold,
            });
        }
        let used: Vec<_> = outcomes[..wait_count].iter().collect();
        let mut costs = waiting_costs(
            &used,
            network,
            field_vector_bytes(functions * cols),
            config.workers,
        );

        // LCC has no per-arrival check to batch: each function is error-
        // decoded independently (Byzantine identification is a decode-side
        // by-product), with detections unioned across the batch.
        let decoder = self.dataset.decoder().expect("LCC dataset is coded");
        let decode_start = Instant::now();
        let mut outputs = Vec::with_capacity(functions);
        let mut detected_byzantine: Vec<usize> = Vec::new();
        for function in 0..functions {
            let results: Vec<(usize, Vec<Fp<M>>)> = used
                .iter()
                .map(|o| (o.worker, o.payload[function].clone()))
                .collect();
            let decoded = decoder.decode_with_errors(&results, config.byzantine, rng);
            let (blocks, detected) = match decoded {
                Ok(outcome) => outcome,
                Err(DecodeError::TooManyErrors) => {
                    let fallback = decoder.decode_erasure(&results[..threshold]).map_err(|e| {
                        SchemeFailure::DecodeFailed {
                            details: e.to_string(),
                        }
                    })?;
                    (fallback, Vec::new())
                }
                Err(other) => {
                    return Err(SchemeFailure::DecodeFailed {
                        details: other.to_string(),
                    })
                }
            };
            for worker in detected {
                if !detected_byzantine.contains(&worker) {
                    detected_byzantine.push(worker);
                }
            }
            let mut output = Vec::with_capacity(config.partitions * block_rows);
            for block in blocks {
                output.extend(block);
            }
            output.truncate(self.dataset.output_rows());
            outputs.push(output);
        }
        detected_byzantine.sort_unstable();
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        let ops = OpCounts {
            worker_macs: (block_rows * functions * cols) as u64,
            verify_macs: 0,
            decode_macs: (functions
                * (block_rows * wait_count * config.partitions + wait_count * wait_count))
                as u64,
        };
        Ok(BatchExecution {
            outputs,
            costs,
            ops,
            used_workers: used.iter().map(|o| o.worker).collect(),
            detected_byzantine,
            observed_stragglers,
            screened_workers: Vec::new(),
            // LCC decoding identifies workers, not functions: localization is
            // a verification-side capability AVCC adds.
            corrupted_functions: Vec::new(),
        })
    }

    fn decode_cache_stats(&self) -> (u64, u64) {
        self.dataset.basis_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_sim::attack::{AttackModel, ByzantineSpec};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::VirtualExecutor;
    use rand::SeedableRng;

    fn setup() -> (Matrix<F25>, Vec<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(18, 6, avcc_field::random_matrix(&mut rng, 18, 6));
        let input = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        (matrix, input, expected)
    }

    #[test]
    fn clean_round_decodes_from_fastest_results() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 11); // N - S
        assert!(round.detected_byzantine.is_empty());
    }

    #[test]
    fn single_byzantine_worker_is_corrected_and_identified() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        // Pin the dropped straggler to worker 11: under wall-clock noise any
        // uniform worker can be the slowest, and if the Byzantine worker were
        // dropped there would be nothing left to detect.
        let profile = ClusterProfile::uniform(12).with_stragglers(&[11], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([5], AttackModel::reverse());
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![5]);
    }

    #[test]
    fn byzantine_workers_beyond_the_design_corrupt_the_output() {
        let (matrix, input, expected) = setup();
        // Designed for M = 1 only; corrupt four workers. Which workers the
        // engine excludes depends on wall-clock noise (one observed straggler
        // plus the two slowest of the fallback erasure subset), so corrupting
        // more workers than can ever be excluded keeps at least one corrupted
        // result in every decode regardless of timing.
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([2, 5, 7, 9], AttackModel::constant());
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_ne!(round.output, expected, "LCC beyond capability should err");
    }

    #[test]
    fn straggler_is_not_waited_for() {
        let (matrix, input, expected) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[3], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert!(
            !round.used_workers.contains(&3),
            "straggler should be excluded"
        );
        assert!(round.observed_stragglers.contains(&3));
    }

    #[test]
    fn encoded_bytes_accounts_all_shares() {
        let (matrix, _, _) = setup();
        let config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let engine = LccMatVec::<P25>::new(&matrix, config, &mut rng);
        assert_eq!(engine.encoded_bytes(), 12 * 2 * 6 * 8);
    }
}
