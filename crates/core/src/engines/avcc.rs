//! The AVCC engine (paper §IV): coded computing for stragglers and privacy,
//! Freivalds verification for Byzantine workers.
//!
//! The data is Lagrange/MDS encoded exactly as for LCC, but the master holds a
//! per-worker Freivalds key and verifies each result *the moment it arrives*.
//! Results that fail verification are discarded (their workers are reported as
//! detected Byzantine); decoding starts as soon as the recovery threshold of
//! *verified* results is available, so a Byzantine worker costs exactly one
//! extra wait — the same as a straggler — instead of LCC's two (eq. 2 vs
//! eq. 1).

use std::sync::Arc;
use std::time::Instant;

use avcc_coding::{LagrangeDecoder, LagrangeEncoder, SchemeConfig};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::OpCounts;
use avcc_verify::{KeyGenConfig, MatVecKey};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, RoundExecution, RoundTask, SchemeFailure,
};

/// Pads a matrix with zero rows so its row count is a multiple of `parts`.
fn pad_rows_to_multiple<M: PrimeModulus>(matrix: &Matrix<Fp<M>>, parts: usize) -> Matrix<Fp<M>> {
    let remainder = matrix.rows() % parts;
    if remainder == 0 {
        return matrix.clone();
    }
    let extra = parts - remainder;
    let mut data = matrix.data().to_vec();
    data.extend(std::iter::repeat_n(Fp::<M>::ZERO, extra * matrix.cols()));
    Matrix::from_vec(matrix.rows() + extra, matrix.cols(), data)
}

/// The AVCC distributed matrix–vector engine.
#[derive(Debug, Clone)]
pub struct AvccMatVec<M: PrimeModulus> {
    config: SchemeConfig,
    shares: Vec<Arc<Matrix<Fp<M>>>>,
    decoder: LagrangeDecoder<M>,
    keys: Vec<MatVecKey<M>>,
    block_rows: usize,
    /// Rows of the original (unpadded) matrix; the decoded output is trimmed
    /// back to this length.
    output_rows: usize,
}

impl<M: PrimeModulus> AvccMatVec<M> {
    /// Encodes the matrix and generates one Freivalds verification key per
    /// worker (the one-time preprocessing of §IV-A steps 1–2).
    ///
    /// If the row count is not divisible by `config.partitions` — which
    /// happens when the dynamic-coding controller switches to a smaller `K` —
    /// the matrix is padded with zero rows and the decoded output is trimmed
    /// back, so callers never observe the padding.
    pub fn new<R: Rng + ?Sized>(
        matrix: &Matrix<Fp<M>>,
        config: SchemeConfig,
        key_config: KeyGenConfig,
        rng: &mut R,
    ) -> Self {
        let output_rows = matrix.rows();
        let padded = pad_rows_to_multiple(matrix, config.partitions);
        let blocks = padded.split_rows(config.partitions);
        let block_rows = blocks[0].rows();
        let encoder = LagrangeEncoder::<M>::new(config);
        let shares: Vec<Arc<Matrix<Fp<M>>>> = if config.colluding == 0 {
            encoder.encode_deterministic(&blocks)
        } else {
            encoder.encode(&blocks, rng)
        }
        .into_iter()
        .map(|s| Arc::new(s.block))
        .collect();
        let keys = shares
            .iter()
            .map(|share| MatVecKey::generate(share, key_config, rng))
            .collect();
        AvccMatVec {
            config,
            shares,
            decoder: LagrangeDecoder::new(config),
            keys,
            block_rows,
            output_rows,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Total size of the encoded data shipped to the workers, in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.shares.iter().map(|s| s.len() * 8).sum()
    }

    /// The recovery threshold (number of verified results needed to decode).
    pub fn recovery_threshold(&self) -> usize {
        self.config.recovery_threshold()
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for AvccMatVec<M> {
    fn name(&self) -> &'static str {
        "avcc"
    }

    fn workers(&self) -> usize {
        self.config.workers
    }

    fn min_results(&self) -> usize {
        self.config.recovery_threshold()
    }

    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>> {
        let input = Arc::new(input.to_vec());
        self.shares
            .iter()
            .enumerate()
            .map(|(worker, share)| RoundTask::new(worker, Arc::clone(share), Arc::clone(&input)))
            .collect()
    }

    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        _rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let observed_stragglers = detect_stragglers(outcomes);
        let threshold = self.config.recovery_threshold();

        // Verify results in arrival order and stop as soon as the threshold of
        // verified results is reached — the key property that lets AVCC start
        // decoding before the stragglers (and without LCC's 2M overhead).
        let mut verification_seconds = 0.0;
        let mut verifications = 0usize;
        let mut verified: Vec<(usize, Vec<Fp<M>>)> = Vec::with_capacity(threshold);
        let mut verified_outcomes = Vec::with_capacity(threshold);
        let mut detected_byzantine = Vec::new();
        for outcome in outcomes {
            if verified.len() >= threshold {
                break;
            }
            let verify_start = Instant::now();
            let accepted = self.keys[outcome.worker].verify(input, &outcome.payload);
            verification_seconds += verify_start.elapsed().as_secs_f64();
            verifications += 1;
            if accepted {
                verified.push((outcome.worker, outcome.payload.clone()));
                verified_outcomes.push(outcome);
            } else {
                detected_byzantine.push(outcome.worker);
            }
        }
        if verified.len() < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: verified.len(),
                required: threshold,
            });
        }

        let mut costs = waiting_costs(
            &verified_outcomes,
            network,
            field_vector_bytes(input.len()),
            self.config.workers,
        );
        costs.verification = verification_seconds * time_scale;

        let decode_start = Instant::now();
        let blocks =
            self.decoder
                .decode_erasure(&verified)
                .map_err(|e| SchemeFailure::DecodeFailed {
                    details: e.to_string(),
                })?;
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        let mut output = Vec::with_capacity(self.config.partitions * self.block_rows);
        for block in blocks {
            output.extend(block);
        }
        output.truncate(self.output_rows);
        // Freivalds checks one inner product over the payload plus one over
        // the input per verification; the Lagrange erasure decode interpolates
        // `partitions` blocks from `threshold` verified results.
        let ops = OpCounts {
            worker_macs: (self.block_rows * input.len()) as u64,
            verify_macs: (verifications * (self.block_rows + input.len())) as u64,
            decode_macs: (self.block_rows * threshold * self.config.partitions) as u64,
        };
        Ok(RoundExecution {
            output,
            costs,
            ops,
            used_workers: verified.iter().map(|(worker, _)| *worker).collect(),
            detected_byzantine,
            observed_stragglers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_sim::attack::{AttackModel, ByzantineSpec};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::VirtualExecutor;
    use rand::SeedableRng;

    fn setup() -> (Matrix<F25>, Vec<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(18, 6, avcc_field::random_matrix(&mut rng, 18, 6));
        let input = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        (matrix, input, expected)
    }

    fn engine(matrix: &Matrix<F25>, s: usize, m: usize, seed: u64) -> AvccMatVec<P25> {
        let config = SchemeConfig::linear(12, 9, s, m).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        AvccMatVec::new(matrix, config, KeyGenConfig::default(), &mut rng)
    }

    #[test]
    fn clean_round_uses_exactly_the_threshold() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 2);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 9);
        assert!(round.detected_byzantine.is_empty());
        assert!(round.costs.verification > 0.0);
    }

    #[test]
    fn byzantine_results_are_rejected_and_reported() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 1, 2, 4);
        // Slow every honest worker down so the two Byzantine workers are
        // guaranteed to be among the arrivals the master verifies.
        let honest: Vec<usize> = (0..12).filter(|w| *w != 0 && *w != 6).collect();
        let profile = ClusterProfile::uniform(12).with_stragglers(&honest, 50.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([0, 6], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(5);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected, "AVCC must still decode correctly");
        let mut detected = round.detected_byzantine.clone();
        detected.sort_unstable();
        assert_eq!(detected, vec![0, 6]);
        assert!(!round.used_workers.contains(&0));
        assert!(!round.used_workers.contains(&6));
    }

    #[test]
    fn reverse_value_attack_is_also_rejected() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 6);
        // Slow every honest worker down: under wall-clock noise the Byzantine
        // worker could otherwise finish among the slowest three, and a master
        // that already has threshold verified results never examines (or
        // detects) it.
        let honest: Vec<usize> = (0..12).filter(|w| *w != 4).collect();
        let profile = ClusterProfile::uniform(12).with_stragglers(&honest, 50.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([4], AttackModel::reverse());
        let mut rng = StdRng::seed_from_u64(7);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![4]);
    }

    #[test]
    fn stragglers_are_not_waited_for() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 8);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[1, 9], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert!(!round.used_workers.contains(&1));
        assert!(!round.used_workers.contains(&9));
    }

    #[test]
    fn combined_stragglers_and_byzantine_within_budget_still_decode() {
        let (matrix, input, expected) = setup();
        // (N=12, K=9, S+M=3): two stragglers plus one Byzantine node.
        let mut engine = engine(&matrix, 2, 1, 10);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[2, 3], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([7], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(11);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![7]);
    }

    #[test]
    fn straggler_round_on_subgroup_points_decodes_via_the_partial_ntt_path() {
        use avcc_field::{F64, P64};
        // Goldilocks field, K = 8 and N = 16 in subgroup position: a clean
        // round decodes through the full-coset NTT, while the straggler
        // round below decodes through the subproduct-tree partial path
        // (PR5) — the common case at scale. Both must reproduce the exact
        // product.
        let mut rng = StdRng::seed_from_u64(40);
        let matrix = Matrix::from_vec(16, 6, avcc_field::random_matrix(&mut rng, 16, 6));
        let input: Vec<F64> = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        let config = SchemeConfig::linear(16, 8, 4, 0).unwrap();
        let mut engine = AvccMatVec::<P64>::new(&matrix, config, KeyGenConfig::default(), &mut rng);
        // Sanity: this geometry really is the NTT layout with both fast paths.
        let decoder = LagrangeDecoder::<P64>::new(config);
        assert!(decoder.supports_ntt());
        assert!(decoder.supports_partial_ntt());
        let profile = ClusterProfile::uniform(16).with_stragglers(&[0, 5, 11, 13], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let mut round_rng = StdRng::seed_from_u64(41);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut round_rng)
            .unwrap();
        assert_eq!(round.output, expected);
        for straggler in [0usize, 5, 11, 13] {
            assert!(!round.used_workers.contains(&straggler));
        }
    }

    #[test]
    fn too_many_byzantine_workers_fail_loudly_not_silently() {
        let (matrix, input, _) = setup();
        // Every worker Byzantine: verification rejects them all and the engine
        // reports the shortfall instead of producing garbage.
        let mut engine = engine(&matrix, 2, 1, 12);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new(0..12, AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = engine.execute(&input, &executor, &byzantine, &mut rng);
        assert!(matches!(
            outcome,
            Err(SchemeFailure::NotEnoughResults { required: 9, .. })
        ));
    }
}
