//! The AVCC engine (paper §IV): coded computing for stragglers and privacy,
//! Freivalds verification for Byzantine workers.
//!
//! The data is Lagrange/MDS encoded exactly as for LCC, but the master holds a
//! per-worker Freivalds key and verifies each result *the moment it arrives*.
//! Results that fail verification are discarded (their workers are reported as
//! detected Byzantine); decoding starts as soon as the recovery threshold of
//! *verified* results is available, so a Byzantine worker costs exactly one
//! extra wait — the same as a straggler — instead of LCC's two (eq. 2 vs
//! eq. 1).
//!
//! Since PR9 a **pre-decode dual-codeword screen**
//! ([`avcc_coding::DualCodeword`]) runs first whenever strictly more than the
//! recovery threshold of results arrived: one `O(R·width)` SCRAPE-style
//! inner product checks all returned blocks for RS-codeword membership at
//! once and, on failure, localizes the corrupted workers by syndrome power
//! sums. Screened-out workers are dropped before any Freivalds work — they
//! become erasures exactly like stragglers — and are reported both in
//! `detected_byzantine` and in the new `screened_workers` field. The
//! per-arrival Freivalds check stays downstream as the belt to this
//! suspender: the screen proves the blocks *consistent with one polynomial*,
//! Freivalds proves them *the right polynomial* (a full coalition shifting
//! the round onto a different codeword passes the screen but not Freivalds).

use std::sync::Arc;
use std::time::Instant;

use avcc_coding::{DualCodeword, EncodedDataset, SchemeConfig, ScreenOutcome};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::cluster::NetworkModel;
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::OpCounts;
use avcc_verify::{combine_with_powers, KeyGenConfig, MatVecKey};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engines::MatVecEngine;
use crate::rounds::{
    detect_stragglers, field_vector_bytes, waiting_costs, BatchExecution, BatchRoundTask,
    RoundExecution, RoundTask, SchemeFailure,
};

/// The AVCC distributed matrix–vector engine: a per-function session over a
/// shared [`EncodedDataset`], plus the per-worker Freivalds keys.
///
/// Cloning the session clones the `Arc` onto the dataset, so clones keep
/// sharing one encode (and one decoder basis cache).
#[derive(Debug, Clone)]
pub struct AvccMatVec<M: PrimeModulus> {
    dataset: Arc<EncodedDataset<M>>,
    keys: Vec<MatVecKey<M>>,
    screen: DualCodeword<M>,
    screen_enabled: bool,
}

impl<M: PrimeModulus> AvccMatVec<M> {
    /// Opens an AVCC session over an already-encoded dataset, generating one
    /// Freivalds verification key per worker (§IV-A step 2). The expensive
    /// step 1 — encoding — was paid once when the dataset was built, and is
    /// shared with every other session over the same `Arc`.
    ///
    /// # Panics
    /// Panics if the dataset is not Lagrange-coded.
    pub fn over<R: Rng + ?Sized>(
        dataset: Arc<EncodedDataset<M>>,
        key_config: KeyGenConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            dataset.is_coded(),
            "AVCC requires a Lagrange-coded dataset; use EncodedDataset::encode"
        );
        let keys = dataset
            .shares()
            .iter()
            .map(|share| MatVecKey::generate(share, key_config, rng))
            .collect();
        let screen = DualCodeword::new(*dataset.scheme().expect("AVCC dataset is coded"));
        AvccMatVec {
            dataset,
            keys,
            screen,
            screen_enabled: true,
        }
    }

    /// Enables or disables the pre-decode dual-codeword screen (on by
    /// default). The paper-figure experiment driver turns it off: Fig. 3–5
    /// reproduce Tang et al.'s AVCC, whose master never screens — Freivalds
    /// verification plus erasure decoding already absorbs those fault
    /// patterns, so there the screen only adds master-side cost to the
    /// figures' cost model. Every other consumer (serving jobs, the socket
    /// runtime, direct sessions) keeps it on for pre-decode localization.
    pub fn with_screening(mut self, enabled: bool) -> Self {
        self.screen_enabled = enabled;
        self
    }

    /// Encodes the matrix and generates one Freivalds verification key per
    /// worker (the one-time preprocessing of §IV-A steps 1–2) — the
    /// single-function convenience wrapper around [`EncodedDataset::encode`]
    /// plus [`AvccMatVec::over`].
    ///
    /// If the row count is not divisible by `config.partitions` — which
    /// happens when the dynamic-coding controller switches to a smaller `K` —
    /// the matrix is padded with zero rows and the decoded output is trimmed
    /// back, so callers never observe the padding.
    pub fn new<R: Rng + ?Sized>(
        matrix: &Matrix<Fp<M>>,
        config: SchemeConfig,
        key_config: KeyGenConfig,
        rng: &mut R,
    ) -> Self {
        let dataset = Arc::new(EncodedDataset::encode(matrix, config, rng));
        Self::over(dataset, key_config, rng)
    }

    /// The shared encoded dataset this session dispatches against.
    pub fn dataset(&self) -> &Arc<EncodedDataset<M>> {
        &self.dataset
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        self.dataset.scheme().expect("AVCC dataset is coded")
    }

    /// Total size of the encoded data shipped to the workers, in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.dataset.encoded_bytes()
    }

    /// The recovery threshold (number of verified results needed to decode).
    pub fn recovery_threshold(&self) -> usize {
        self.dataset.recovery_threshold()
    }

    /// The pre-decode dual-codeword screen this session runs on arrivals
    /// (shared configuration/points with the dataset's encoder and decoder).
    pub fn screen(&self) -> &DualCodeword<M> {
        &self.screen
    }

    /// Runs the pre-decode screen over a round's arrivals: returns the
    /// localized corrupted workers (empty when the round is clean, not
    /// screenable, or localization did not converge) plus the screening MAC
    /// count. Factored out so both collect paths — and wire-level callers
    /// screening blocks on arrival — share the exact semantics.
    fn screen_claims<R: Rng + ?Sized>(
        &self,
        claims: &[(usize, Vec<Fp<M>>)],
        rng: &mut R,
    ) -> (Vec<usize>, u64) {
        if !self.screen_enabled || !self.screen.screenable(claims.len()) {
            return (Vec::new(), 0);
        }
        match self.screen.screen(claims, 1, rng) {
            Ok(report) => {
                let workers = match report.outcome {
                    ScreenOutcome::Corrupted { workers } => workers,
                    ScreenOutcome::Clean | ScreenOutcome::Unlocalized => Vec::new(),
                };
                (workers, report.macs)
            }
            // Malformed rounds (shape mismatches, duplicates) fall through to
            // the existing verification/decode paths, which report them.
            Err(_) => (Vec::new(), 0),
        }
    }
}

impl<M: PrimeModulus> MatVecEngine<M> for AvccMatVec<M> {
    fn name(&self) -> &'static str {
        "avcc"
    }

    fn workers(&self) -> usize {
        self.dataset.workers()
    }

    fn min_results(&self) -> usize {
        self.dataset.recovery_threshold()
    }

    fn dispatch(&self, input: &[Fp<M>]) -> Vec<RoundTask<M>> {
        let input = Arc::new(input.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, share)| RoundTask::new(worker, Arc::clone(share), Arc::clone(&input)))
            .collect()
    }

    fn collect(
        &mut self,
        input: &[Fp<M>],
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<RoundExecution<M>, SchemeFailure> {
        let observed_stragglers = detect_stragglers(outcomes);
        let threshold = self.dataset.recovery_threshold();

        // Pre-decode dual-codeword screen: with more than threshold arrivals
        // there is dual redundancy, and one O(R·width) pass localizes
        // corrupted blocks before any Freivalds work. Screened-out workers
        // are erased exactly like stragglers.
        let claims: Vec<(usize, Vec<Fp<M>>)> = outcomes
            .iter()
            .map(|outcome| (outcome.worker, outcome.payload.clone()))
            .collect();
        let screen_start = Instant::now();
        let (screened_workers, screen_macs) = self.screen_claims(&claims, rng);
        let mut verification_seconds = screen_start.elapsed().as_secs_f64();

        // Verify results in arrival order and stop as soon as the threshold of
        // verified results is reached — the key property that lets AVCC start
        // decoding before the stragglers (and without LCC's 2M overhead).
        let mut verifications = 0usize;
        let mut verified: Vec<(usize, Vec<Fp<M>>)> = Vec::with_capacity(threshold);
        let mut verified_outcomes = Vec::with_capacity(threshold);
        let mut detected_byzantine = screened_workers.clone();
        for outcome in outcomes {
            if verified.len() >= threshold {
                break;
            }
            if screened_workers.contains(&outcome.worker) {
                continue;
            }
            let verify_start = Instant::now();
            let accepted = self.keys[outcome.worker].verify(input, &outcome.payload);
            verification_seconds += verify_start.elapsed().as_secs_f64();
            verifications += 1;
            if accepted {
                verified.push((outcome.worker, outcome.payload.clone()));
                verified_outcomes.push(outcome);
            } else {
                detected_byzantine.push(outcome.worker);
            }
        }
        if verified.len() < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: verified.len(),
                required: threshold,
            });
        }

        let block_rows = self.dataset.block_rows();
        let mut costs = waiting_costs(
            &verified_outcomes,
            network,
            field_vector_bytes(input.len()),
            self.dataset.workers(),
        );
        costs.verification = verification_seconds * time_scale;

        let decoder = self.dataset.decoder().expect("AVCC dataset is coded");
        let decode_start = Instant::now();
        let blocks =
            decoder
                .decode_erasure(&verified)
                .map_err(|e| SchemeFailure::DecodeFailed {
                    details: e.to_string(),
                })?;
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        let mut output = Vec::with_capacity(self.dataset.partitions() * block_rows);
        for block in blocks {
            output.extend(block);
        }
        output.truncate(self.dataset.output_rows());
        // Freivalds checks one inner product over the payload plus one over
        // the input per verification; the Lagrange erasure decode interpolates
        // `partitions` blocks from `threshold` verified results.
        let ops = OpCounts {
            worker_macs: (block_rows * input.len()) as u64,
            verify_macs: (verifications * (block_rows + input.len())) as u64 + screen_macs,
            decode_macs: (block_rows * threshold * self.dataset.partitions()) as u64,
        };
        Ok(RoundExecution {
            output,
            costs,
            ops,
            used_workers: verified.iter().map(|(worker, _)| *worker).collect(),
            detected_byzantine,
            observed_stragglers,
            screened_workers,
        })
    }

    fn dispatch_batch(&self, inputs: &[Vec<Fp<M>>]) -> Vec<BatchRoundTask<M>> {
        let inputs = Arc::new(inputs.to_vec());
        self.dataset
            .shares()
            .iter()
            .enumerate()
            .map(|(worker, share)| {
                BatchRoundTask::new(worker, Arc::clone(share), Arc::clone(&inputs))
            })
            .collect()
    }

    fn collect_batch(
        &mut self,
        inputs: &[Vec<Fp<M>>],
        outcomes: &[WorkerOutcome<Vec<Vec<Fp<M>>>>],
        network: &NetworkModel,
        time_scale: f64,
        rng: &mut StdRng,
    ) -> Result<BatchExecution<M>, SchemeFailure> {
        assert!(!inputs.is_empty(), "batched round needs at least one input");
        let functions = inputs.len();
        let cols = inputs[0].len();
        let observed_stragglers = detect_stragglers(outcomes);
        let threshold = self.dataset.recovery_threshold();
        let block_rows = self.dataset.block_rows();

        // One scalar σ batches the whole round: the master combines the m
        // inputs into x_c = Σ σ^j x_j once, combines each arrival's m claims
        // into y_c = Σ σ^j y_j, and runs a single Freivalds check per arrival
        // — verifying m products costs barely more than one. A failed
        // combined check falls back to the m per-function checks to localize
        // which function(s) the worker corrupted.
        let sigma: Fp<M> = avcc_field::random_element(rng);
        let verify_setup = Instant::now();
        let combined_input = combine_with_powers(sigma, inputs);
        // The σ-combined claims Σ σ^j·Ỹ_i^{(j)} are themselves evaluations of
        // the combined polynomial (degree unchanged), so one dual-codeword
        // screen over the combined claims covers all m functions at once —
        // the same amortization trick as the batched Freivalds pass.
        let combined_claims: Vec<(usize, Vec<Fp<M>>)> = outcomes
            .iter()
            .map(|outcome| {
                debug_assert_eq!(outcome.payload.len(), functions);
                (outcome.worker, combine_with_powers(sigma, &outcome.payload))
            })
            .collect();
        let (screened_workers, screen_macs) = self.screen_claims(&combined_claims, rng);
        let mut verification_seconds = verify_setup.elapsed().as_secs_f64();
        let mut verifications = 0usize;
        let mut fallback_checks = 0usize;
        let mut verified: Vec<&WorkerOutcome<Vec<Vec<Fp<M>>>>> = Vec::with_capacity(threshold);
        let mut detected_byzantine = screened_workers.clone();
        let mut corrupted_functions = Vec::new();
        // Screened-out workers skip the combined check entirely, but the
        // per-function fallback still runs for them so corrupted functions
        // are localized exactly as before the screen existed.
        for &worker in &screened_workers {
            let outcome = outcomes
                .iter()
                .find(|outcome| outcome.worker == worker)
                .expect("screened workers come from the arrivals");
            for (function, (input, claim)) in inputs.iter().zip(&outcome.payload).enumerate() {
                fallback_checks += 1;
                if !self.keys[worker].verify(input, claim)
                    && !corrupted_functions.contains(&function)
                {
                    corrupted_functions.push(function);
                }
            }
        }
        for (outcome, (_, combined_claim)) in outcomes.iter().zip(&combined_claims) {
            if verified.len() >= threshold {
                break;
            }
            if screened_workers.contains(&outcome.worker) {
                continue;
            }
            let verify_start = Instant::now();
            let accepted = self.keys[outcome.worker].verify(&combined_input, combined_claim);
            verifications += 1;
            if accepted {
                verified.push(outcome);
            } else {
                for (function, (input, claim)) in inputs.iter().zip(&outcome.payload).enumerate() {
                    fallback_checks += 1;
                    if !self.keys[outcome.worker].verify(input, claim)
                        && !corrupted_functions.contains(&function)
                    {
                        corrupted_functions.push(function);
                    }
                }
                detected_byzantine.push(outcome.worker);
            }
            verification_seconds += verify_start.elapsed().as_secs_f64();
        }
        corrupted_functions.sort_unstable();
        if verified.len() < threshold {
            return Err(SchemeFailure::NotEnoughResults {
                available: verified.len(),
                required: threshold,
            });
        }

        let mut costs = waiting_costs(
            &verified,
            network,
            field_vector_bytes(functions * cols),
            self.dataset.workers(),
        );
        costs.verification = verification_seconds * time_scale;

        // m per-function erasure decodes over one survivor set: the first
        // pays for the Lagrange basis, the remaining m − 1 hit the dataset's
        // basis cache.
        let decoder = self.dataset.decoder().expect("AVCC dataset is coded");
        let decode_start = Instant::now();
        let mut outputs = Vec::with_capacity(functions);
        for function in 0..functions {
            let results: Vec<(usize, Vec<Fp<M>>)> = verified
                .iter()
                .map(|o| (o.worker, o.payload[function].clone()))
                .collect();
            let blocks =
                decoder
                    .decode_erasure(&results)
                    .map_err(|e| SchemeFailure::DecodeFailed {
                        details: e.to_string(),
                    })?;
            let mut output = Vec::with_capacity(self.dataset.partitions() * block_rows);
            for block in blocks {
                output.extend(block);
            }
            output.truncate(self.dataset.output_rows());
            outputs.push(output);
        }
        costs.decoding = decode_start.elapsed().as_secs_f64() * time_scale;

        // Combining costs `m` MACs per coordinate (inputs once, plus every
        // arrival's claims — the screen needs them all); each combined check
        // is one ordinary Freivalds check; fallbacks are ordinary
        // per-function checks; the screen adds its reported MACs.
        let ops = OpCounts {
            worker_macs: (block_rows * functions * cols) as u64,
            verify_macs: (functions * cols
                + outcomes.len() * functions * block_rows
                + verifications * (block_rows + cols)
                + fallback_checks * (block_rows + cols)) as u64
                + screen_macs,
            decode_macs: (functions * block_rows * threshold * self.dataset.partitions()) as u64,
        };
        Ok(BatchExecution {
            outputs,
            costs,
            ops,
            used_workers: verified.iter().map(|o| o.worker).collect(),
            detected_byzantine,
            observed_stragglers,
            screened_workers,
            corrupted_functions,
        })
    }

    fn decode_cache_stats(&self) -> (u64, u64) {
        self.dataset.basis_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, P25};
    use avcc_linalg::mat_vec;
    use avcc_sim::attack::{AttackModel, ByzantineSpec};
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::VirtualExecutor;
    use rand::SeedableRng;

    fn setup() -> (Matrix<F25>, Vec<F25>, Vec<F25>) {
        let mut rng = StdRng::seed_from_u64(1);
        let matrix = Matrix::from_vec(18, 6, avcc_field::random_matrix(&mut rng, 18, 6));
        let input = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        (matrix, input, expected)
    }

    fn engine(matrix: &Matrix<F25>, s: usize, m: usize, seed: u64) -> AvccMatVec<P25> {
        let config = SchemeConfig::linear(12, 9, s, m).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        AvccMatVec::new(matrix, config, KeyGenConfig::default(), &mut rng)
    }

    #[test]
    fn clean_round_uses_exactly_the_threshold() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 2);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.used_workers.len(), 9);
        assert!(round.detected_byzantine.is_empty());
        assert!(round.costs.verification > 0.0);
    }

    #[test]
    fn byzantine_results_are_rejected_and_reported() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 1, 2, 4);
        // Slow every honest worker down so the two Byzantine workers are
        // guaranteed to be among the arrivals the master verifies.
        let honest: Vec<usize> = (0..12).filter(|w| *w != 0 && *w != 6).collect();
        let profile = ClusterProfile::uniform(12).with_stragglers(&honest, 50.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([0, 6], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(5);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected, "AVCC must still decode correctly");
        let mut detected = round.detected_byzantine.clone();
        detected.sort_unstable();
        assert_eq!(detected, vec![0, 6]);
        assert!(!round.used_workers.contains(&0));
        assert!(!round.used_workers.contains(&6));
    }

    #[test]
    fn reverse_value_attack_is_also_rejected() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 6);
        // Slow every honest worker down: under wall-clock noise the Byzantine
        // worker could otherwise finish among the slowest three, and a master
        // that already has threshold verified results never examines (or
        // detects) it.
        let honest: Vec<usize> = (0..12).filter(|w| *w != 4).collect();
        let profile = ClusterProfile::uniform(12).with_stragglers(&honest, 50.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([4], AttackModel::reverse());
        let mut rng = StdRng::seed_from_u64(7);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![4]);
    }

    #[test]
    fn stragglers_are_not_waited_for() {
        let (matrix, input, expected) = setup();
        let mut engine = engine(&matrix, 2, 1, 8);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[1, 9], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert!(!round.used_workers.contains(&1));
        assert!(!round.used_workers.contains(&9));
    }

    #[test]
    fn combined_stragglers_and_byzantine_within_budget_still_decode() {
        let (matrix, input, expected) = setup();
        // (N=12, K=9, S+M=3): two stragglers plus one Byzantine node.
        let mut engine = engine(&matrix, 2, 1, 10);
        let profile = ClusterProfile::uniform(12).with_stragglers(&[2, 3], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new([7], AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(11);
        let round = engine
            .execute(&input, &executor, &byzantine, &mut rng)
            .unwrap();
        assert_eq!(round.output, expected);
        assert_eq!(round.detected_byzantine, vec![7]);
    }

    #[test]
    fn straggler_round_on_subgroup_points_decodes_via_the_partial_ntt_path() {
        use avcc_field::{F64, P64};
        // Goldilocks field, K = 8 and N = 16 in subgroup position: a clean
        // round decodes through the full-coset NTT, while the straggler
        // round below decodes through the subproduct-tree partial path
        // (PR5) — the common case at scale. Both must reproduce the exact
        // product.
        let mut rng = StdRng::seed_from_u64(40);
        let matrix = Matrix::from_vec(16, 6, avcc_field::random_matrix(&mut rng, 16, 6));
        let input: Vec<F64> = avcc_field::random_vector(&mut rng, 6);
        let expected = mat_vec(&matrix, &input);
        let config = SchemeConfig::linear(16, 8, 4, 0).unwrap();
        let mut engine = AvccMatVec::<P64>::new(&matrix, config, KeyGenConfig::default(), &mut rng);
        // Sanity: this geometry really is the NTT layout with both fast paths.
        let decoder = avcc_coding::LagrangeDecoder::<P64>::new(config);
        assert!(decoder.supports_ntt());
        assert!(decoder.supports_partial_ntt());
        let profile = ClusterProfile::uniform(16).with_stragglers(&[0, 5, 11, 13], 300.0);
        let executor = VirtualExecutor::new(profile).with_time_scale(1.0);
        let mut round_rng = StdRng::seed_from_u64(41);
        let round = engine
            .execute(&input, &executor, &ByzantineSpec::none(), &mut round_rng)
            .unwrap();
        assert_eq!(round.output, expected);
        for straggler in [0usize, 5, 11, 13] {
            assert!(!round.used_workers.contains(&straggler));
        }
    }

    #[test]
    fn too_many_byzantine_workers_fail_loudly_not_silently() {
        let (matrix, input, _) = setup();
        // Every worker Byzantine: verification rejects them all and the engine
        // reports the shortfall instead of producing garbage.
        let mut engine = engine(&matrix, 2, 1, 12);
        let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
        let byzantine = ByzantineSpec::new(0..12, AttackModel::constant());
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = engine.execute(&input, &executor, &byzantine, &mut rng);
        assert!(matches!(
            outcome,
            Err(SchemeFailure::NotEnoughResults { required: 9, .. })
        ));
    }
}
