//! The wire bridge: runs the staged training/serving pipeline on any
//! [`Executor`] — in-process or across real sockets — instead of the
//! trainer's built-in serial `VirtualExecutor`.
//!
//! The executor trait is modulus-erased (blocks and vectors travel as `u64`
//! representatives, because closures cannot cross a process boundary), so
//! this module owns the two conversions:
//!
//! * **down**: a round's [`RoundTask`]s become one wire
//!   [`Block`] per worker (installed once per job)
//!   plus per-round input vectors;
//! * **up**: modulus-erased outcomes come back as canonical `u64`s, are
//!   validated back into field elements (non-canonical payloads drop the
//!   worker — the wire layer's invariant, never silently reduced), and the
//!   Byzantine corruption is applied **master-side on arrival**, exactly as
//!   the in-process executors do, so fault injection is executor-independent.
//!
//! Block installation is keyed by *pointer identity* of the engines' shared
//! dataset `Arc`s: dispatching twice over the same encoded dataset reuses the
//! resident remote blocks (rounds then move only input/output vectors, the
//! paper's "data is distributed once" assumption), while an adaptation that
//! re-encodes to a smaller `(N, K)` swaps the `Arc`s and is detected as a new
//! job — the new blocks are shipped before the next round, which is precisely
//! the re-distribution cost the adaptive controller charges.

use std::sync::Arc;

use avcc_coding::{DualCodeword, ScreenOutcome};
use avcc_field::{Fp, PrimeField, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::churn::ChurnEventKind;
use avcc_sim::executor::{Executor, ExecutorError, WorkerOutcome};
use avcc_sim::wire::Block;
use rand::Rng;

use crate::driver::DistributedTrainer;
use crate::report::{IterationRecord, TrainingReport};
use crate::rounds::{BatchRoundTask, RoundTask, SchemeFailure};

/// Arrival-ordered outcomes of one batched round: per worker, one field
/// vector per function.
pub type BatchOutcomes<M> = Vec<WorkerOutcome<Vec<Vec<Fp<M>>>>>;

/// Result of a screened round: the outcomes that survived the dual-codeword
/// screen plus the sorted ids of the workers it evicted.
pub type ScreenedOutcomes<M> = (Vec<WorkerOutcome<Vec<Fp<M>>>>, Vec<usize>);

/// Errors from running the pipeline over an executor: either the scheme
/// itself failed (not enough usable results, decode failure) or the executor
/// did (unknown job, spawn failure).
#[derive(Debug)]
pub enum DistributedError {
    /// A scheme-level failure (the same errors `train` produces).
    Scheme(SchemeFailure),
    /// An executor-level failure (job bookkeeping, worker spawn).
    Executor(ExecutorError),
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Scheme(e) => write!(f, "scheme failure: {e}"),
            DistributedError::Executor(e) => write!(f, "executor failure: {e}"),
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<SchemeFailure> for DistributedError {
    fn from(e: SchemeFailure) -> Self {
        DistributedError::Scheme(e)
    }
}

impl From<ExecutorError> for DistributedError {
    fn from(e: ExecutorError) -> Self {
        DistributedError::Executor(e)
    }
}

/// Serializes one worker's matrix block into its wire form.
fn block_of<M: PrimeModulus>(matrix: &Matrix<Fp<M>>) -> Block {
    Block {
        modulus: M::MODULUS,
        rows: matrix.rows() as u32,
        cols: matrix.cols() as u32,
        elements: matrix.data().iter().map(|&v| v.to_u64()).collect(),
    }
}

/// Lowers a field vector to its canonical `u64` representatives.
fn lower<M: PrimeModulus>(v: &[Fp<M>]) -> Vec<u64> {
    v.iter().map(|&x| x.to_u64()).collect()
}

/// Lifts one function's worth of wire output back into field elements, or
/// `None` if any value is non-canonical (`≥ q`) — the wire invariant says
/// such a payload is corrupt and must drop the worker, never be reduced.
fn lift<M: PrimeModulus>(v: &[u64]) -> Option<Vec<Fp<M>>> {
    if v.iter().any(|&x| x >= M::MODULUS) {
        return None;
    }
    Some(v.iter().map(|&x| Fp::<M>::from_u64(x)).collect())
}

/// One logical dispatch stream (e.g. "round 1 of this trainer"): which wire
/// job its blocks are installed under, and the dataset fingerprint that job
/// corresponds to.
#[derive(Debug, Default, Clone)]
struct Channel {
    job: u64,
    /// `Arc` pointer identity of each worker's block at install time.
    fingerprint: Vec<usize>,
}

/// Drives modulus-typed rounds over a modulus-erased [`Executor`], caching
/// block installation per channel (see the module docs).
#[derive(Debug, Default)]
pub struct WireRunner {
    channels: Vec<Option<Channel>>,
    next_job: u64,
    next_round: u64,
}

impl WireRunner {
    /// A fresh runner with no blocks installed anywhere.
    pub fn new() -> Self {
        WireRunner::default()
    }

    /// Makes sure the executor has the current blocks for `channel`
    /// installed, shipping them only when the dataset changed (or was never
    /// installed). Returns the wire job id to run rounds under.
    fn ensure_installed<M: PrimeModulus>(
        &mut self,
        executor: &mut dyn Executor,
        channel: usize,
        matrices: &[&Arc<Matrix<Fp<M>>>],
    ) -> Result<u64, ExecutorError> {
        if self.channels.len() <= channel {
            self.channels.resize(channel + 1, None);
        }
        let fingerprint: Vec<usize> = matrices.iter().map(|m| Arc::as_ptr(m) as usize).collect();
        if let Some(existing) = &self.channels[channel] {
            if existing.fingerprint == fingerprint {
                return Ok(existing.job);
            }
        }
        let job = self.next_job;
        self.next_job += 1;
        let blocks: Vec<Block> = matrices.iter().map(|m| block_of(m)).collect();
        executor.install_blocks(job, &blocks)?;
        self.channels[channel] = Some(Channel { job, fingerprint });
        Ok(job)
    }

    /// Runs one single-function round (`tasks[i]` addressed to worker `i`)
    /// on the executor and returns arrival-ordered, corruption-applied
    /// outcomes — the exact shape
    /// [`DistributedTrainer::collect_round1`]/`collect_round2` and the
    /// engines' `collect` expect.
    pub fn run_round<M: PrimeModulus>(
        &mut self,
        executor: &mut dyn Executor,
        channel: usize,
        tasks: &[RoundTask<M>],
        byzantine: &ByzantineSpec,
    ) -> Result<Vec<WorkerOutcome<Vec<Fp<M>>>>, ExecutorError> {
        let matrices: Vec<&Arc<Matrix<Fp<M>>>> = tasks.iter().map(|t| t.matrix()).collect();
        let job = self.ensure_installed(executor, channel, &matrices)?;
        let round = self.next_round;
        self.next_round += 1;
        let inputs: Vec<Vec<Vec<u64>>> = tasks.iter().map(|t| vec![lower(t.input())]).collect();
        let raw = executor.execute_round(job, round, &inputs)?;
        let mut outcomes: Vec<WorkerOutcome<Vec<Fp<M>>>> = raw
            .into_iter()
            .filter_map(|outcome| {
                // Exactly one function's output, of the dispatched shape.
                let [output] = outcome.payload.as_slice() else {
                    return None;
                };
                let mut payload = lift::<M>(output)?;
                let corrupted = byzantine.corrupt(outcome.worker, &mut payload);
                Some(WorkerOutcome {
                    worker: outcome.worker,
                    payload,
                    compute_seconds: outcome.compute_seconds,
                    network_seconds: outcome.network_seconds,
                    arrival_seconds: outcome.arrival_seconds,
                    corrupted,
                })
            })
            .collect();
        outcomes.sort_by(|a, b| {
            a.arrival_seconds
                .partial_cmp(&b.arrival_seconds)
                .expect("finite arrival times")
        });
        Ok(outcomes)
    }

    /// Runs one single-function round and screens the arrivals with the
    /// pre-decode dual-codeword check before handing them on: workers whose
    /// blocks the screen localizes as RS-inconsistent are dropped from the
    /// outcome list — downstream they are indistinguishable from stragglers
    /// — and returned separately so callers can account for the evictions.
    ///
    /// When the responder set is too small to screen (`R ≤ threshold`), or
    /// the screen passes (or cannot localize), the outcomes pass through
    /// untouched; engine-side Freivalds verification remains the backstop.
    pub fn run_round_screened<M: PrimeModulus, R: Rng + ?Sized>(
        &mut self,
        executor: &mut dyn Executor,
        channel: usize,
        tasks: &[RoundTask<M>],
        byzantine: &ByzantineSpec,
        screen: &DualCodeword<M>,
        rng: &mut R,
    ) -> Result<ScreenedOutcomes<M>, ExecutorError> {
        let outcomes = self.run_round(executor, channel, tasks, byzantine)?;
        if !screen.screenable(outcomes.len()) {
            return Ok((outcomes, Vec::new()));
        }
        let claims: Vec<(usize, Vec<Fp<M>>)> = outcomes
            .iter()
            .map(|o| (o.worker, o.payload.clone()))
            .collect();
        let screened = match screen.screen(&claims, 1, rng) {
            Ok(report) => match report.outcome {
                ScreenOutcome::Corrupted { workers } => workers,
                ScreenOutcome::Clean | ScreenOutcome::Unlocalized => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        let outcomes = outcomes
            .into_iter()
            .filter(|o| !screened.contains(&o.worker))
            .collect();
        Ok((outcomes, screened))
    }

    /// Runs one batched round (`m` functions per task) on the executor; the
    /// batched counterpart of [`WireRunner::run_round`], returning the shape
    /// the engines' `collect_batch` expects. A Byzantine worker corrupts
    /// every function of its payload, matching
    /// [`crate::engines::MatVecEngine::execute_batch`].
    pub fn run_batch_round<M: PrimeModulus>(
        &mut self,
        executor: &mut dyn Executor,
        channel: usize,
        tasks: &[BatchRoundTask<M>],
        byzantine: &ByzantineSpec,
    ) -> Result<BatchOutcomes<M>, ExecutorError> {
        let matrices: Vec<&Arc<Matrix<Fp<M>>>> = tasks.iter().map(|t| t.matrix()).collect();
        let job = self.ensure_installed(executor, channel, &matrices)?;
        let round = self.next_round;
        self.next_round += 1;
        let inputs: Vec<Vec<Vec<u64>>> = tasks
            .iter()
            .map(|t| t.inputs().iter().map(|v| lower(v)).collect())
            .collect();
        let functions = tasks.first().map_or(0, |t| t.functions());
        let raw = executor.execute_round(job, round, &inputs)?;
        let mut outcomes: BatchOutcomes<M> = raw
            .into_iter()
            .filter_map(|outcome| {
                if outcome.payload.len() != functions {
                    return None;
                }
                let mut payload = Vec::with_capacity(functions);
                for part in &outcome.payload {
                    payload.push(lift::<M>(part)?);
                }
                let mut corrupted = false;
                for part in payload.iter_mut() {
                    corrupted |= byzantine.corrupt(outcome.worker, part);
                }
                Some(WorkerOutcome {
                    worker: outcome.worker,
                    payload,
                    compute_seconds: outcome.compute_seconds,
                    network_seconds: outcome.network_seconds,
                    arrival_seconds: outcome.arrival_seconds,
                    corrupted,
                })
            })
            .collect();
        outcomes.sort_by(|a, b| {
            a.arrival_seconds
                .partial_cmp(&b.arrival_seconds)
                .expect("finite arrival times")
        });
        Ok(outcomes)
    }
}

/// Channel index used for a trainer's round-1 dispatches.
const CHANNEL_ROUND1: usize = 0;
/// Channel index used for a trainer's round-2 dispatches.
const CHANNEL_ROUND2: usize = 1;

/// Runs the trainer's full configured training loop on `executor`: the
/// distributed counterpart of [`DistributedTrainer::train`], producing a
/// bit-identical model trajectory for any executor whose outcomes carry the
/// same values (all of them — the compute path is the same
/// `avcc_linalg::mat_vec` kernel everywhere, and decode is exact).
///
/// Blocks ship to the workers once up front (and again only after a dynamic
/// re-coding swaps the datasets); each round then moves one input vector per
/// worker down and one output vector per worker back.
///
/// # Graceful degradation under churn
///
/// When a round comes back below the recovery threshold (churned workers
/// absent), the driver does not error: it **parks** the round — re-dispatching
/// the same tasks, each dispatch advancing the executor's round clock so
/// churned workers may have rejoined by the retry — up to the trainer's
/// [stall budget](DistributedTrainer::stall_budget). Exhausting the budget
/// [shrink-recodes](DistributedTrainer::shrink_to_fit) to a smaller `K` that
/// fits the workers actually responding and restarts the iteration on the
/// new code. Decode is exact, so neither path perturbs the model trajectory.
pub fn train_distributed<M: PrimeModulus>(
    trainer: &mut DistributedTrainer<M>,
    executor: &mut dyn Executor,
) -> Result<TrainingReport, DistributedError> {
    let mut runner = WireRunner::new();
    let mut report = TrainingReport::new(trainer.scheme().label(), trainer.scenario_label());
    let mut cumulative = 0.0;
    for iteration in 0..trainer.iterations() {
        match run_iteration_parked(trainer, executor, &mut runner, iteration, &mut cumulative) {
            Ok(record) => report.push(record),
            Err(error) => {
                trainer.reset_pipeline();
                return Err(error);
            }
        }
    }
    Ok(report)
}

/// One iteration of [`train_distributed`], with the park / resume / shrink
/// loop around each round's collect (see the function docs above).
fn run_iteration_parked<M: PrimeModulus>(
    trainer: &mut DistributedTrainer<M>,
    executor: &mut dyn Executor,
    runner: &mut WireRunner,
    iteration: usize,
    cumulative: &mut f64,
) -> Result<IterationRecord, DistributedError> {
    'restart: loop {
        let round1_tasks = trainer.encode_round1();
        let byzantine = trainer.byzantine().clone();
        let mut stalls = 0usize;
        let round2_tasks = loop {
            let outcomes = runner.run_round(executor, CHANNEL_ROUND1, &round1_tasks, &byzantine)?;
            let responded = outcomes.len();
            match trainer.collect_round1(&outcomes) {
                Ok(tasks) => {
                    if stalls > 0 {
                        trainer.note_fleet_event(
                            iteration as u64,
                            responded,
                            ChurnEventKind::Resumed,
                        );
                    }
                    break tasks;
                }
                Err(SchemeFailure::NotEnoughResults {
                    available,
                    required,
                }) => {
                    if stalls == 0 {
                        trainer.note_fleet_event(
                            iteration as u64,
                            available,
                            ChurnEventKind::Parked,
                        );
                    }
                    stalls += 1;
                    if stalls > trainer.stall_budget() {
                        trainer.shrink_to_fit(iteration as u64, available, required)?;
                        continue 'restart;
                    }
                }
                Err(other) => return Err(other.into()),
            }
        };
        let byzantine = trainer.byzantine().clone();
        let mut stalls = 0usize;
        loop {
            let outcomes = runner.run_round(executor, CHANNEL_ROUND2, &round2_tasks, &byzantine)?;
            let responded = outcomes.len();
            match trainer.collect_round2(iteration, &outcomes, cumulative) {
                Ok(record) => {
                    if stalls > 0 {
                        trainer.note_fleet_event(
                            iteration as u64,
                            responded,
                            ChurnEventKind::Resumed,
                        );
                    }
                    return Ok(record);
                }
                Err(SchemeFailure::NotEnoughResults {
                    available,
                    required,
                }) => {
                    if stalls == 0 {
                        trainer.note_fleet_event(
                            iteration as u64,
                            available,
                            ChurnEventKind::Parked,
                        );
                    }
                    stalls += 1;
                    if stalls > trainer.stall_budget() {
                        trainer.shrink_to_fit(iteration as u64, available, required)?;
                        continue 'restart;
                    }
                }
                Err(other) => return Err(other.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{SchemeKind, TrainerConfig};
    use crate::problem::TrainingProblem;
    use avcc_coding::SchemeConfig;
    use avcc_field::P25;
    use avcc_ml::dataset::{Dataset, DatasetConfig};
    use avcc_sim::attack::AttackModel;
    use avcc_sim::cluster::ClusterProfile;
    use avcc_sim::executor::{ThreadedExecutor, VirtualExecutor};

    fn small_problem() -> TrainingProblem {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 180,
            test_samples: 60,
            features: 27,
            informative: 9,
            ..DatasetConfig::default()
        });
        TrainingProblem::from_dataset(&dataset, 9)
    }

    fn quick_config(scheme: SchemeKind) -> TrainerConfig {
        TrainerConfig {
            iterations: 5,
            time_scale: 1.0,
            ..TrainerConfig::paper_defaults(scheme, SchemeConfig::linear(12, 9, 2, 1).unwrap())
        }
    }

    fn make_trainer(scheme: SchemeKind) -> DistributedTrainer<P25> {
        DistributedTrainer::new(
            small_problem(),
            ClusterProfile::uniform(12).with_stragglers(&[0], 10.0),
            ByzantineSpec::new([3], AttackModel::constant()),
            quick_config(scheme),
            "bridge-test",
        )
    }

    /// The per-iteration `(accuracy, loss)` trajectory — f64-exact equality
    /// certifies bit-identical models at every step.
    fn trajectory(report: &TrainingReport) -> Vec<(f64, f64)> {
        report
            .iterations
            .iter()
            .map(|r| (r.test_accuracy, r.train_loss))
            .collect()
    }

    #[test]
    fn train_distributed_on_virtual_executor_matches_train() {
        let mut oracle = make_trainer(SchemeKind::Avcc);
        let oracle_report = oracle.train().unwrap();

        let mut trainer = make_trainer(SchemeKind::Avcc);
        let mut executor = VirtualExecutor::new(trainer.cluster().clone());
        let report = train_distributed(&mut trainer, &mut executor).unwrap();

        assert_eq!(trajectory(&report), trajectory(&oracle_report));
        assert_eq!(trainer.model().weights, oracle.model().weights);
        assert!(report.total_detections() > 0);
    }

    #[test]
    fn train_distributed_on_threaded_executor_matches_train() {
        let mut oracle = make_trainer(SchemeKind::StaticVcc);
        let oracle_report = oracle.train().unwrap();

        let mut trainer = make_trainer(SchemeKind::StaticVcc);
        let mut executor = ThreadedExecutor::new(trainer.cluster().clone());
        executor.sleep_per_slowdown_unit = 0.002;
        let report = train_distributed(&mut trainer, &mut executor).unwrap();

        assert_eq!(trajectory(&report), trajectory(&oracle_report));
        assert_eq!(trainer.model().weights, oracle.model().weights);
    }

    #[test]
    fn adaptation_reinstalls_blocks_under_a_fresh_job() {
        // Straggler pressure beyond the (S=2) budget forces a re-encode; the
        // runner must detect the swapped dataset Arcs and ship new blocks
        // instead of letting workers compute on stale ones (which decode
        // would reject as garbage).
        let mut trainer = DistributedTrainer::<P25>::new(
            small_problem(),
            ClusterProfile::uniform(12).with_stragglers(&[0, 1, 2], 10.0),
            ByzantineSpec::new([4], AttackModel::constant()),
            TrainerConfig {
                iterations: 6,
                time_scale: 1.0,
                ..TrainerConfig::paper_defaults(
                    SchemeKind::Avcc,
                    SchemeConfig::linear(12, 9, 2, 1).unwrap(),
                )
            },
            "bridge-adapt",
        );
        let mut executor = VirtualExecutor::new(trainer.cluster().clone());
        let report = train_distributed(&mut trainer, &mut executor).unwrap();
        assert!(report.reconfiguration_count() >= 1);
        assert!(trainer.current_coding().workers < 12);
        assert!(report.final_accuracy() > 0.5);
    }

    #[test]
    fn non_canonical_payloads_drop_the_worker() {
        // Forge an executor outcome with an out-of-field value: the lift must
        // reject it rather than reduce it into a plausible-looking element.
        assert_eq!(
            lift::<P25>(&[0, 1, P25::MODULUS - 1]).map(|v| v.len()),
            Some(3)
        );
        assert!(lift::<P25>(&[0, P25::MODULUS]).is_none());
        assert!(lift::<P25>(&[u64::MAX]).is_none());
    }
}
