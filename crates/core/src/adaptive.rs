//! The dynamic-coding controller (paper §IV-A step 5 and §IV-B step 5).
//!
//! After every iteration AVCC looks at what actually happened — how many
//! workers were detected Byzantine (`M_t`) and how many straggled (`S_t`) —
//! and computes the slack
//!
//! ```text
//! A_t = N_t − M_t − S_t − recovery_threshold          (eq. 16 / 18)
//! ```
//!
//! If the slack is negative the system is already paying straggler tail
//! latency every iteration, so the controller shrinks the code:
//!
//! ```text
//! (N_{t+1}, K_{t+1}) = (N_t − M_t, K_t)            if A_t ≥ 0
//!                      (N_t − M_t, K_t + ⌊A_t/deg f⌋) if A_t < 0   (eq. 17 / 19)
//! ```
//!
//! Detected Byzantine workers are evicted either way. Re-encoding for the new
//! `(N, K)` and re-distributing the coded data is a one-time cost the driver
//! charges to the iteration in which the switch happens (Fig. 5).

use avcc_coding::SchemeConfig;

/// What the controller decided to do after an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptationDecision {
    /// Workers to evict from the cluster (detected Byzantine nodes).
    pub evict_workers: Vec<usize>,
    /// The new scheme configuration after eviction / re-coding.
    pub new_config: SchemeConfig,
    /// Whether the code dimension changed (requiring re-encoding and
    /// re-distribution of the coded data).
    pub reencode: bool,
    /// The slack `A_t` that drove the decision.
    pub slack: i64,
}

/// The dynamic-coding controller. With `enabled = false` it never adapts —
/// that is exactly the paper's "Static VCC" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveController {
    enabled: bool,
}

impl AdaptiveController {
    /// A controller that adapts (AVCC) or not (Static VCC).
    pub fn new(enabled: bool) -> Self {
        AdaptiveController { enabled }
    }

    /// Whether dynamic coding is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Evaluates the end-of-iteration state and returns a decision, or `None`
    /// when nothing needs to change (no Byzantine detections and non-negative
    /// slack) or adaptation is disabled / infeasible.
    pub fn evaluate(
        &self,
        current: &SchemeConfig,
        detected_byzantine: &[usize],
        observed_stragglers: &[usize],
    ) -> Option<AdaptationDecision> {
        if !self.enabled {
            return None;
        }
        let byzantine_count = detected_byzantine.len();
        let straggler_count = observed_stragglers.len();
        let slack = current.slack(straggler_count, byzantine_count);
        if byzantine_count == 0 && slack >= 0 {
            return None;
        }

        let new_workers = current.workers.saturating_sub(byzantine_count);
        let new_partitions = if slack >= 0 {
            current.partitions
        } else {
            let reduction = ((-slack) as usize).div_ceil(current.degree);
            current.partitions.saturating_sub(reduction).max(1)
        };
        // Evicting a worker keeps the same code (the remaining shares still
        // decode); only a change of the code dimension K requires switching to
        // a different encoding and re-distributing coded data.
        let reencode = new_partitions != current.partitions;

        // Residual tolerances of the new code: Byzantine workers were evicted,
        // so the remaining redundancy is budgeted entirely for stragglers.
        let new_threshold = (new_partitions + current.colluding - 1) * current.degree + 1;
        if new_workers < new_threshold {
            // Shrinking any further would make decoding impossible; keep the
            // current configuration rather than break the system.
            return None;
        }
        let new_stragglers = new_workers - new_threshold;
        let new_config = SchemeConfig::new(
            new_workers,
            new_partitions,
            new_stragglers,
            0,
            current.colluding,
            current.degree,
        )
        .ok()?;

        Some(AdaptationDecision {
            evict_workers: detected_byzantine.to_vec(),
            new_config,
            reencode,
            slack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_config() -> SchemeConfig {
        SchemeConfig::linear(12, 9, 2, 1).unwrap()
    }

    #[test]
    fn quiet_iteration_needs_no_adaptation() {
        let controller = AdaptiveController::new(true);
        assert_eq!(controller.evaluate(&paper_config(), &[], &[]), None);
        // One straggler still leaves non-negative slack (12 - 0 - 1 - 9 = 2).
        assert_eq!(controller.evaluate(&paper_config(), &[], &[4]), None);
    }

    #[test]
    fn disabled_controller_never_adapts() {
        let controller = AdaptiveController::new(false);
        assert!(!controller.is_enabled());
        assert_eq!(controller.evaluate(&paper_config(), &[3], &[0, 1, 2]), None);
    }

    #[test]
    fn byzantine_detection_with_positive_slack_evicts_without_recoding_dimension() {
        let controller = AdaptiveController::new(true);
        // One Byzantine, one straggler: A_t = 12 - 1 - 1 - 9 = 1 >= 0.
        let decision = controller
            .evaluate(&paper_config(), &[7], &[2])
            .expect("eviction expected");
        assert_eq!(decision.evict_workers, vec![7]);
        assert_eq!(decision.new_config.workers, 11);
        assert_eq!(decision.new_config.partitions, 9);
        // The code dimension is unchanged, so no re-encoding is needed: the
        // remaining 11 shares of the same (12, 9) code still decode.
        assert!(!decision.reencode);
        assert_eq!(decision.slack, 1);
    }

    #[test]
    fn figure_5_scenario_recodes_to_eleven_eight() {
        // Initial (12, 9, S=2, M=1); iteration observes 3 stragglers and 1
        // Byzantine worker: A_t = 12 - 1 - 3 - 9 = -1 < 0, so the paper's
        // example re-encodes to (N=11, K=8, S=3, M=0).
        let controller = AdaptiveController::new(true);
        let decision = controller
            .evaluate(&paper_config(), &[6], &[0, 1, 2])
            .expect("re-coding expected");
        assert_eq!(decision.slack, -1);
        assert_eq!(decision.new_config.workers, 11);
        assert_eq!(decision.new_config.partitions, 8);
        assert_eq!(decision.new_config.stragglers, 3);
        assert_eq!(decision.new_config.byzantine, 0);
        assert!(decision.reencode);
    }

    #[test]
    fn lagrange_slack_uses_degree_in_the_reduction() {
        // deg f = 2, T = 1: threshold = (K + T - 1) * 2 + 1.
        let config = SchemeConfig::new(20, 4, 2, 1, 1, 2).unwrap();
        let controller = AdaptiveController::new(true);
        // threshold = 9; observe 1 Byzantine and 12 stragglers:
        // A_t = 20 - 1 - 12 - 9 = -2, reduction = ceil(2/2) = 1 partition.
        let decision = controller
            .evaluate(&config, &[0], &(1..13).collect::<Vec<_>>())
            .expect("re-coding expected");
        assert_eq!(decision.new_config.partitions, 3);
        assert_eq!(decision.new_config.workers, 19);
    }

    #[test]
    fn controller_refuses_to_shrink_below_decodability() {
        // Evicting every worker would make decoding impossible; the controller
        // must keep the current configuration rather than break the system.
        let config = SchemeConfig::linear(3, 2, 1, 0).unwrap();
        let controller = AdaptiveController::new(true);
        assert_eq!(controller.evaluate(&config, &[0, 1, 2], &[]), None);
    }

    #[test]
    fn deep_shrinkage_stays_decodable() {
        // Two of three workers evicted: the controller shrinks all the way to
        // a single-partition code rather than refusing.
        let config = SchemeConfig::linear(3, 2, 1, 0).unwrap();
        let controller = AdaptiveController::new(true);
        let decision = controller.evaluate(&config, &[0, 1], &[2]).unwrap();
        assert_eq!(decision.new_config.workers, 1);
        assert_eq!(decision.new_config.partitions, 1);
    }
}
