//! The dynamic-coding controller (paper §IV-A step 5 and §IV-B step 5).
//!
//! After every iteration AVCC looks at what actually happened — how many
//! workers were detected Byzantine (`M_t`) and how many straggled (`S_t`) —
//! and computes the slack
//!
//! ```text
//! A_t = N_t − M_t − S_t − recovery_threshold          (eq. 16 / 18)
//! ```
//!
//! If the slack is negative the system is already paying straggler tail
//! latency every iteration, so the controller shrinks the code:
//!
//! ```text
//! (N_{t+1}, K_{t+1}) = (N_t − M_t, K_t)            if A_t ≥ 0
//!                      (N_t − M_t, K_t + ⌊A_t/deg f⌋) if A_t < 0   (eq. 17 / 19)
//! ```
//!
//! Detected Byzantine workers are evicted either way. Re-encoding for the new
//! `(N, K)` and re-distributing the coded data is a one-time cost the driver
//! charges to the iteration in which the switch happens (Fig. 5).

use avcc_coding::SchemeConfig;
use serde::{Deserialize, Serialize};

/// What the controller decided to do after an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptationDecision {
    /// Workers to evict from the cluster (detected Byzantine nodes).
    pub evict_workers: Vec<usize>,
    /// The new scheme configuration after eviction / re-coding.
    pub new_config: SchemeConfig,
    /// Whether the code dimension changed (requiring re-encoding and
    /// re-distribution of the coded data).
    pub reencode: bool,
    /// The slack `A_t` that drove the decision.
    pub slack: i64,
}

/// The dynamic-coding controller. With `enabled = false` it never adapts —
/// that is exactly the paper's "Static VCC" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveController {
    enabled: bool,
}

impl AdaptiveController {
    /// A controller that adapts (AVCC) or not (Static VCC).
    pub fn new(enabled: bool) -> Self {
        AdaptiveController { enabled }
    }

    /// Whether dynamic coding is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Evaluates the end-of-iteration state and returns a decision, or `None`
    /// when nothing needs to change (no Byzantine detections and non-negative
    /// slack) or adaptation is disabled / infeasible.
    pub fn evaluate(
        &self,
        current: &SchemeConfig,
        detected_byzantine: &[usize],
        observed_stragglers: &[usize],
    ) -> Option<AdaptationDecision> {
        if !self.enabled {
            return None;
        }
        let byzantine_count = detected_byzantine.len();
        let straggler_count = observed_stragglers.len();
        let slack = current.slack(straggler_count, byzantine_count);
        if byzantine_count == 0 && slack >= 0 {
            return None;
        }

        let new_workers = current.workers.saturating_sub(byzantine_count);
        let new_partitions = if slack >= 0 {
            current.partitions
        } else {
            let reduction = ((-slack) as usize).div_ceil(current.degree);
            current.partitions.saturating_sub(reduction).max(1)
        };
        // Evicting a worker keeps the same code (the remaining shares still
        // decode); only a change of the code dimension K requires switching to
        // a different encoding and re-distributing coded data.
        let reencode = new_partitions != current.partitions;

        // Residual tolerances of the new code: Byzantine workers were evicted,
        // so the remaining redundancy is budgeted entirely for stragglers.
        let new_threshold = (new_partitions + current.colluding - 1) * current.degree + 1;
        if new_workers < new_threshold {
            // Shrinking any further would make decoding impossible; keep the
            // current configuration rather than break the system.
            return None;
        }
        let new_stragglers = new_workers - new_threshold;
        let new_config = SchemeConfig::new(
            new_workers,
            new_partitions,
            new_stragglers,
            0,
            current.colluding,
            current.degree,
        )
        .ok()?;

        Some(AdaptationDecision {
            evict_workers: detected_byzantine.to_vec(),
            new_config,
            reencode,
            slack,
        })
    }
}

/// Tuning knobs for the closed-loop [`Autopilot`].
///
/// All rates are per-iteration worker counts smoothed with an exponentially
/// weighted moving average (EWMA): `x̂ ← α·x + (1−α)·x̂`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutopilotConfig {
    /// Whether the autopilot retunes the code at all.
    pub enabled: bool,
    /// EWMA smoothing factor `α ∈ (0, 1]` — higher reacts faster.
    pub alpha: f64,
    /// Safety margin, in (fractional) workers, kept in reserve above the
    /// smoothed demand when sizing the recovery threshold.
    pub headroom: f64,
    /// Iterations to hold the configuration after a retune before the next
    /// one is allowed; damps oscillation between adjacent `K` values.
    pub cooldown: usize,
    /// The autopilot never lowers the privacy parameter `T` below this.
    pub privacy_floor: usize,
    /// The autopilot raises `T` toward this bound when the fleet has slack.
    pub privacy_ceiling: usize,
}

impl AutopilotConfig {
    /// An autopilot that never retunes (the static baseline).
    pub fn disabled() -> Self {
        AutopilotConfig {
            enabled: false,
            alpha: 0.3,
            headroom: 1.0,
            cooldown: 2,
            privacy_floor: 0,
            privacy_ceiling: 0,
        }
    }

    /// An enabled autopilot that keeps the scheme's current privacy level
    /// `t` fixed (floor == ceiling == `t`).
    pub fn with_privacy(t: usize) -> Self {
        AutopilotConfig {
            enabled: true,
            privacy_floor: t,
            privacy_ceiling: t,
            ..AutopilotConfig::disabled()
        }
    }
}

/// The churn-aware closed-loop controller. Where [`AdaptiveController`]
/// reacts to a single bad iteration by permanently evicting workers and only
/// ever shrinking `K`, the autopilot keeps every fleet slot (churned workers
/// may rejoin) and retunes `(K, T)` in *both* directions from smoothed
/// observations: under sustained churn or straggling it lowers `K` (raising
/// redundancy `R = N − threshold`), and when the fleet heals it grows `K`
/// back — and `T` toward its ceiling — reclaiming throughput and privacy.
#[derive(Debug, Clone, PartialEq)]
pub struct Autopilot {
    config: AutopilotConfig,
    missing_rate: f64,
    straggler_rate: f64,
    byzantine_rate: f64,
    cooldown_left: usize,
}

impl Autopilot {
    /// A fresh autopilot with zeroed rate estimates.
    pub fn new(config: AutopilotConfig) -> Self {
        assert!(
            !config.enabled || (config.alpha > 0.0 && config.alpha <= 1.0),
            "autopilot EWMA factor must be in (0, 1], got {}",
            config.alpha
        );
        assert!(
            config.privacy_floor <= config.privacy_ceiling,
            "autopilot privacy floor {} exceeds ceiling {}",
            config.privacy_floor,
            config.privacy_ceiling
        );
        Autopilot {
            config,
            missing_rate: 0.0,
            straggler_rate: 0.0,
            byzantine_rate: 0.0,
            cooldown_left: 0,
        }
    }

    /// Whether the autopilot retunes the code.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configured tuning knobs.
    pub fn config(&self) -> &AutopilotConfig {
        &self.config
    }

    /// The smoothed `(missing, straggler, byzantine)` per-iteration rates.
    pub fn rates(&self) -> (f64, f64, f64) {
        (self.missing_rate, self.straggler_rate, self.byzantine_rate)
    }

    /// Feeds one iteration's observations — how many of the fleet's `N`
    /// slots returned nothing (churned away), straggled, or were detected
    /// Byzantine — and returns a retune decision when the smoothed demand
    /// calls for a different `(K, T)` than the current code.
    ///
    /// The fleet size `N` is never changed: absent workers keep their slot
    /// so they can rejoin, which is why the decision always has an empty
    /// eviction list and `reencode = true`.
    pub fn observe(
        &mut self,
        current: &SchemeConfig,
        responded: usize,
        observed_stragglers: usize,
        detected_byzantine: usize,
    ) -> Option<AdaptationDecision> {
        let workers = current.workers;
        let missing = workers.saturating_sub(responded);
        let alpha = self.config.alpha;
        self.missing_rate = alpha * missing as f64 + (1.0 - alpha) * self.missing_rate;
        self.straggler_rate =
            alpha * observed_stragglers as f64 + (1.0 - alpha) * self.straggler_rate;
        self.byzantine_rate =
            alpha * detected_byzantine as f64 + (1.0 - alpha) * self.byzantine_rate;
        if !self.config.enabled {
            return None;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }

        // Expected unusable workers per iteration, with headroom on top.
        let demand =
            self.missing_rate + self.straggler_rate + self.byzantine_rate + self.config.headroom;
        let threshold_budget = (workers as f64 - demand).floor();
        if threshold_budget < 1.0 {
            return None;
        }
        let threshold_budget = threshold_budget as usize;

        // Prefer the highest privacy level in [floor, ceiling] that still
        // leaves room for a decodable code, then the largest K that fits:
        // recovery threshold (K + T − 1)·deg + 1 ≤ threshold_budget.
        let degree = current.degree;
        let floor = self.config.privacy_floor;
        let ceiling = self.config.privacy_ceiling;
        let mut chosen = None;
        for t in (floor..=ceiling).rev() {
            let budget = (threshold_budget - 1) / degree; // max K + T − 1
            if budget + 1 > t {
                chosen = Some((budget + 1 - t, t));
                break;
            }
        }
        let (k, t) = chosen?;
        if (k, t) == (current.partitions, current.colluding) {
            return None;
        }

        let threshold = (k + t - 1) * degree + 1;
        let stragglers = workers.saturating_sub(threshold + current.byzantine);
        let new_config =
            SchemeConfig::new(workers, k, stragglers, current.byzantine, t, degree).ok()?;
        self.cooldown_left = self.config.cooldown;
        Some(AdaptationDecision {
            evict_workers: Vec::new(),
            new_config,
            reencode: true,
            slack: current.slack(observed_stragglers, detected_byzantine),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_config() -> SchemeConfig {
        SchemeConfig::linear(12, 9, 2, 1).unwrap()
    }

    #[test]
    fn quiet_iteration_needs_no_adaptation() {
        let controller = AdaptiveController::new(true);
        assert_eq!(controller.evaluate(&paper_config(), &[], &[]), None);
        // One straggler still leaves non-negative slack (12 - 0 - 1 - 9 = 2).
        assert_eq!(controller.evaluate(&paper_config(), &[], &[4]), None);
    }

    #[test]
    fn disabled_controller_never_adapts() {
        let controller = AdaptiveController::new(false);
        assert!(!controller.is_enabled());
        assert_eq!(controller.evaluate(&paper_config(), &[3], &[0, 1, 2]), None);
    }

    #[test]
    fn byzantine_detection_with_positive_slack_evicts_without_recoding_dimension() {
        let controller = AdaptiveController::new(true);
        // One Byzantine, one straggler: A_t = 12 - 1 - 1 - 9 = 1 >= 0.
        let decision = controller
            .evaluate(&paper_config(), &[7], &[2])
            .expect("eviction expected");
        assert_eq!(decision.evict_workers, vec![7]);
        assert_eq!(decision.new_config.workers, 11);
        assert_eq!(decision.new_config.partitions, 9);
        // The code dimension is unchanged, so no re-encoding is needed: the
        // remaining 11 shares of the same (12, 9) code still decode.
        assert!(!decision.reencode);
        assert_eq!(decision.slack, 1);
    }

    #[test]
    fn figure_5_scenario_recodes_to_eleven_eight() {
        // Initial (12, 9, S=2, M=1); iteration observes 3 stragglers and 1
        // Byzantine worker: A_t = 12 - 1 - 3 - 9 = -1 < 0, so the paper's
        // example re-encodes to (N=11, K=8, S=3, M=0).
        let controller = AdaptiveController::new(true);
        let decision = controller
            .evaluate(&paper_config(), &[6], &[0, 1, 2])
            .expect("re-coding expected");
        assert_eq!(decision.slack, -1);
        assert_eq!(decision.new_config.workers, 11);
        assert_eq!(decision.new_config.partitions, 8);
        assert_eq!(decision.new_config.stragglers, 3);
        assert_eq!(decision.new_config.byzantine, 0);
        assert!(decision.reencode);
    }

    #[test]
    fn lagrange_slack_uses_degree_in_the_reduction() {
        // deg f = 2, T = 1: threshold = (K + T - 1) * 2 + 1.
        let config = SchemeConfig::new(20, 4, 2, 1, 1, 2).unwrap();
        let controller = AdaptiveController::new(true);
        // threshold = 9; observe 1 Byzantine and 12 stragglers:
        // A_t = 20 - 1 - 12 - 9 = -2, reduction = ceil(2/2) = 1 partition.
        let decision = controller
            .evaluate(&config, &[0], &(1..13).collect::<Vec<_>>())
            .expect("re-coding expected");
        assert_eq!(decision.new_config.partitions, 3);
        assert_eq!(decision.new_config.workers, 19);
    }

    #[test]
    fn controller_refuses_to_shrink_below_decodability() {
        // Evicting every worker would make decoding impossible; the controller
        // must keep the current configuration rather than break the system.
        let config = SchemeConfig::linear(3, 2, 1, 0).unwrap();
        let controller = AdaptiveController::new(true);
        assert_eq!(controller.evaluate(&config, &[0, 1, 2], &[]), None);
    }

    #[test]
    fn disabled_autopilot_never_retunes_but_still_tracks_rates() {
        let mut pilot = Autopilot::new(AutopilotConfig::disabled());
        assert!(!pilot.is_enabled());
        assert_eq!(pilot.observe(&paper_config(), 8, 2, 1), None);
        let (missing, stragglers, byzantine) = pilot.rates();
        assert!(missing > 0.0 && stragglers > 0.0 && byzantine > 0.0);
    }

    #[test]
    fn autopilot_shrinks_k_under_sustained_churn_and_grows_it_back() {
        let mut config = AutopilotConfig::with_privacy(0);
        config.cooldown = 0;
        let mut pilot = Autopilot::new(config);
        let mut coding = paper_config(); // (12, 9, S=2, M=1)

        // Four workers churned away every iteration: the smoothed demand
        // grows until K must drop below 9.
        let mut shrunk = None;
        for _ in 0..20 {
            if let Some(decision) = pilot.observe(&coding, 8, 0, 0) {
                assert!(decision.evict_workers.is_empty(), "slots must be kept");
                assert!(decision.reencode);
                assert_eq!(decision.new_config.workers, 12, "N never changes");
                coding = decision.new_config;
                shrunk = Some(coding);
            }
        }
        let shrunk = shrunk.expect("sustained churn must shrink the code");
        assert!(shrunk.partitions < 9);

        // The fleet heals: every slot responds again, and the autopilot
        // grows K back past the original 9 to reclaim throughput.
        let mut grown = None;
        for _ in 0..30 {
            if let Some(decision) = pilot.observe(&coding, 12, 0, 0) {
                coding = decision.new_config;
                grown = Some(coding);
            }
        }
        let grown = grown.expect("a healed fleet must grow the code back");
        assert!(grown.partitions > shrunk.partitions);
    }

    #[test]
    fn autopilot_raises_privacy_toward_the_ceiling_when_the_fleet_has_slack() {
        let mut config = AutopilotConfig::with_privacy(0);
        config.privacy_ceiling = 2;
        config.cooldown = 0;
        let mut pilot = Autopilot::new(config);
        let coding = paper_config();
        let decision = pilot
            .observe(&coding, 12, 0, 0)
            .expect("a quiet fleet leaves slack to spend");
        // T jumps to the ceiling; K fills the remaining threshold budget.
        assert_eq!(decision.new_config.colluding, 2);
        let threshold = decision.new_config.recovery_threshold();
        assert!(threshold <= 11, "headroom of 1 worker must be kept");
    }

    #[test]
    fn autopilot_cooldown_spaces_retunes() {
        let mut config = AutopilotConfig::with_privacy(0);
        config.cooldown = 3;
        let mut pilot = Autopilot::new(config);
        let coding = paper_config();
        // First observation retunes (quiet fleet grows K), then the cooldown
        // must swallow the next three even though the demand is unchanged.
        assert!(pilot.observe(&coding, 12, 0, 0).is_some());
        assert!(pilot.observe(&coding, 12, 0, 0).is_none());
        assert!(pilot.observe(&coding, 12, 0, 0).is_none());
        assert!(pilot.observe(&coding, 12, 0, 0).is_none());
        assert!(pilot.observe(&coding, 12, 0, 0).is_some());
    }

    #[test]
    fn autopilot_refuses_an_undecodable_budget() {
        let mut config = AutopilotConfig::with_privacy(0);
        config.cooldown = 0;
        config.headroom = 0.0;
        config.alpha = 1.0;
        let mut pilot = Autopilot::new(config);
        let coding = SchemeConfig::linear(4, 2, 1, 1).unwrap();
        // Everything churned away: no decodable code fits, so no decision.
        for _ in 0..5 {
            assert_eq!(pilot.observe(&coding, 0, 0, 0), None);
        }
    }

    #[test]
    #[should_panic(expected = "privacy floor")]
    fn autopilot_rejects_inverted_privacy_bounds() {
        let mut config = AutopilotConfig::with_privacy(3);
        config.privacy_ceiling = 1;
        let _ = Autopilot::new(config);
    }

    #[test]
    fn deep_shrinkage_stays_decodable() {
        // Two of three workers evicted: the controller shrinks all the way to
        // a single-partition code rather than refusing.
        let config = SchemeConfig::linear(3, 2, 1, 0).unwrap();
        let controller = AdaptiveController::new(true);
        let decision = controller.evaluate(&config, &[0, 1], &[2]).unwrap();
        assert_eq!(decision.new_config.workers, 1);
        assert_eq!(decision.new_config.partitions, 1);
    }
}
