//! The distributed training driver: one object per (scheme, cluster, fault
//! scenario) that runs the paper's two-round logistic-regression protocol for
//! a configured number of iterations and records everything the experiments
//! need.
//!
//! One iteration (§IV-A) is:
//!
//! 1. quantize the current weights and run **round 1** (`z = X w`) through the
//!    scheme's engine;
//! 2. dequantize, apply the sigmoid, form the error vector `e = h(z) − y` and
//!    quantize it;
//! 3. run **round 2** (`g = Xᵀ e`) through the scheme's second engine;
//! 4. dequantize the gradient, update the model, evaluate test accuracy;
//! 5. (AVCC only) let the [`AdaptiveController`] evict detected Byzantine
//!    workers and re-encode if the straggler slack went negative, charging the
//!    one-time re-encoding and re-distribution cost to this iteration.

use std::sync::Arc;

use avcc_coding::{EncodedDataset, SchemeConfig};
use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_ml::logistic::LogisticModel;
use avcc_ml::quantized::QuantizedProtocol;
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::churn::{ChurnEvent, ChurnEventKind};
use avcc_sim::cluster::ClusterProfile;
use avcc_sim::executor::{VirtualExecutor, WorkerOutcome};
use avcc_verify::KeyGenConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::adaptive::{AdaptiveController, Autopilot, AutopilotConfig};
use crate::engines::{AvccMatVec, LccMatVec, MatVecEngine, UncodedMatVec};
use crate::problem::TrainingProblem;
use crate::report::{IterationRecord, TrainingReport};
use crate::rounds::{field_vector_bytes, RoundExecution, RoundTask, SchemeFailure};

/// The four schemes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// No redundancy, no verification (the paper's uncoded baseline).
    Uncoded,
    /// Lagrange coded computing with Reed–Solomon Byzantine handling.
    Lcc,
    /// Adaptive verifiable coded computing (the paper's contribution).
    Avcc,
    /// AVCC without dynamic re-coding (the Fig. 5 ablation).
    StaticVcc,
}

impl SchemeKind {
    /// Short label used in reports and table rows.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Uncoded => "uncoded",
            SchemeKind::Lcc => "lcc",
            SchemeKind::Avcc => "avcc",
            SchemeKind::StaticVcc => "static-vcc",
        }
    }

    /// Whether the scheme verifies results with Freivalds keys.
    pub fn verifies(&self) -> bool {
        matches!(self, SchemeKind::Avcc | SchemeKind::StaticVcc)
    }

    /// Whether the scheme adapts its coding dynamically.
    pub fn adapts(&self) -> bool {
        matches!(self, SchemeKind::Avcc)
    }
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Which scheme to run.
    pub scheme: SchemeKind,
    /// The coding configuration `(N, K, S, M, T, deg f)`.
    pub coding: SchemeConfig,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of training iterations.
    pub iterations: usize,
    /// Freivalds key repetitions (AVCC/Static VCC only).
    pub key_repetitions: usize,
    /// Simulator compute-time scale factor.
    pub time_scale: f64,
    /// RNG seed for encoding pads, keys and decode fingerprints.
    pub seed: u64,
    /// Whether the AVCC engines run the pre-decode dual-codeword screen
    /// (see [`AvccMatVec::with_screening`]). On by default; the
    /// paper-figure experiment driver turns it off for fidelity to the
    /// paper's cost model.
    pub screen: bool,
    /// The churn-aware closed-loop [`Autopilot`] knobs. Disabled by default;
    /// when enabled (verifying schemes only) it replaces the permanent-
    /// eviction [`AdaptiveController`] so churned workers keep their fleet
    /// slot and may rejoin.
    pub autopilot: AutopilotConfig,
    /// How many times a parked round may be re-dispatched to the same fleet
    /// (waiting for churned workers to rejoin) before the driver gives up
    /// waiting and shrink-recodes to a smaller `K` instead.
    pub stall_budget: usize,
}

impl TrainerConfig {
    /// The paper's default hyperparameters (50 iterations).
    pub fn paper_defaults(scheme: SchemeKind, coding: SchemeConfig) -> Self {
        TrainerConfig {
            scheme,
            coding,
            learning_rate: 5.0,
            iterations: 50,
            key_repetitions: 1,
            time_scale: 40.0,
            seed: 42,
            screen: true,
            autopilot: AutopilotConfig::disabled(),
            stall_budget: 4,
        }
    }
}

/// The two distributed rounds of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingRound {
    /// Round 1: `z = X w` over the quantized weights.
    Round1,
    /// Round 2: `g = Xᵀ e` over the quantized error vector.
    Round2,
}

/// Master-side state of a partially executed iteration (the staged pipeline
/// API: [`DistributedTrainer::encode_round1`] →
/// [`DistributedTrainer::collect_round1`] →
/// [`DistributedTrainer::collect_round2`]).
struct InflightIteration<M: PrimeModulus> {
    round1_input: Vec<Fp<M>>,
    round1: Option<RoundExecution<M>>,
    round2_input: Option<Vec<Fp<M>>>,
}

/// The distributed trainer.
pub struct DistributedTrainer<M: PrimeModulus> {
    config: TrainerConfig,
    problem: TrainingProblem,
    protocol: QuantizedProtocol,
    model: LogisticModel,
    executor: VirtualExecutor,
    byzantine: ByzantineSpec,
    round1: Box<dyn MatVecEngine<M>>,
    round2: Box<dyn MatVecEngine<M>>,
    round1_matrix: Matrix<Fp<M>>,
    round2_matrix: Matrix<Fp<M>>,
    controller: AdaptiveController,
    autopilot: Autopilot,
    current_coding: SchemeConfig,
    rng: StdRng,
    scenario_label: String,
    inflight: Option<InflightIteration<M>>,
    fleet_events: Vec<ChurnEvent>,
    pending_reconfiguration: f64,
    live_hint: Option<usize>,
}

impl<M: PrimeModulus> DistributedTrainer<M> {
    /// Builds a trainer for the given problem, cluster and fault injection.
    ///
    /// The cluster profile must have `coding.workers` entries; the uncoded
    /// scheme uses only the first `coding.partitions` of them (as in the
    /// paper, where 9 of the 12 nodes participate in the uncoded baseline).
    pub fn new(
        problem: TrainingProblem,
        cluster: ClusterProfile,
        byzantine: ByzantineSpec,
        config: TrainerConfig,
        scenario_label: impl Into<String>,
    ) -> Self {
        assert_eq!(
            cluster.len(),
            config.coding.workers,
            "cluster profile has {} workers but the coding scheme expects {}",
            cluster.len(),
            config.coding.workers
        );
        assert!(
            !config.autopilot.enabled || config.scheme.verifies(),
            "the autopilot re-encodes through the AVCC engines and needs a verifying scheme, \
             not {:?}",
            config.scheme
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let protocol = problem.default_protocol::<M>();
        let round1_matrix = problem.round1_matrix::<M>(&protocol);
        let round2_matrix = problem.round2_matrix::<M>(&protocol);
        let key_config = KeyGenConfig {
            repetitions: config.key_repetitions.max(1),
        };

        let (round1, round2, executor): (
            Box<dyn MatVecEngine<M>>,
            Box<dyn MatVecEngine<M>>,
            VirtualExecutor,
        ) = match config.scheme {
            SchemeKind::Uncoded => {
                let participants = config.coding.partitions;
                let executor = VirtualExecutor::new(cluster.truncated(participants))
                    .with_time_scale(config.time_scale);
                let dataset1 = Arc::new(EncodedDataset::partitioned(&round1_matrix, participants));
                let dataset2 = Arc::new(EncodedDataset::partitioned(&round2_matrix, participants));
                (
                    Box::new(UncodedMatVec::over(dataset1)),
                    Box::new(UncodedMatVec::over(dataset2)),
                    executor,
                )
            }
            SchemeKind::Lcc => {
                let executor = VirtualExecutor::new(cluster).with_time_scale(config.time_scale);
                let dataset1 = Arc::new(EncodedDataset::encode(
                    &round1_matrix,
                    config.coding,
                    &mut rng,
                ));
                let dataset2 = Arc::new(EncodedDataset::encode(
                    &round2_matrix,
                    config.coding,
                    &mut rng,
                ));
                (
                    Box::new(LccMatVec::over(dataset1)),
                    Box::new(LccMatVec::over(dataset2)),
                    executor,
                )
            }
            SchemeKind::Avcc | SchemeKind::StaticVcc => {
                let executor = VirtualExecutor::new(cluster).with_time_scale(config.time_scale);
                // Dataset then keys, per round, to keep the rng stream
                // identical to the pre-dataset construction order.
                let dataset1 = Arc::new(EncodedDataset::encode(
                    &round1_matrix,
                    config.coding,
                    &mut rng,
                ));
                let engine1 =
                    AvccMatVec::over(dataset1, key_config, &mut rng).with_screening(config.screen);
                let dataset2 = Arc::new(EncodedDataset::encode(
                    &round2_matrix,
                    config.coding,
                    &mut rng,
                ));
                let engine2 =
                    AvccMatVec::over(dataset2, key_config, &mut rng).with_screening(config.screen);
                (Box::new(engine1), Box::new(engine2), executor)
            }
        };

        let model = LogisticModel::zeros(problem.features());
        DistributedTrainer {
            controller: AdaptiveController::new(config.scheme.adapts()),
            autopilot: Autopilot::new(config.autopilot),
            current_coding: config.coding,
            config,
            problem,
            protocol,
            model,
            executor,
            byzantine,
            round1,
            round2,
            round1_matrix,
            round2_matrix,
            rng,
            scenario_label: scenario_label.into(),
            inflight: None,
            fleet_events: Vec::new(),
            pending_reconfiguration: 0.0,
            live_hint: None,
        }
    }

    /// The current model (scaled-feature space).
    pub fn model(&self) -> &LogisticModel {
        &self.model
    }

    /// The coding configuration currently in effect (changes under dynamic
    /// coding).
    pub fn current_coding(&self) -> &SchemeConfig {
        &self.current_coding
    }

    /// The quantization protocol in use.
    pub fn protocol(&self) -> &QuantizedProtocol {
        &self.protocol
    }

    /// The cluster profile the trainer currently executes against (shrinks
    /// when the dynamic-coding controller evicts workers).
    pub fn cluster(&self) -> &ClusterProfile {
        self.executor.profile()
    }

    /// The Byzantine specification currently in effect.
    pub fn byzantine(&self) -> &ByzantineSpec {
        &self.byzantine
    }

    /// The configured number of training iterations.
    pub fn iterations(&self) -> usize {
        self.config.iterations
    }

    /// The scheme being trained.
    pub fn scheme(&self) -> SchemeKind {
        self.config.scheme
    }

    /// The scenario label reports are tagged with.
    pub fn scenario_label(&self) -> &str {
        &self.scenario_label
    }

    /// Combined `(hits, misses)` of both round engines' decoder basis caches
    /// (see [`MatVecEngine::decode_cache_stats`]); zeros for schemes that do
    /// not decode.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        let (h1, m1) = self.round1.decode_cache_stats();
        let (h2, m2) = self.round2.decode_cache_stats();
        (h1 + h2, m1 + m2)
    }

    /// The number of workers the given round dispatches to.
    pub fn round_workers(&self, round: TrainingRound) -> usize {
        match round {
            TrainingRound::Round1 => self.round1.workers(),
            TrainingRound::Round2 => self.round2.workers(),
        }
    }

    /// The minimum number of arrived results the given round's collect needs
    /// before it can possibly succeed (see [`MatVecEngine::min_results`]).
    pub fn round_min_results(&self, round: TrainingRound) -> usize {
        match round {
            TrainingRound::Round1 => self.round1.min_results(),
            TrainingRound::Round2 => self.round2.min_results(),
        }
    }

    /// Runs the configured number of iterations and returns the full report.
    pub fn train(&mut self) -> Result<TrainingReport, SchemeFailure> {
        let mut report = TrainingReport::new(self.config.scheme.label(), &self.scenario_label);
        let mut cumulative = 0.0;
        for iteration in 0..self.config.iterations {
            let record = self.run_iteration(iteration, &mut cumulative)?;
            report.push(record);
        }
        Ok(report)
    }

    /// Runs a single iteration, returning its record. Exposed so scenario
    /// scripts (e.g. Fig. 5) can change fault conditions between iterations.
    ///
    /// A thin wrapper over the staged pipeline API, driving both rounds on
    /// the trainer's serial [`VirtualExecutor`]; it is the behaviour oracle
    /// the serving scheduler's results are compared against.
    pub fn run_iteration(
        &mut self,
        iteration: usize,
        cumulative: &mut f64,
    ) -> Result<IterationRecord, SchemeFailure> {
        let result = (|| {
            let round1_tasks = self.encode_round1();
            let round1_outcomes = self.run_virtual(round1_tasks);
            let round2_tasks = self.collect_round1(&round1_outcomes)?;
            let round2_outcomes = self.run_virtual(round2_tasks);
            self.collect_round2(iteration, &round2_outcomes, cumulative)
        })();
        if result.is_err() {
            self.reset_pipeline();
        }
        result
    }

    /// Stage 1 of the pipeline: quantizes the current weights and builds the
    /// round-1 worker tasks. The caller owns executing them (on any executor
    /// or fleet) and feeding the arrival-ordered outcomes to
    /// [`DistributedTrainer::collect_round1`].
    ///
    /// # Panics
    /// Panics if an iteration is already in flight — collect it or call
    /// [`DistributedTrainer::reset_pipeline`] first.
    pub fn encode_round1(&mut self) -> Vec<RoundTask<M>> {
        assert!(
            self.inflight.is_none(),
            "an iteration is already in flight; collect it or reset the pipeline first"
        );
        let w_field = self.protocol.quantize_weights::<M>(&self.model.weights);
        let tasks = self.round1.dispatch(&w_field);
        self.inflight = Some(InflightIteration {
            round1_input: w_field,
            round1: None,
            round2_input: None,
        });
        tasks
    }

    /// Stage 2: collects round 1 (`z = X w`), forms the quantized error
    /// vector on the master and builds the round-2 tasks.
    ///
    /// On a *retryable* failure (e.g. [`SchemeFailure::NotEnoughResults`]
    /// because a Byzantine payload sat inside an exactly-threshold prefix)
    /// the in-flight state is preserved, so the caller may call again with
    /// more outcomes.
    ///
    /// # Panics
    /// Panics if no iteration is in flight or round 1 was already collected.
    pub fn collect_round1(
        &mut self,
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
    ) -> Result<Vec<RoundTask<M>>, SchemeFailure> {
        let inflight = self
            .inflight
            .as_mut()
            .expect("collect_round1 called with no iteration in flight");
        assert!(
            inflight.round1.is_none(),
            "round 1 of the in-flight iteration was already collected"
        );
        let execution = self.round1.collect(
            &inflight.round1_input,
            outcomes,
            &self.executor.profile().network,
            self.executor.time_scale,
            &mut self.rng,
        )?;
        let errors = self
            .protocol
            .error_vector(&execution.output, &self.problem.train_labels);
        let e_field = self.protocol.quantize_error::<M>(&errors);
        let tasks = self.round2.dispatch(&e_field);
        inflight.round1 = Some(execution);
        inflight.round2_input = Some(e_field);
        Ok(tasks)
    }

    /// Stage 3: collects round 2 (`g = Xᵀ e`), applies the gradient, runs the
    /// adaptive controller and closes the iteration with its record.
    ///
    /// Retryable failures preserve the in-flight state exactly as in
    /// [`DistributedTrainer::collect_round1`].
    ///
    /// # Panics
    /// Panics if round 1 of the in-flight iteration has not been collected.
    pub fn collect_round2(
        &mut self,
        iteration: usize,
        outcomes: &[WorkerOutcome<Vec<Fp<M>>>],
        cumulative: &mut f64,
    ) -> Result<IterationRecord, SchemeFailure> {
        let inflight = self
            .inflight
            .as_ref()
            .expect("collect_round2 called with no iteration in flight");
        let e_field = inflight
            .round2_input
            .as_ref()
            .expect("collect_round2 called before round 1 was collected");
        let round2 = self.round2.collect(
            e_field,
            outcomes,
            &self.executor.profile().network,
            self.executor.time_scale,
            &mut self.rng,
        )?;
        let round1 = self
            .inflight
            .take()
            .and_then(|inflight| inflight.round1)
            .expect("in-flight round 1 execution present");
        let gradient = self.protocol.dequantize_round2(&round2.output);
        self.model
            .apply_gradient(&gradient, self.config.learning_rate, self.problem.samples());

        // Bookkeeping.
        let mut costs = round1.costs.combined(&round2.costs);
        let ops = round1.ops.combined(&round2.ops);
        let mut detected: Vec<usize> = round1
            .detected_byzantine
            .iter()
            .chain(round2.detected_byzantine.iter())
            .copied()
            .collect();
        detected.sort_unstable();
        detected.dedup();
        let mut stragglers: Vec<usize> = round1
            .observed_stragglers
            .iter()
            .chain(round2.observed_stragglers.iter())
            .copied()
            .collect();
        stragglers.sort_unstable();
        stragglers.dedup();
        let mut screened: Vec<usize> = round1
            .screened_workers
            .iter()
            .chain(round2.screened_workers.iter())
            .copied()
            .collect();
        screened.sort_unstable();
        screened.dedup();

        // A shrink-recode performed between iterations (stall budget
        // exhausted) already re-encoded; charge its deferred cost to the
        // iteration that restarted on the new code.
        let mut reconfigured = self.pending_reconfiguration > 0.0;
        costs.reconfiguration = std::mem::take(&mut self.pending_reconfiguration);

        // Dynamic coding. The churn-aware autopilot (when enabled) replaces
        // the paper's permanent-eviction controller: every fleet slot is
        // kept so churned workers may rejoin, and `(K, T)` is retuned in
        // both directions from smoothed observations.
        //
        // A pipelined scheduler stops collecting at `needed` results, so
        // `outcomes.len()` under-reports how many workers were actually
        // live; the live hint (set per round by such callers) corrects the
        // missing-worker estimate.
        let responded = self
            .live_hint
            .take()
            .map_or(outcomes.len(), |live| live.max(outcomes.len()));
        if self.autopilot.is_enabled() {
            if let Some(decision) = self.autopilot.observe(
                &self.current_coding,
                responded,
                stragglers.len(),
                detected.len(),
            ) {
                costs.reconfiguration +=
                    self.apply_adaptation(&[], decision.new_config, decision.reencode);
                reconfigured |= decision.reencode;
                self.fleet_events.push(ChurnEvent {
                    round: iteration as u64,
                    worker: responded,
                    kind: ChurnEventKind::AutopilotRetune,
                });
            }
        } else if let Some(decision) =
            self.controller
                .evaluate(&self.current_coding, &detected, &stragglers)
        {
            costs.reconfiguration += self.apply_adaptation(
                &decision.evict_workers,
                decision.new_config,
                decision.reencode,
            );
            reconfigured |= decision.reencode;
        }

        *cumulative += costs.total();
        let test_accuracy = self
            .model
            .evaluate_accuracy(&self.problem.test_features, &self.problem.test_labels);
        let train_loss = self
            .model
            .evaluate_loss(&self.problem.train_features, &self.problem.train_labels);
        Ok(IterationRecord {
            iteration,
            costs,
            ops,
            cumulative_seconds: *cumulative,
            test_accuracy,
            train_loss,
            detected_byzantine: detected,
            screened_workers: screened,
            observed_stragglers: stragglers,
            reconfigured,
        })
    }

    /// Abandons any partially executed iteration, returning the trainer to a
    /// state where [`DistributedTrainer::encode_round1`] may be called.
    pub fn reset_pipeline(&mut self) {
        self.inflight = None;
    }

    /// Runs round tasks on the trainer's own serial virtual executor with its
    /// Byzantine spec applied — the synchronous compute stage.
    fn run_virtual(&self, tasks: Vec<RoundTask<M>>) -> Vec<WorkerOutcome<Vec<Fp<M>>>> {
        let jobs: Vec<_> = tasks.into_iter().map(|task| move || task.run()).collect();
        self.executor.run_round(
            jobs,
            |payload: &Vec<Fp<M>>| field_vector_bytes(payload.len()),
            |worker, payload: &mut Vec<Fp<M>>| self.byzantine.corrupt(worker, payload),
        )
    }

    /// Evicts workers, rebuilds the engines for the new configuration and
    /// returns the one-time reconfiguration cost in simulated seconds.
    ///
    /// Following the paper's preprocessing note (§IV-B step 5), the encodings
    /// and verification keys for alternative `(N, K)` configurations are
    /// treated as generated offline before training, so the cost charged to
    /// the critical path is the *re-distribution* of the coded data to the
    /// workers (the ~41 second one-time cost in Fig. 5) — and only when the
    /// code dimension actually changed. A pure eviction keeps the same code
    /// and moves no data.
    fn apply_adaptation(
        &mut self,
        evicted: &[usize],
        new_config: SchemeConfig,
        reencode: bool,
    ) -> f64 {
        let new_profile = self.executor.profile().without_workers(evicted);
        self.byzantine = self.byzantine.reindexed_after_removal(evicted);
        self.executor.set_profile(new_profile);

        let key_config = KeyGenConfig {
            repetitions: self.config.key_repetitions.max(1),
        };
        let dataset1 = Arc::new(EncodedDataset::<M>::encode(
            &self.round1_matrix,
            new_config,
            &mut self.rng,
        ));
        let engine1 = AvccMatVec::over(dataset1, key_config, &mut self.rng)
            .with_screening(self.config.screen);
        let dataset2 = Arc::new(EncodedDataset::<M>::encode(
            &self.round2_matrix,
            new_config,
            &mut self.rng,
        ));
        let engine2 = AvccMatVec::over(dataset2, key_config, &mut self.rng)
            .with_screening(self.config.screen);
        let redistribution_seconds = if reencode {
            let shipped_bytes = engine1.encoded_bytes() + engine2.encoded_bytes();
            // The master pushes every worker its new share over its single
            // uplink, so the transfers serialize.
            let network = self.executor.profile().network;
            network.base_latency_seconds * new_config.workers as f64
                + network.transfer_seconds(shipped_bytes)
        } else {
            0.0
        };
        self.round1 = Box::new(engine1);
        self.round2 = Box::new(engine2);
        self.current_coding = new_config;
        redistribution_seconds
    }

    /// Updates the straggler set of the cluster mid-run (used by scenario
    /// scripts such as Fig. 5 where stragglers appear at a given iteration).
    pub fn set_stragglers(&mut self, stragglers: &[usize], multiplier: f64) {
        self.executor
            .profile_mut()
            .set_stragglers(stragglers, multiplier);
    }

    /// Replaces the Byzantine specification mid-run.
    pub fn set_byzantine(&mut self, byzantine: ByzantineSpec) {
        self.byzantine = byzantine;
    }

    /// How many re-dispatches a parked round is allowed before the driver
    /// shrink-recodes (see [`DistributedTrainer::shrink_to_fit`]).
    pub fn stall_budget(&self) -> usize {
        self.config.stall_budget
    }

    /// Reports how many workers were actually live in the iteration about to
    /// be collected. Callers that stop collecting at the decode threshold
    /// (the pipelined scheduler) must set this every iteration, or the
    /// autopilot would mistake the never-awaited workers for churned-out
    /// ones and shrink the code indefinitely. Consumed by the next
    /// [`DistributedTrainer::collect_round2`]; the synchronous driver, whose
    /// executors return every live worker, never needs it.
    pub fn set_live_hint(&mut self, live: usize) {
        self.live_hint = Some(live);
    }

    /// The churn-aware autopilot (its smoothed rates are inspectable even
    /// when disabled — they stay at zero because nothing feeds them).
    pub fn autopilot(&self) -> &Autopilot {
        &self.autopilot
    }

    /// Fleet-level lifecycle events recorded by the driver and its callers:
    /// parks, resumes, shrink-recodes and autopilot retunes, stamped with
    /// the training-iteration clock.
    pub fn fleet_events(&self) -> &[ChurnEvent] {
        &self.fleet_events
    }

    /// Records a fleet-level lifecycle event (the `worker` field of
    /// fleet-level [`ChurnEvent`]s carries the responding-worker count).
    pub fn note_fleet_event(&mut self, round: u64, workers: usize, kind: ChurnEventKind) {
        self.fleet_events.push(ChurnEvent {
            round,
            worker: workers,
            kind,
        });
    }

    /// Shrink-recodes after a parked round exhausted its stall budget: every
    /// fleet slot is kept (absent workers may still rejoin, and the autopilot
    /// may later grow `K` back), but `K` is lowered so the recovery threshold
    /// fits the `available` workers that are actually responding.
    ///
    /// Abandons any in-flight iteration (the caller restarts it on the new
    /// code) and defers the re-encoding cost to the restarted iteration's
    /// record. Returns the original failure when no strictly smaller
    /// decodable code exists or the scheme's engines cannot re-encode
    /// (non-verifying schemes).
    pub fn shrink_to_fit(
        &mut self,
        round: u64,
        available: usize,
        required: usize,
    ) -> Result<(), SchemeFailure> {
        let fail = || SchemeFailure::NotEnoughResults {
            available,
            required,
        };
        if !self.config.scheme.verifies() || available == 0 {
            return Err(fail());
        }
        let current = self.current_coding;
        // Largest K with (K + T − 1)·deg + 1 ≤ available.
        let budget = (available - 1) / current.degree;
        let Some(k) = (budget + 1).checked_sub(current.colluding) else {
            return Err(fail());
        };
        if k == 0 || k >= current.partitions {
            // No decodable code fits, or shrinking cannot lower the
            // threshold any further: waiting longer is the only option left.
            return Err(fail());
        }
        let threshold = (k + current.colluding - 1) * current.degree + 1;
        let stragglers = current
            .workers
            .saturating_sub(threshold + current.byzantine);
        let new_config = SchemeConfig::new(
            current.workers,
            k,
            stragglers,
            current.byzantine,
            current.colluding,
            current.degree,
        )
        .map_err(|_| fail())?;
        self.reset_pipeline();
        self.pending_reconfiguration += self.apply_adaptation(&[], new_config, true);
        self.note_fleet_event(round, available, ChurnEventKind::ShrinkRecoded);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::P25;
    use avcc_ml::dataset::{Dataset, DatasetConfig};
    use avcc_sim::attack::AttackModel;

    fn small_problem() -> TrainingProblem {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 180,
            test_samples: 60,
            features: 27,
            informative: 9,
            ..DatasetConfig::default()
        });
        TrainingProblem::from_dataset(&dataset, 9)
    }

    fn quick_config(scheme: SchemeKind, s: usize, m: usize) -> TrainerConfig {
        TrainerConfig {
            iterations: 6,
            time_scale: 1.0,
            ..TrainerConfig::paper_defaults(scheme, SchemeConfig::linear(12, 9, s, m).unwrap())
        }
    }

    #[test]
    fn avcc_trains_and_detects_byzantine_workers() {
        let problem = small_problem();
        let cluster = ClusterProfile::uniform(12).with_stragglers(&[0], 10.0);
        let byzantine = ByzantineSpec::new([3], AttackModel::constant());
        let mut trainer = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            byzantine,
            quick_config(SchemeKind::Avcc, 2, 1),
            "test",
        );
        let report = trainer.train().unwrap();
        assert_eq!(report.len(), 6);
        assert!(
            report.total_detections() > 0,
            "the Byzantine worker must be caught"
        );
        assert!(report.final_accuracy() > 0.5);
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn uncoded_trainer_runs_but_cannot_detect() {
        let problem = small_problem();
        let cluster = ClusterProfile::uniform(12);
        let byzantine = ByzantineSpec::new([3], AttackModel::constant());
        let mut trainer = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            byzantine,
            quick_config(SchemeKind::Uncoded, 0, 0),
            "test",
        );
        let report = trainer.train().unwrap();
        assert_eq!(report.total_detections(), 0);
    }

    #[test]
    fn lcc_trainer_detects_within_design() {
        let problem = small_problem();
        let cluster = ClusterProfile::uniform(12);
        let byzantine = ByzantineSpec::new([5], AttackModel::reverse());
        let mut trainer = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            byzantine,
            quick_config(SchemeKind::Lcc, 1, 1),
            "test",
        );
        let report = trainer.train().unwrap();
        assert!(report.total_detections() > 0);
    }

    #[test]
    fn static_vcc_never_reconfigures() {
        let problem = small_problem();
        let cluster = ClusterProfile::uniform(12).with_stragglers(&[0, 1, 2], 10.0);
        let byzantine = ByzantineSpec::new([4], AttackModel::constant());
        let mut trainer = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            byzantine,
            quick_config(SchemeKind::StaticVcc, 2, 1),
            "test",
        );
        let report = trainer.train().unwrap();
        assert_eq!(report.reconfiguration_count(), 0);
        assert_eq!(trainer.current_coding().workers, 12);
    }

    #[test]
    fn avcc_reconfigures_under_straggler_pressure() {
        let problem = small_problem();
        // Three stragglers plus one Byzantine node exceed the (S=2, M=1)
        // budget, so the controller must re-encode (the Fig. 5 scenario).
        let cluster = ClusterProfile::uniform(12).with_stragglers(&[0, 1, 2], 10.0);
        let byzantine = ByzantineSpec::new([4], AttackModel::constant());
        let mut trainer = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            byzantine,
            quick_config(SchemeKind::Avcc, 2, 1),
            "test",
        );
        let report = trainer.train().unwrap();
        assert!(report.reconfiguration_count() >= 1);
        assert!(trainer.current_coding().workers < 12);
        // The re-encoding iteration carries a one-off cost.
        assert!(report
            .iterations
            .iter()
            .any(|r| r.costs.reconfiguration > 0.0));
    }

    #[test]
    fn staged_pipeline_matches_run_iteration_bit_for_bit() {
        // The staged API driven by hand must produce the exact model the
        // synchronous wrapper produces: `train()` is the behaviour oracle for
        // every scheduler built on the stages.
        let make = || {
            DistributedTrainer::<P25>::new(
                small_problem(),
                ClusterProfile::uniform(12).with_stragglers(&[0], 10.0),
                ByzantineSpec::new([3], AttackModel::constant()),
                quick_config(SchemeKind::Avcc, 2, 1),
                "test",
            )
        };
        let mut synchronous = make();
        let report = synchronous.train().unwrap();

        let mut staged = make();
        let mut cumulative = 0.0;
        for iteration in 0..staged.iterations() {
            let round1_tasks = staged.encode_round1();
            assert_eq!(
                round1_tasks.len(),
                staged.round_workers(TrainingRound::Round1)
            );
            let round1_outcomes = staged.run_virtual(round1_tasks);
            let round2_tasks = staged.collect_round1(&round1_outcomes).unwrap();
            let round2_outcomes = staged.run_virtual(round2_tasks);
            let record = staged
                .collect_round2(iteration, &round2_outcomes, &mut cumulative)
                .unwrap();
            assert!(record.ops.total() > 0, "op counts must be recorded");
        }
        assert_eq!(staged.model().weights, synchronous.model().weights);
        let staged_accuracy = staged
            .model()
            .evaluate_accuracy(&staged.problem.test_features, &staged.problem.test_labels);
        assert_eq!(staged_accuracy, report.final_accuracy());
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_encode_without_collect_panics() {
        let mut trainer = DistributedTrainer::<P25>::new(
            small_problem(),
            ClusterProfile::uniform(12),
            ByzantineSpec::none(),
            quick_config(SchemeKind::Avcc, 2, 1),
            "test",
        );
        let _ = trainer.encode_round1();
        let _ = trainer.encode_round1();
    }

    #[test]
    fn reset_pipeline_abandons_the_inflight_iteration() {
        let mut trainer = DistributedTrainer::<P25>::new(
            small_problem(),
            ClusterProfile::uniform(12),
            ByzantineSpec::none(),
            quick_config(SchemeKind::Avcc, 2, 1),
            "test",
        );
        let _ = trainer.encode_round1();
        trainer.reset_pipeline();
        // Encoding again after a reset must be allowed.
        let tasks = trainer.encode_round1();
        assert_eq!(tasks.len(), 12);
    }

    #[test]
    #[should_panic(expected = "cluster profile has")]
    fn mismatched_cluster_size_panics() {
        let problem = small_problem();
        let cluster = ClusterProfile::uniform(10);
        let _ = DistributedTrainer::<P25>::new(
            problem,
            cluster,
            ByzantineSpec::none(),
            quick_config(SchemeKind::Avcc, 2, 1),
            "test",
        );
    }
}
