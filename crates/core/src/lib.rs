//! The AVCC framework: execution strategies, adaptive dynamic coding and the
//! distributed training driver.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrates: it glues the coding layer (`avcc-coding`), the verification
//! layer (`avcc-verify`), the cluster simulator (`avcc-sim`) and the ML
//! workload (`avcc-ml`) into the four schemes the paper evaluates:
//!
//! | Scheme | Straggler handling | Byzantine handling | Privacy |
//! |---|---|---|---|
//! | `Uncoded` | none (waits for every worker) | none (corruption flows into the model) | none |
//! | `Lcc` | MDS/Lagrange coding, waits for `N−S` results | Reed–Solomon error decoding (costs `2M` workers) | Lagrange pads |
//! | `Avcc` | MDS/Lagrange coding, decodes from the fastest verified results | per-result Freivalds verification (costs `M` workers) + dynamic re-coding | Lagrange pads |
//! | `StaticVcc` | as AVCC | as AVCC but without dynamic re-coding | Lagrange pads |
//!
//! The top-level entry point is [`experiment::run_experiment`], which builds a
//! [`driver::DistributedTrainer`] for a requested
//! [`experiment::ExperimentConfig`] and returns a [`report::TrainingReport`]
//! with per-iteration cost breakdowns, accuracy trajectories and detected
//! Byzantine workers — everything needed to regenerate the paper's Figures 3–5
//! and Table I.
//!
//! # What each scheme waits for (and pays)
//!
//! The schemes differ most concretely in their per-round *stopping rule*
//! and in which master-side costs they incur. With `N` workers, `K` data
//! blocks, `S` stragglers and `M` Byzantine workers tolerated, `T` privacy
//! pads and polynomial degree `deg f`:
//!
//! | Scheme | Feasibility bound | Waits for | Master-side overhead |
//! |---|---|---|---|
//! | `Uncoded` | `N ≥ K` | **all** `N` results (stragglers included) | reassembly only |
//! | `Lcc` | `N ≥ (K+T−1)·deg f + S + 2M + 1` (eq. 1) | the fastest `N − S` | Berlekamp–Welch error decoding on fingerprints to locate Byzantine results |
//! | `Avcc` / `StaticVcc` | `N ≥ (K+T−1)·deg f + S + M + 1` (eq. 2) | the fastest `(K+T−1)·deg f + 1` **verified** results | per-result Freivalds check + erasure-only interpolation |
//!
//! The paper's headline trade is visible in the bounds: verification lets
//! AVCC spend `M` workers on Byzantine tolerance where LCC spends `2M`,
//! and arrival-order verification lets it decode as soon as enough *good*
//! results exist instead of waiting out a fixed straggler budget.
//!
//! # Adaptivity
//!
//! What separates `Avcc` from `StaticVcc` is [`adaptive`]: a controller
//! watches per-round straggler pressure and verification failures, evicts
//! workers detected Byzantine, and re-encodes to a smaller `(N, K)` when
//! the remaining cluster can no longer satisfy the bound — paying a
//! one-time re-distribution cost (charged to the timeline) instead of a
//! recurring straggler tail. [`experiment::run_dynamic_coding_scenario`]
//! reproduces Fig. 5's burst scenario.
//!
//! # Reporting
//!
//! [`report::TrainingReport`] aggregates virtual-seconds cost breakdowns
//! per iteration ([`report::IterationRecord`]); totals use a median-based
//! robust sum (`robust_total_seconds`) so a single preempted measurement
//! cannot dominate a scheme comparison, and `report::speedup` interpolates
//! time-to-accuracy ratios (the paper's Table I metric).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod distributed;
pub mod driver;
pub mod engines;
pub mod experiment;
pub mod problem;
pub mod report;
pub mod rounds;

pub use adaptive::{AdaptationDecision, AdaptiveController, Autopilot, AutopilotConfig};
pub use distributed::{train_distributed, DistributedError, WireRunner};
pub use driver::{DistributedTrainer, SchemeKind, TrainerConfig, TrainingRound};
pub use engines::{AvccMatVec, LccMatVec, MatVecEngine, UncodedMatVec};
pub use experiment::{
    run_dynamic_coding_scenario, run_experiment, ExperimentConfig, FaultScenario,
};
pub use problem::TrainingProblem;
pub use report::{IterationRecord, TrainingReport};
pub use rounds::{BatchExecution, BatchRoundTask, RoundExecution, RoundTask, SchemeFailure};
