//! The AVCC framework: execution strategies, adaptive dynamic coding and the
//! distributed training driver.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrates: it glues the coding layer (`avcc-coding`), the verification
//! layer (`avcc-verify`), the cluster simulator (`avcc-sim`) and the ML
//! workload (`avcc-ml`) into the four schemes the paper evaluates:
//!
//! | Scheme | Straggler handling | Byzantine handling | Privacy |
//! |---|---|---|---|
//! | `Uncoded` | none (waits for every worker) | none (corruption flows into the model) | none |
//! | `Lcc` | MDS/Lagrange coding, waits for `N−S` results | Reed–Solomon error decoding (costs `2M` workers) | Lagrange pads |
//! | `Avcc` | MDS/Lagrange coding, decodes from the fastest verified results | per-result Freivalds verification (costs `M` workers) + dynamic re-coding | Lagrange pads |
//! | `StaticVcc` | as AVCC | as AVCC but without dynamic re-coding | Lagrange pads |
//!
//! The top-level entry point is [`experiment::run_experiment`], which builds a
//! [`driver::DistributedTrainer`] for a requested
//! [`experiment::ExperimentConfig`] and returns a [`report::TrainingReport`]
//! with per-iteration cost breakdowns, accuracy trajectories and detected
//! Byzantine workers — everything needed to regenerate the paper's Figures 3–5
//! and Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod driver;
pub mod engines;
pub mod experiment;
pub mod problem;
pub mod report;
pub mod rounds;

pub use adaptive::{AdaptationDecision, AdaptiveController};
pub use driver::{DistributedTrainer, SchemeKind, TrainerConfig};
pub use experiment::{
    run_dynamic_coding_scenario, run_experiment, ExperimentConfig, FaultScenario,
};
pub use problem::TrainingProblem;
pub use report::{IterationRecord, TrainingReport};
pub use rounds::RoundExecution;
